//! Telemetry overhead: the reordered executor with no recorder, the
//! `NullRecorder` (instrumentation compiled out), the in-memory
//! aggregating recorder, the bounded flight recorder, and a JSONL sink,
//! across three catalog circuits at 64 trials. Results are written to
//! `BENCH_telemetry.json`.
//!
//! The `NullRecorder` path is the one every un-instrumented caller pays
//! for, so its overhead over the plain run is budget-gated: pass
//! `--check PCT` (e.g. `--check 2`) to exit non-zero when the null
//! overhead exceeds `PCT` percent — CI runs this as the "telemetry is
//! free unless you ask for it" regression gate.
//!
//! The same budget gates the flight recorder, whose pitch is "cheap enough
//! to leave on everywhere" — but on the Yorktown rows a whole trial runs
//! in about a microsecond, so any per-event sink reads as a large relative
//! number there no matter how cheap the event is. The flight gate instead
//! times a QV circuit at realistic width (a §V.B scalability shape), where
//! the tens-of-nanoseconds event cost must amortize to under the budget.
//!
//! Usage: `telemetry [--seed N] [--reps N] [--trials N] [--out PATH] [--check PCT] [--record] [--quiet]`

use std::time::Instant;

use qsim_telemetry::{
    AggregatingRecorder, FlightRecorder, JsonlRecorder, NullRecorder, Recorder, TraceMeta,
};
use redsim::exec::ReuseExecutor;
use redsim_bench::report::ResultsDoc;
use redsim_bench::suite::{scalability_circuit, yorktown_model, yorktown_suite};
use redsim_bench::table::Table;
use redsim_bench::{arg_value, json, report};

/// Best-of-`reps` wall clock in milliseconds, with one warmup execution.
fn time_best<F: FnMut()>(reps: usize, mut run: F) -> f64 {
    run();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

struct Row {
    name: String,
    trials: usize,
    plain_ms: f64,
    null_ms: f64,
    aggregate_ms: f64,
    flight_ms: f64,
    jsonl_ms: f64,
}

impl Row {
    fn overhead_pct(&self, instrumented_ms: f64) -> f64 {
        100.0 * (instrumented_ms - self.plain_ms) / self.plain_ms.max(1e-9)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = arg_value(&args, "--seed", 2020u64);
    let reps = arg_value(&args, "--reps", 7usize);
    let n_trials = arg_value(&args, "--trials", 64usize);
    let out = arg_value(&args, "--out", "BENCH_telemetry.json".to_owned());
    let check = arg_value(&args, "--check", f64::INFINITY);
    let quiet = redsim_bench::arg_flag(&args, "--quiet");

    let model = yorktown_model();
    let mut rows = Vec::new();
    for bench in yorktown_suite().iter().take(3) {
        let set = qsim_noise::TrialGenerator::new(&bench.layered, &model)
            .expect("valid model")
            .generate(n_trials, seed);
        let trials = set.trials();
        let reuse = ReuseExecutor::new(&bench.layered);

        let plain_ms = time_best(reps, || {
            reuse.run(trials).expect("execution succeeds");
        });
        let null_ms = time_best(reps, || {
            reuse.run_traced(trials, &NullRecorder).expect("execution succeeds");
        });
        let aggregate_ms = time_best(reps, || {
            let recorder = AggregatingRecorder::new();
            reuse.run_traced(trials, &recorder).expect("execution succeeds");
        });
        let flight_ms = time_best(reps, || {
            let recorder = FlightRecorder::with_capacity(1024);
            reuse.run_traced(trials, &recorder).expect("execution succeeds");
        });
        let jsonl_ms = time_best(reps, || {
            let recorder = JsonlRecorder::new(Box::new(std::io::sink()), &TraceMeta::default());
            reuse.run_traced(trials, &recorder).expect("execution succeeds");
            recorder.flush().expect("sink never fails");
        });
        rows.push(Row {
            name: bench.name.clone(),
            trials: n_trials,
            plain_ms,
            null_ms,
            aggregate_ms,
            flight_ms,
            jsonl_ms,
        });
    }

    // Flight budget gate: a QV circuit wide enough that per-trial work
    // dominates per-event recording (see the module docs). The recorder is
    // built once and reused across reps, matching how an always-on flight
    // ring is actually deployed.
    let gate_qubits = arg_value(&args, "--gate-qubits", 14usize);
    let gate_depth = arg_value(&args, "--gate-depth", 10usize);
    let gate_name = format!("qv_n{gate_qubits}d{gate_depth}");
    let gate_layered = scalability_circuit(gate_qubits, gate_depth);
    let gate_model = qsim_noise::NoiseModel::artificial(gate_qubits, 1e-3);
    let gate_set = qsim_noise::TrialGenerator::new(&gate_layered, &gate_model)
        .expect("valid model")
        .generate(n_trials, seed);
    let gate_trials = gate_set.trials();
    let gate_reuse = ReuseExecutor::new(&gate_layered);
    let gate_plain_ms = time_best(reps, || {
        gate_reuse.run(gate_trials).expect("execution succeeds");
    });
    let flight = FlightRecorder::with_capacity(1024);
    let gate_flight_ms = time_best(reps, || {
        gate_reuse.run_traced(gate_trials, &flight).expect("execution succeeds");
    });
    let gate_pct = 100.0 * (gate_flight_ms - gate_plain_ms) / gate_plain_ms.max(1e-9);

    let doc = ResultsDoc::new("telemetry").int("seed", seed).int("reps", reps).field(
        "rows",
        json::array(rows.iter().map(|row| {
            json::object(&[
                ("name", json::string(&row.name)),
                ("trials", format!("{}", row.trials)),
                ("plain_ms", json::number(row.plain_ms)),
                ("null_ms", json::number(row.null_ms)),
                ("null_overhead_pct", json::number(row.overhead_pct(row.null_ms))),
                ("aggregate_ms", json::number(row.aggregate_ms)),
                ("aggregate_overhead_pct", json::number(row.overhead_pct(row.aggregate_ms))),
                ("flight_ms", json::number(row.flight_ms)),
                ("flight_overhead_pct", json::number(row.overhead_pct(row.flight_ms))),
                ("jsonl_ms", json::number(row.jsonl_ms)),
                ("jsonl_overhead_pct", json::number(row.overhead_pct(row.jsonl_ms))),
            ])
        })),
    );
    let doc = doc.field(
        "flight_gate",
        json::object(&[
            ("circuit", json::string(&gate_name)),
            ("trials", format!("{n_trials}")),
            ("events_recorded", format!("{}", flight.recorded())),
            ("plain_ms", json::number(gate_plain_ms)),
            ("flight_ms", json::number(gate_flight_ms)),
            ("flight_overhead_pct", json::number(gate_pct)),
        ]),
    );
    doc.write_file(&out);
    report::maybe_record(&args, &doc);

    if !quiet {
        let mut table =
            Table::new(["Benchmark", "Plain", "Null", "Null ovh", "Aggregate", "Flight", "JSONL"]);
        for row in &rows {
            table.row([
                row.name.clone(),
                format!("{:.3} ms", row.plain_ms),
                format!("{:.3} ms", row.null_ms),
                format!("{:+.1}%", row.overhead_pct(row.null_ms)),
                format!("{:.3} ms", row.aggregate_ms),
                format!("{:.3} ms", row.flight_ms),
                format!("{:.3} ms", row.jsonl_ms),
            ]);
        }
        println!("Telemetry overhead: reordered execution, {n_trials} trials, best of {reps}");
        println!("{table}");
        println!(
            "Flight gate ({gate_name}, {n_trials} trials): plain {gate_plain_ms:.3} ms, \
             flight {gate_flight_ms:.3} ms ({gate_pct:+.2}%)"
        );
        println!("results written to {out}");
    }

    if check.is_finite() {
        // Budget gates. Best-of-reps timing still jitters on tiny circuits,
        // so the null gate applies to the mean overhead across the suite
        // rather than any single row; the flight gate uses its dedicated
        // realistic-width row.
        let null_pct =
            rows.iter().map(|r| r.overhead_pct(r.null_ms)).sum::<f64>() / rows.len() as f64;
        if null_pct > check {
            eprintln!("FAIL: mean NullRecorder overhead {null_pct:.2}% exceeds budget {check}%");
            std::process::exit(1);
        }
        if gate_pct > check {
            eprintln!(
                "FAIL: FlightRecorder overhead {gate_pct:.2}% on {gate_name} exceeds budget {check}%"
            );
            std::process::exit(1);
        }
        println!("null-recorder overhead {null_pct:.2}% within the {check}% budget");
        println!(
            "flight-recorder overhead {gate_pct:.2}% on {gate_name} within the {check}% budget"
        );
    }
}
