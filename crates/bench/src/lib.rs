#![warn(missing_docs)]
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§V). Each `src/bin` binary prints one artifact:
//!
//! | Binary    | Paper artifact | Content |
//! |-----------|----------------|---------|
//! | `table1`  | Table I        | post-compilation benchmark characteristics |
//! | `fig5`    | Fig. 5         | normalized computation, realistic model, 1024–8192 trials |
//! | `fig6`    | Fig. 6         | MSVs, realistic model, 1024 trials |
//! | `fig7`    | Fig. 7         | normalized computation, QV scalability sweep |
//! | `fig8`    | Fig. 8         | MSVs, QV scalability sweep |
//! | `ablation`| §IV.B motivation | reordered vs generation-order caching |
//!
//! The library half hosts the shared experiment machinery so that the
//! binaries, the Criterion benches, and the integration tests all drive the
//! *same* code paths.

pub mod chart;
pub mod experiments;
pub mod json;
pub mod report;
pub mod suite;
pub mod table;

/// Whether a bare `--flag` is present in raw args.
pub fn arg_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parse a `--flag value` style option from raw args, with a default.
///
/// # Panics
///
/// Panics with a usage message if the value is present but unparsable.
pub fn arg_value<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    for window in args.windows(2) {
        if window[0] == flag {
            return window[1].parse().unwrap_or_else(|e| panic!("invalid value for {flag}: {e}"));
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_value_parses_and_defaults() {
        let args: Vec<String> =
            ["prog", "--trials", "5000", "--seed", "7"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_value(&args, "--trials", 0usize), 5000);
        assert_eq!(arg_value(&args, "--seed", 1u64), 7);
        assert_eq!(arg_value(&args, "--missing", 42i32), 42);
    }

    #[test]
    #[should_panic(expected = "invalid value")]
    fn arg_value_rejects_garbage() {
        let args: Vec<String> = ["prog", "--trials", "abc"].iter().map(|s| s.to_string()).collect();
        let _ = arg_value(&args, "--trials", 0usize);
    }
}
