//! Minimal JSON emission for experiment results (plot-friendly output via
//! `--json`), hand-rolled to keep the dependency set pure.

/// Escape and quote a JSON string.
pub fn string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float as JSON (finite values only; NaN/∞ become `null`).
pub fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_owned()
    }
}

/// `{"k": v, ...}` from already-rendered values.
pub fn object(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields.iter().map(|(k, v)| format!("{}: {v}", string(k))).collect();
    format!("{{{}}}", body.join(", "))
}

/// `[v, ...]` from already-rendered values.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let body: Vec<String> = items.into_iter().collect();
    format!("[{}]", body.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_strings() {
        assert_eq!(string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("\u{01}"), "\"\\u0001\"");
    }

    #[test]
    fn renders_numbers_and_null() {
        assert_eq!(number(0.25), "0.25");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn composes_objects_and_arrays() {
        let obj = object(&[("name", string("rb")), ("value", number(0.5))]);
        assert_eq!(obj, r#"{"name": "rb", "value": 0.5}"#);
        let arr = array([number(1.0), number(2.0)]);
        assert_eq!(arr, "[1, 2]");
    }

    #[test]
    fn output_parses_as_json_shaped_text() {
        // Sanity: balanced braces/quotes on a nested structure.
        let rendered = object(&[(
            "rows",
            array([object(&[("x", number(1.0))]), object(&[("x", number(2.0))])]),
        )]);
        assert_eq!(rendered.matches('{').count(), rendered.matches('}').count());
        assert_eq!(rendered.matches('[').count(), rendered.matches(']').count());
    }
}
