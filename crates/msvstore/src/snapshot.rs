//! The on-disk snapshot file format.
//!
//! One file per stored prefix state, named `<key-hex>.msv`:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "MSV1"
//! 4       4     n_qubits           (u32 LE)
//! 8       4     prefix_layer       (u32 LE, inclusive)
//! 12      8     payload length     (u64 LE, bytes)
//! 20      8     FNV-1a-64 checksum of the payload (u64 LE)
//! 28      …     payload: 2^n_qubits amplitudes as LE f64 (re, im) pairs
//! ```
//!
//! Decoding validates every field — magic, geometry coherence (payload
//! length must equal `16 · 2^n_qubits`), declared vs actual length, and
//! the checksum — so a truncated or bit-flipped file is reported as
//! [`SnapshotError`] and treated by the store as a cache miss, never as
//! amplitudes.

use std::fmt;

use qsim_statevec::snapshot::{amps_from_le_bytes, amps_to_le_bytes, AMP_BYTES};
use qsim_statevec::{AmpBuf, C64};

/// File extension of snapshot files (without the dot).
pub const SNAPSHOT_EXT: &str = "msv";

const MAGIC: &[u8; 4] = b"MSV1";
const HEADER_BYTES: usize = 28;
/// Widest register a snapshot file will ever describe; anything larger is
/// corruption (2^48 amplitudes would be petabytes).
const MAX_QUBITS: u32 = 48;

/// A decoded snapshot: geometry plus the restored aligned amplitudes.
#[derive(Debug)]
pub struct Snapshot {
    /// Register width.
    pub n_qubits: u32,
    /// Layer the stored prefix extends through (inclusive).
    pub prefix_layer: u32,
    /// The amplitudes, 64-byte aligned.
    pub amps: AmpBuf,
}

/// Why a snapshot file failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// File shorter than the fixed header.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Header fields are incoherent (impossible geometry or length).
    BadGeometry(String),
    /// Payload checksum mismatch — torn write or bit rot.
    ChecksumMismatch,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => f.write_str("snapshot file truncated"),
            SnapshotError::BadMagic => f.write_str("snapshot magic mismatch"),
            SnapshotError::BadGeometry(why) => write!(f, "snapshot geometry invalid: {why}"),
            SnapshotError::ChecksumMismatch => f.write_str("snapshot checksum mismatch"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a-64 over `bytes` — the payload checksum.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Encode a snapshot file image.
///
/// # Panics
///
/// Panics if `amps` does not hold exactly `2^n_qubits` amplitudes — the
/// caller hands in a full prefix state by construction.
pub fn encode_snapshot(n_qubits: u32, prefix_layer: u32, amps: &[C64]) -> Vec<u8> {
    assert_eq!(amps.len(), 1usize << n_qubits, "snapshot must hold a full state");
    let payload = amps_to_le_bytes(amps);
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&n_qubits.to_le_bytes());
    out.extend_from_slice(&prefix_layer.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decode and fully validate a snapshot file image.
///
/// # Errors
///
/// Returns [`SnapshotError`] describing the first validation failure.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    if bytes.len() < HEADER_BYTES {
        return Err(SnapshotError::Truncated);
    }
    if &bytes[0..4] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let n_qubits = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let prefix_layer = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    if n_qubits > MAX_QUBITS {
        return Err(SnapshotError::BadGeometry(format!("{n_qubits} qubits")));
    }
    let expected = (1u64 << n_qubits) * AMP_BYTES as u64;
    if payload_len != expected {
        return Err(SnapshotError::BadGeometry(format!(
            "payload {payload_len} bytes, {n_qubits} qubits needs {expected}"
        )));
    }
    let payload = &bytes[HEADER_BYTES..];
    if (payload.len() as u64) < payload_len {
        return Err(SnapshotError::Truncated);
    }
    if payload.len() as u64 > payload_len {
        return Err(SnapshotError::BadGeometry("trailing bytes".to_owned()));
    }
    if fnv1a64(payload) != checksum {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let amps =
        amps_from_le_bytes(payload).map_err(|e| SnapshotError::BadGeometry(e.to_string()))?;
    Ok(Snapshot { n_qubits, prefix_layer, amps })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_amps(n_qubits: u32) -> Vec<C64> {
        (0..1usize << n_qubits).map(|i| C64::new(0.1 * i as f64 + 0.3, -(0.2 * i as f64))).collect()
    }

    #[test]
    fn round_trips_bitwise() {
        let amps = sample_amps(3);
        let image = encode_snapshot(3, 7, &amps);
        let snap = decode_snapshot(&image).unwrap();
        assert_eq!(snap.n_qubits, 3);
        assert_eq!(snap.prefix_layer, 7);
        assert_eq!(snap.amps.len(), 8);
        for (orig, got) in amps.iter().zip(snap.amps.iter()) {
            assert_eq!(orig.re.to_bits(), got.re.to_bits());
            assert_eq!(orig.im.to_bits(), got.im.to_bits());
        }
    }

    #[test]
    fn rejects_every_corruption_class() {
        let image = encode_snapshot(2, 3, &sample_amps(2));
        // Truncations at every interesting boundary.
        assert_eq!(decode_snapshot(&[]).err(), Some(SnapshotError::Truncated));
        assert_eq!(decode_snapshot(&image[..10]).err(), Some(SnapshotError::Truncated));
        assert_eq!(
            decode_snapshot(&image[..image.len() - 1]).err(),
            Some(SnapshotError::Truncated)
        );
        // Magic.
        let mut bad = image.clone();
        bad[0] = b'X';
        assert_eq!(decode_snapshot(&bad).err(), Some(SnapshotError::BadMagic));
        // Impossible register width.
        let mut bad = image.clone();
        bad[4..8].copy_from_slice(&200u32.to_le_bytes());
        assert!(matches!(decode_snapshot(&bad), Err(SnapshotError::BadGeometry(_))));
        // Declared length disagreeing with geometry.
        let mut bad = image.clone();
        bad[12..20].copy_from_slice(&7u64.to_le_bytes());
        assert!(matches!(decode_snapshot(&bad), Err(SnapshotError::BadGeometry(_))));
        // Trailing junk.
        let mut bad = image.clone();
        bad.push(0);
        assert!(matches!(decode_snapshot(&bad), Err(SnapshotError::BadGeometry(_))));
        // A single flipped payload bit.
        let mut bad = image.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert_eq!(decode_snapshot(&bad).err(), Some(SnapshotError::ChecksumMismatch));
        // The pristine image still decodes.
        assert!(decode_snapshot(&image).is_ok());
    }

    #[test]
    fn errors_display_their_cause() {
        assert!(SnapshotError::Truncated.to_string().contains("truncated"));
        assert!(SnapshotError::BadGeometry("x".into()).to_string().contains("x"));
    }
}
