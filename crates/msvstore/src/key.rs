//! Semantic keys: what makes two prefixes "the same computation".
//!
//! A key names the exact float program that produces a prefix state from
//! `|0…0⟩`, plus the run context the cache is scoped to. Two runs with
//! equal keys would execute the identical fused kernel sequence over the
//! prefix — so the snapshot one of them stored is, bit for bit, the state
//! the other is about to compute.

use qsim_analyzer::{canon, StableHasher};
use qsim_circuit::LayeredCircuit;
use qsim_noise::NoiseModel;

/// The seed policy tag for `redsim`'s executors: each trial carries a
/// private `StdRng` seed used only for measurement sampling. The policy
/// (not the seed *values*) is part of the key — the prefix state below the
/// first injection is seed-independent, but a different sampling scheme
/// is a different workload and must not share hit-rate accounting.
pub const DEFAULT_SEED_POLICY: &str = "stdrng-per-trial-v1";

/// Versioned domain tag folded into every key; bump on any change to the
/// key construction (a silent change would orphan every stored snapshot —
/// the golden tests pin the resulting hex strings).
const KEY_DOMAIN: &str = "redsim-msvstore-key-v1";

/// A canonical cache key for one circuit prefix under one run context.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SemanticKey {
    hash: u128,
    n_qubits: usize,
    prefix_layer: usize,
}

impl SemanticKey {
    /// Compute the key for the prefix of `layered` through `prefix_layer`
    /// (inclusive) under `model` and `seed_policy`.
    ///
    /// The circuit contribution is [`canon::prefix_fingerprint`] — the
    /// fused kernel stream of the prefix segment, so gauge-equivalent
    /// prefixes (same ASAP layering, same fused float program) collide
    /// while anything that would change a single executed bit does not.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_layer` is not a valid layer of `layered`.
    pub fn compute(
        layered: &LayeredCircuit,
        prefix_layer: usize,
        model: &NoiseModel,
        seed_policy: &str,
    ) -> SemanticKey {
        let mut h = StableHasher::new();
        h.write_str(KEY_DOMAIN);
        h.write_u64(canon::prefix_fingerprint(layered, prefix_layer) as u64);
        h.write_u64((canon::prefix_fingerprint(layered, prefix_layer) >> 64) as u64);
        h.write_u64(canon::model_digest(model) as u64);
        h.write_u64((canon::model_digest(model) >> 64) as u64);
        h.write_str(seed_policy);
        SemanticKey { hash: h.finish(), n_qubits: layered.n_qubits(), prefix_layer }
    }

    /// The key as 32 lowercase hex characters (also the snapshot's file
    /// stem on disk).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.hash)
    }

    /// Register width the keyed snapshot must have.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Layer the keyed prefix extends through (inclusive).
    pub fn prefix_layer(&self) -> usize {
        self.prefix_layer
    }
}

impl std::fmt::Display for SemanticKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({}q through layer {})", self.hex(), self.n_qubits, self.prefix_layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::catalog;

    fn bv() -> LayeredCircuit {
        catalog::bv(4, 0b101).layered().unwrap()
    }

    #[test]
    fn keys_are_stable_and_discriminating() {
        let model = NoiseModel::uniform(4, 1e-3, 1e-2, 1e-2);
        let a = SemanticKey::compute(&bv(), 1, &model, DEFAULT_SEED_POLICY);
        assert_eq!(a, SemanticKey::compute(&bv(), 1, &model, DEFAULT_SEED_POLICY));
        assert_eq!(a.hex().len(), 32);
        assert_eq!(a.n_qubits(), 4);
        assert_eq!(a.prefix_layer(), 1);

        let deeper = SemanticKey::compute(&bv(), 2, &model, DEFAULT_SEED_POLICY);
        assert_ne!(a.hex(), deeper.hex(), "prefix extent must discriminate");
        let other_model = NoiseModel::uniform(4, 2e-3, 1e-2, 1e-2);
        let b = SemanticKey::compute(&bv(), 1, &other_model, DEFAULT_SEED_POLICY);
        assert_ne!(a.hex(), b.hex(), "noise model must discriminate");
        let c = SemanticKey::compute(&bv(), 1, &model, "other-policy");
        assert_ne!(a.hex(), c.hex(), "seed policy must discriminate");
    }

    #[test]
    fn display_names_the_scope() {
        let model = NoiseModel::uniform(4, 1e-3, 1e-2, 1e-2);
        let key = SemanticKey::compute(&bv(), 1, &model, DEFAULT_SEED_POLICY);
        let text = key.to_string();
        assert!(text.contains("4q"));
        assert!(text.contains("layer 1"));
        assert!(text.starts_with(&key.hex()));
    }
}
