//! The on-disk store: a directory of snapshot files plus the manifest.
//!
//! Concurrency model: each process keeps its own in-memory entry table,
//! rebuilt from the manifest at [`MsvStore::open`]. All manifest writes go
//! through `O_APPEND`, so concurrent writers interleave whole lines and a
//! later `open` replays a coherent history. A writer that lost a race (its
//! table is stale) degrades gracefully: `get` falls back to reading the
//! snapshot file itself when the table has no entry, and every read
//! validates the file before trusting it.
//!
//! Failure model: **any** problem on the read path — missing file,
//! truncated payload, checksum mismatch, geometry that disagrees with the
//! key — is a cache miss, never an error and never wrong amplitudes.

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use qsim_statevec::{AmpBuf, C64};

use crate::key::SemanticKey;
use crate::manifest::{is_key_hex, ManifestEvent, MANIFEST_NAME};
use crate::snapshot::{decode_snapshot, encode_snapshot, SNAPSHOT_EXT};

/// A successful cache lookup.
#[derive(Debug)]
pub struct StoreHit {
    /// The restored prefix amplitudes, bit-for-bit as stored.
    pub amps: AmpBuf,
    /// Snapshot file size that was read and validated.
    pub bytes_read: u64,
}

/// What [`MsvStore::put`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutOutcome {
    /// Whether a new snapshot was written (false: the key was already
    /// present and intact).
    pub stored: bool,
    /// Bytes written for the new snapshot (0 when not stored).
    pub bytes_written: u64,
    /// Entries evicted to fit the byte budget.
    pub evicted: u64,
    /// Bytes those evictions released.
    pub evicted_bytes: u64,
}

/// Aggregate for one prefix depth in [`StoreStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerStat {
    /// Prefix layer (inclusive).
    pub layer: u64,
    /// Entries stored at this depth.
    pub entries: u64,
    /// Bytes they occupy.
    pub bytes: u64,
    /// Hits they have served (recorded touches).
    pub hits: u64,
}

/// A point-in-time summary of the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Live entries.
    pub entries: u64,
    /// Bytes of live snapshot payload files.
    pub bytes: u64,
    /// Configured byte budget (0 = unlimited).
    pub budget_bytes: u64,
    /// Total recorded hits across live entries.
    pub hits: u64,
    /// Per-prefix-depth breakdown, ascending by layer.
    pub by_layer: Vec<LayerStat>,
}

/// What [`MsvStore::gc`] cleaned up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// Snapshot files on disk with no live manifest entry, removed.
    pub orphan_files: u64,
    /// Manifest entries whose snapshot file was missing or invalid,
    /// dropped.
    pub dead_entries: u64,
    /// Live entries after the sweep.
    pub entries: u64,
    /// Live bytes after the sweep.
    pub bytes: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    qubits: u64,
    layer: u64,
    bytes: u64,
    hits: u64,
    last_seq: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: BTreeMap<String, Entry>,
    next_seq: u64,
}

impl Inner {
    fn apply(&mut self, event: ManifestEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match event {
            ManifestEvent::Put { key, qubits, layer, bytes } => {
                self.entries.insert(key, Entry { qubits, layer, bytes, hits: 0, last_seq: seq });
            }
            ManifestEvent::Touch { key } => {
                if let Some(entry) = self.entries.get_mut(&key) {
                    entry.hits += 1;
                    entry.last_seq = seq;
                }
            }
            ManifestEvent::Evict { key } => {
                self.entries.remove(&key);
            }
            ManifestEvent::Clear => self.entries.clear(),
        }
    }

    fn total_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.bytes).sum()
    }

    /// The least-valuable live entry: fewest proven hits, then least
    /// recently used. `protect` (the key just written) is never chosen.
    fn eviction_victim(&self, protect: &str) -> Option<String> {
        self.entries
            .iter()
            .filter(|(key, _)| key.as_str() != protect)
            .min_by_key(|(_, e)| (e.hits, e.last_seq))
            .map(|(key, _)| key.clone())
    }
}

/// The persistent MSV store. Cheap to open, safe to share across threads;
/// all mutation funnels through an internal lock plus append-only disk
/// writes.
#[derive(Debug)]
pub struct MsvStore {
    dir: PathBuf,
    budget_bytes: u64,
    inner: Mutex<Inner>,
}

impl MsvStore {
    /// Open (creating if needed) the store at `dir` with a snapshot byte
    /// budget (`0` disables eviction).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be
    /// created or the manifest cannot be read. A *corrupt* manifest is not
    /// an error — unparseable lines are skipped.
    pub fn open(dir: &Path, budget_bytes: u64) -> io::Result<MsvStore> {
        fs::create_dir_all(dir)?;
        let mut inner = Inner::default();
        let manifest = dir.join(MANIFEST_NAME);
        if manifest.exists() {
            for line in fs::read_to_string(&manifest)?.lines() {
                if let Some(event) = ManifestEvent::parse(line) {
                    inner.apply(event);
                }
            }
        }
        Ok(MsvStore { dir: dir.to_owned(), budget_bytes, inner: Mutex::new(inner) })
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn snapshot_path(&self, hex: &str) -> PathBuf {
        self.dir.join(format!("{hex}.{SNAPSHOT_EXT}"))
    }

    /// Append one event to the manifest (`O_APPEND`, one `write` call, so
    /// concurrent writers interleave whole lines) and fold it into the
    /// in-memory table.
    fn append(&self, inner: &mut Inner, event: ManifestEvent) -> io::Result<()> {
        let mut file =
            OpenOptions::new().create(true).append(true).open(self.dir.join(MANIFEST_NAME))?;
        let mut line = event.render();
        line.push('\n');
        file.write_all(line.as_bytes())?;
        inner.apply(event);
        Ok(())
    }

    /// Look up `key`. Returns the stored prefix state, or `None` on any
    /// miss — absent, truncated, corrupt, or geometry disagreeing with the
    /// key. A hit is recorded as a `touch` in the manifest (best-effort:
    /// an unwritable manifest does not fail the hit).
    pub fn get(&self, key: &SemanticKey) -> Option<StoreHit> {
        let hex = key.hex();
        let bytes = fs::read(self.snapshot_path(&hex)).ok()?;
        let snap = decode_snapshot(&bytes).ok()?;
        if snap.n_qubits as usize != key.n_qubits()
            || snap.prefix_layer as usize != key.prefix_layer()
        {
            return None;
        }
        let mut inner = self.inner.lock().expect("msvstore lock");
        if !inner.entries.contains_key(&hex) {
            // The file is valid but the table never saw its put — a torn
            // manifest tail or a concurrent writer. Re-adopt it.
            let _ = self.append(
                &mut inner,
                ManifestEvent::Put {
                    key: hex.clone(),
                    qubits: u64::from(snap.n_qubits),
                    layer: u64::from(snap.prefix_layer),
                    bytes: bytes.len() as u64,
                },
            );
        }
        let _ = self.append(&mut inner, ManifestEvent::Touch { key: hex });
        Some(StoreHit { amps: snap.amps, bytes_read: bytes.len() as u64 })
    }

    /// Store `amps` as the snapshot for `key`, then evict
    /// least-valuable-first until the byte budget holds (never evicting
    /// the entry just written).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the snapshot or manifest cannot
    /// be written.
    ///
    /// # Panics
    ///
    /// Panics if `amps` is not a full state for the key's register width.
    pub fn put(&self, key: &SemanticKey, amps: &[C64]) -> io::Result<PutOutcome> {
        let hex = key.hex();
        let path = self.snapshot_path(&hex);
        let mut inner = self.inner.lock().expect("msvstore lock");
        if inner.entries.contains_key(&hex) && path.exists() {
            return Ok(PutOutcome {
                stored: false,
                bytes_written: 0,
                evicted: 0,
                evicted_bytes: 0,
            });
        }
        let image = encode_snapshot(
            u32::try_from(key.n_qubits()).expect("register width fits u32"),
            u32::try_from(key.prefix_layer()).expect("layer fits u32"),
            amps,
        );
        let tmp = self.dir.join(format!("{hex}.tmp-{}", std::process::id()));
        fs::write(&tmp, &image)?;
        fs::rename(&tmp, &path)?;
        self.append(
            &mut inner,
            ManifestEvent::Put {
                key: hex.clone(),
                qubits: key.n_qubits() as u64,
                layer: key.prefix_layer() as u64,
                bytes: image.len() as u64,
            },
        )?;
        let mut evicted = 0u64;
        let mut evicted_bytes = 0u64;
        if self.budget_bytes > 0 {
            while inner.total_bytes() > self.budget_bytes {
                let Some(victim) = inner.eviction_victim(&hex) else { break };
                evicted_bytes += inner.entries.get(&victim).map_or(0, |e| e.bytes);
                let _ = fs::remove_file(self.snapshot_path(&victim));
                self.append(&mut inner, ManifestEvent::Evict { key: victim })?;
                evicted += 1;
            }
        }
        Ok(PutOutcome { stored: true, bytes_written: image.len() as u64, evicted, evicted_bytes })
    }

    /// Summarize the live entries.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("msvstore lock");
        let mut by_layer: BTreeMap<u64, LayerStat> = BTreeMap::new();
        let mut hits = 0u64;
        for entry in inner.entries.values() {
            hits += entry.hits;
            let stat = by_layer.entry(entry.layer).or_insert(LayerStat {
                layer: entry.layer,
                entries: 0,
                bytes: 0,
                hits: 0,
            });
            stat.entries += 1;
            stat.bytes += entry.bytes;
            stat.hits += entry.hits;
        }
        StoreStats {
            entries: inner.entries.len() as u64,
            bytes: inner.total_bytes(),
            budget_bytes: self.budget_bytes,
            hits,
            by_layer: by_layer.into_values().collect(),
        }
    }

    /// Reconcile disk and manifest: drop entries whose snapshot file no
    /// longer decodes, delete snapshot files with no live entry, and
    /// compact the manifest to the minimal event sequence that replays to
    /// the surviving table.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be listed
    /// or the compacted manifest cannot be written.
    pub fn gc(&self) -> io::Result<GcReport> {
        let mut inner = self.inner.lock().expect("msvstore lock");
        let mut dead = Vec::new();
        for (hex, entry) in &inner.entries {
            let live = fs::read(self.snapshot_path(hex))
                .ok()
                .and_then(|bytes| decode_snapshot(&bytes).ok())
                .is_some_and(|snap| {
                    u64::from(snap.n_qubits) == entry.qubits
                        && u64::from(snap.prefix_layer) == entry.layer
                });
            if !live {
                dead.push(hex.clone());
            }
        }
        for hex in &dead {
            inner.entries.remove(hex);
            let _ = fs::remove_file(self.snapshot_path(hex));
        }
        let mut orphans = 0u64;
        for dir_entry in fs::read_dir(&self.dir)? {
            let path = dir_entry?.path();
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
            let is_snapshot =
                path.extension().and_then(|e| e.to_str()) == Some(SNAPSHOT_EXT) && is_key_hex(stem);
            if is_snapshot && !inner.entries.contains_key(stem) {
                fs::remove_file(&path)?;
                orphans += 1;
            }
        }
        self.compact(&mut inner)?;
        Ok(GcReport {
            orphan_files: orphans,
            dead_entries: dead.len() as u64,
            entries: inner.entries.len() as u64,
            bytes: inner.total_bytes(),
        })
    }

    /// Remove every snapshot and reset the manifest to a single `clear`
    /// event.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if files cannot be removed or the
    /// manifest rewritten.
    pub fn clear(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("msvstore lock");
        for dir_entry in fs::read_dir(&self.dir)? {
            let path = dir_entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some(SNAPSHOT_EXT) {
                fs::remove_file(&path)?;
            }
        }
        inner.entries.clear();
        self.rewrite_manifest(&mut inner, &[ManifestEvent::Clear])
    }

    /// Rewrite the manifest as the minimal replayable history of the
    /// current table: each entry's `put` followed by its recorded hits as
    /// `touch` lines, in recency order so replay reproduces both hit
    /// counts and LRU ordering.
    fn compact(&self, inner: &mut Inner) -> io::Result<()> {
        let mut order: Vec<(String, Entry)> =
            inner.entries.iter().map(|(k, e)| (k.clone(), e.clone())).collect();
        order.sort_by_key(|(_, e)| e.last_seq);
        let mut events = vec![ManifestEvent::Clear];
        for (key, entry) in order {
            events.push(ManifestEvent::Put {
                key: key.clone(),
                qubits: entry.qubits,
                layer: entry.layer,
                bytes: entry.bytes,
            });
            for _ in 0..entry.hits {
                events.push(ManifestEvent::Touch { key: key.clone() });
            }
        }
        self.rewrite_manifest(inner, &events)
    }

    /// Atomically replace the manifest with `events` and replay them into
    /// a fresh table.
    fn rewrite_manifest(&self, inner: &mut Inner, events: &[ManifestEvent]) -> io::Result<()> {
        let mut text = String::new();
        for event in events {
            text.push_str(&event.render());
            text.push('\n');
        }
        let tmp = self.dir.join(format!("{MANIFEST_NAME}.tmp-{}", std::process::id()));
        fs::write(&tmp, text)?;
        fs::rename(&tmp, self.dir.join(MANIFEST_NAME))?;
        let mut fresh = Inner::default();
        for event in events {
            fresh.apply(event.clone());
        }
        *inner = fresh;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::DEFAULT_SEED_POLICY;
    use qsim_circuit::catalog;
    use qsim_noise::NoiseModel;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("msvstore-test-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn key_for(n: usize, secret: usize, layer: usize) -> SemanticKey {
        let layered = catalog::bv(n, secret).layered().unwrap();
        let model = NoiseModel::uniform(n, 1e-3, 1e-2, 1e-2);
        SemanticKey::compute(&layered, layer, &model, DEFAULT_SEED_POLICY)
    }

    fn amps_for(n: usize, salt: f64) -> Vec<C64> {
        (0..1usize << n).map(|i| C64::new(i as f64 + salt, -salt)).collect()
    }

    #[test]
    fn put_get_round_trip_survives_reopen() {
        let tmp = TempDir::new("roundtrip");
        let key = key_for(4, 0b101, 1);
        let amps = amps_for(4, 0.25);
        {
            let store = MsvStore::open(&tmp.0, 0).unwrap();
            let outcome = store.put(&key, &amps).unwrap();
            assert!(outcome.stored);
            assert_eq!(outcome.evicted, 0);
            // A second put of the same key is a no-op.
            assert!(!store.put(&key, &amps).unwrap().stored);
        }
        let store = MsvStore::open(&tmp.0, 0).unwrap();
        let hit = store.get(&key).expect("hit after reopen");
        for (orig, got) in amps.iter().zip(hit.amps.iter()) {
            assert_eq!(orig.re.to_bits(), got.re.to_bits());
            assert_eq!(orig.im.to_bits(), got.im.to_bits());
        }
        let stats = store.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.by_layer.len(), 1);
        assert_eq!(stats.by_layer[0].layer, 1);
    }

    #[test]
    fn missing_key_is_a_miss() {
        let tmp = TempDir::new("miss");
        let store = MsvStore::open(&tmp.0, 0).unwrap();
        assert!(store.get(&key_for(4, 0b011, 1)).is_none());
    }

    #[test]
    fn eviction_prefers_fewest_hits_then_oldest() {
        let tmp = TempDir::new("evict");
        // Each 4-qubit snapshot is 28 + 256 = 284 bytes; budget fits two.
        let store = MsvStore::open(&tmp.0, 600).unwrap();
        let first = key_for(4, 0b001, 1);
        let second = key_for(4, 0b010, 1);
        let third = key_for(4, 0b100, 1);
        store.put(&first, &amps_for(4, 1.0)).unwrap();
        store.put(&second, &amps_for(4, 2.0)).unwrap();
        // `first` earns a hit, so `second` (0 hits, older than `third`)
        // must be the victim.
        assert!(store.get(&first).is_some());
        let outcome = store.put(&third, &amps_for(4, 3.0)).unwrap();
        assert_eq!(outcome.evicted, 1);
        assert!(outcome.evicted_bytes > 0);
        assert!(store.get(&second).is_none(), "victim stays evicted");
        assert!(store.get(&first).is_some());
        assert!(store.get(&third).is_some(), "fresh write is never the victim");
    }

    #[test]
    fn corrupt_snapshot_degrades_to_miss_and_gc_reaps_it() {
        let tmp = TempDir::new("corrupt");
        let store = MsvStore::open(&tmp.0, 0).unwrap();
        let key = key_for(4, 0b110, 1);
        store.put(&key, &amps_for(4, 0.5)).unwrap();
        // Flip one payload bit on disk.
        let path = store.snapshot_path(&key.hex());
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, bytes).unwrap();
        assert!(store.get(&key).is_none(), "corruption is a miss");
        let report = store.gc().unwrap();
        assert_eq!(report.dead_entries, 1);
        assert_eq!(report.entries, 0);
        assert!(!path.exists());
    }

    #[test]
    fn truncated_manifest_line_is_skipped_and_file_readopted() {
        let tmp = TempDir::new("torn");
        let key = key_for(4, 0b111, 1);
        {
            let store = MsvStore::open(&tmp.0, 0).unwrap();
            store.put(&key, &amps_for(4, 4.0)).unwrap();
        }
        // Tear the manifest tail mid-line, as a crashed writer would.
        let manifest = tmp.0.join(MANIFEST_NAME);
        let text = fs::read_to_string(&manifest).unwrap();
        fs::write(&manifest, &text[..text.len() / 2]).unwrap();
        let store = MsvStore::open(&tmp.0, 0).unwrap();
        assert!(store.get(&key).is_some(), "valid file re-adopted past torn manifest");
        assert_eq!(store.stats().entries, 1);
    }

    #[test]
    fn gc_removes_orphan_files_and_compacts() {
        let tmp = TempDir::new("orphan");
        let store = MsvStore::open(&tmp.0, 0).unwrap();
        let key = key_for(4, 0b001, 2);
        store.put(&key, &amps_for(4, 6.0)).unwrap();
        store.get(&key).unwrap();
        store.get(&key).unwrap();
        // Drop an orphan snapshot with no manifest entry.
        let orphan = tmp.0.join(format!("{}.{SNAPSHOT_EXT}", "ff".repeat(16)));
        fs::write(&orphan, b"junk").unwrap();
        let report = store.gc().unwrap();
        assert_eq!(report.orphan_files, 1);
        assert_eq!(report.dead_entries, 0);
        assert!(!orphan.exists());
        // Compaction preserved hit counts across reopen.
        drop(store);
        let store = MsvStore::open(&tmp.0, 0).unwrap();
        assert_eq!(store.stats().hits, 2);
    }

    #[test]
    fn clear_empties_store_and_manifest() {
        let tmp = TempDir::new("clear");
        let store = MsvStore::open(&tmp.0, 0).unwrap();
        let key = key_for(4, 0b010, 1);
        store.put(&key, &amps_for(4, 7.0)).unwrap();
        store.clear().unwrap();
        assert!(store.get(&key).is_none());
        assert_eq!(store.stats().entries, 0);
        let store = MsvStore::open(&tmp.0, 0).unwrap();
        assert_eq!(store.stats().entries, 0);
    }
}
