#![warn(missing_docs)]
//! Persistent, canonically-keyed MSV store — the cross-run semantic
//! prefix cache.
//!
//! The paper's optimization reuses Multi-shot State Vectors *within* one
//! trial set: trials sharing their first *k* injections share every state
//! up to the *k*-th error. But the dominant real-world redundancy lives
//! **across runs**: variational and parameter-sweep workloads re-submit
//! the same circuit family thousands of times with only late-layer
//! rotation angles changing, so the noiseless prefix below the first
//! injection cut is recomputed identically on every invocation.
//!
//! This crate persists that prefix state between processes:
//!
//! * [`SemanticKey`] — a stable 128-bit key over the *float program* that
//!   materializes the prefix (fused kernel stream via
//!   `qsim_analyzer::canon`), the noise model, and the seed policy. Equal
//!   keys guarantee a bitwise-identical replay, which is what makes
//!   restoring a snapshot sound under the executors' exactness contract.
//! * [`MsvStore`] — a directory of checksummed amplitude snapshots plus an
//!   append-only JSONL manifest. Writes are atomic (temp file + rename),
//!   reads validate magic/geometry/checksum and degrade to a cache miss on
//!   any corruption, and a byte budget drives least-valuable-first
//!   eviction (fewest recorded hits, then least recently used).
//!
//! The store never decides *whether* reuse is sound — the key construction
//! does. The executors in `redsim` consult the store before materializing
//! a prefix and publish the frontier they computed on a miss.

mod key;
mod manifest;
mod snapshot;
mod store;

pub use key::{SemanticKey, DEFAULT_SEED_POLICY};
pub use manifest::{ManifestEvent, MANIFEST_NAME};
pub use snapshot::{decode_snapshot, encode_snapshot, Snapshot, SnapshotError, SNAPSHOT_EXT};
pub use store::{GcReport, LayerStat, MsvStore, PutOutcome, StoreHit, StoreStats};
