//! The append-only JSONL manifest.
//!
//! Every mutation of the store appends one JSON line; replaying the log
//! from the top reconstructs the entry table. Recency is **line order**
//! (the replay sequence number), not wall-clock time, which keeps replay
//! deterministic and the format trivially mergeable across concurrent
//! writers — interleaved appends from two processes replay to a coherent
//! table in whichever order the kernel serialized them.
//!
//! Robustness contract: a line that fails to parse (torn tail from a
//! crashed writer, garbage from a corrupted disk) is *skipped*, never
//! fatal. The store then lazily reconciles against the snapshot files
//! actually present.
//!
//! Event vocabulary:
//!
//! ```text
//! {"ev":"put","key":"<hex>","qubits":4,"layer":3,"bytes":284}
//! {"ev":"touch","key":"<hex>"}
//! {"ev":"evict","key":"<hex>"}
//! {"ev":"clear"}
//! ```

/// File name of the manifest inside a store directory.
pub const MANIFEST_NAME: &str = "manifest.jsonl";

/// One replayed manifest event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ManifestEvent {
    /// A snapshot was stored.
    Put {
        /// Key hex (file stem).
        key: String,
        /// Register width.
        qubits: u64,
        /// Prefix layer (inclusive).
        layer: u64,
        /// Snapshot file size in bytes.
        bytes: u64,
    },
    /// A stored snapshot served a hit.
    Touch {
        /// Key hex.
        key: String,
    },
    /// A snapshot was evicted under budget pressure.
    Evict {
        /// Key hex.
        key: String,
    },
    /// The store was cleared; all prior entries are void.
    Clear,
}

impl ManifestEvent {
    /// Render as one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            ManifestEvent::Put { key, qubits, layer, bytes } => format!(
                r#"{{"ev":"put","key":"{key}","qubits":{qubits},"layer":{layer},"bytes":{bytes}}}"#
            ),
            ManifestEvent::Touch { key } => format!(r#"{{"ev":"touch","key":"{key}"}}"#),
            ManifestEvent::Evict { key } => format!(r#"{{"ev":"evict","key":"{key}"}}"#),
            ManifestEvent::Clear => r#"{"ev":"clear"}"#.to_owned(),
        }
    }

    /// Parse one manifest line; `None` for anything malformed (the replay
    /// skips it).
    pub fn parse(line: &str) -> Option<ManifestEvent> {
        let fields = parse_flat_object(line.trim())?;
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let key_of = |fields: &dyn Fn(&str) -> Option<FlatValue>| -> Option<String> {
            match fields("key")? {
                FlatValue::Str(s) if is_key_hex(&s) => Some(s),
                _ => None,
            }
        };
        let fetch = |name: &str| get(name).cloned();
        match get("ev")? {
            FlatValue::Str(ev) => match ev.as_str() {
                "put" => {
                    let key = key_of(&fetch)?;
                    let num = |name: &str| match fetch(name)? {
                        FlatValue::Num(n) => Some(n),
                        FlatValue::Str(_) => None,
                    };
                    Some(ManifestEvent::Put {
                        key,
                        qubits: num("qubits")?,
                        layer: num("layer")?,
                        bytes: num("bytes")?,
                    })
                }
                "touch" => Some(ManifestEvent::Touch { key: key_of(&fetch)? }),
                "evict" => Some(ManifestEvent::Evict { key: key_of(&fetch)? }),
                "clear" => Some(ManifestEvent::Clear),
                _ => None,
            },
            FlatValue::Num(_) => None,
        }
    }
}

/// A valid key hex string: exactly 32 lowercase hex characters. Keys name
/// files on disk, so anything else (path separators, dots) is rejected at
/// parse time.
pub(crate) fn is_key_hex(s: &str) -> bool {
    s.len() == 32 && s.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum FlatValue {
    Str(String),
    Num(u64),
}

/// Parse a flat JSON object of string and unsigned-integer values — the
/// only shape the manifest writer emits. Hand-rolled to keep this crate
/// dependency-free; anything outside the shape returns `None`.
fn parse_flat_object(line: &str) -> Option<Vec<(String, FlatValue)>> {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && (bytes[*i] as char).is_ascii_whitespace() {
            *i += 1;
        }
    };
    skip_ws(&mut i);
    if i >= bytes.len() || bytes[i] != b'{' {
        return None;
    }
    i += 1;
    skip_ws(&mut i);
    if i < bytes.len() && bytes[i] == b'}' {
        return if i + 1 == bytes.len() { Some(out) } else { None };
    }
    loop {
        skip_ws(&mut i);
        let key = parse_string(bytes, &mut i)?;
        skip_ws(&mut i);
        if i >= bytes.len() || bytes[i] != b':' {
            return None;
        }
        i += 1;
        skip_ws(&mut i);
        let value = if i < bytes.len() && bytes[i] == b'"' {
            FlatValue::Str(parse_string(bytes, &mut i)?)
        } else {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i == start {
                return None;
            }
            FlatValue::Num(line[start..i].parse().ok()?)
        };
        out.push((key, value));
        skip_ws(&mut i);
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {
                i += 1;
                skip_ws(&mut i);
                return if i == bytes.len() { Some(out) } else { None };
            }
            _ => return None,
        }
    }
}

/// Parse a JSON string without escapes (keys and key-hex values never
/// contain any); a string containing `\` fails the line.
fn parse_string(bytes: &[u8], i: &mut usize) -> Option<String> {
    if *i >= bytes.len() || bytes[*i] != b'"' {
        return None;
    }
    *i += 1;
    let start = *i;
    while *i < bytes.len() && bytes[*i] != b'"' {
        if bytes[*i] == b'\\' {
            return None;
        }
        *i += 1;
    }
    if *i >= bytes.len() {
        return None;
    }
    let s = std::str::from_utf8(&bytes[start..*i]).ok()?.to_owned();
    *i += 1;
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &str = "0123456789abcdef0123456789abcdef";

    #[test]
    fn events_round_trip() {
        let events = [
            ManifestEvent::Put { key: KEY.to_owned(), qubits: 4, layer: 3, bytes: 284 },
            ManifestEvent::Touch { key: KEY.to_owned() },
            ManifestEvent::Evict { key: KEY.to_owned() },
            ManifestEvent::Clear,
        ];
        for ev in &events {
            let line = ev.render();
            assert_eq!(ManifestEvent::parse(&line).as_ref(), Some(ev), "line: {line}");
        }
    }

    #[test]
    fn malformed_lines_are_skipped_not_fatal() {
        for bad in [
            "",
            "garbage",
            "{\"ev\":\"put\"}",                          // missing fields
            "{\"ev\":\"frob\",\"key\":\"00\"}",          // unknown event
            "{\"ev\":\"touch\",\"key\":\"../etc\"}",     // non-hex key
            "{\"ev\":\"touch\",\"key\":\"ABCDEF\"}",     // uppercase / short
            "{\"ev\":\"put\",\"key\":\"0123456789abcdef0123456789abcdef\",\"qubits\":\"x\",\"layer\":1,\"bytes\":2}",
            "{\"ev\":\"clear\"} trailing",
            "{\"ev\":\"clear\"",                         // torn tail
            "{\"ev\":\"put\",\"key\":\"0123456789abcdef0123456789abcdef\",\"qubits\":4,\"layer\":3,\"by", // torn mid-field
        ] {
            assert_eq!(ManifestEvent::parse(bad), None, "accepted: {bad}");
        }
    }

    #[test]
    fn parser_tolerates_whitespace_and_field_order() {
        let line = format!(" {{ \"key\" : \"{KEY}\" , \"ev\" : \"touch\" }} ");
        assert_eq!(ManifestEvent::parse(&line), Some(ManifestEvent::Touch { key: KEY.into() }));
    }

    #[test]
    fn key_hex_validation_is_strict() {
        assert!(is_key_hex(KEY));
        assert!(!is_key_hex("0123456789ABCDEF0123456789ABCDEF"));
        assert!(!is_key_hex("0123456789abcdef0123456789abcde"));
        assert!(!is_key_hex("0123456789abcdef0123456789abcdeg"));
    }
}
