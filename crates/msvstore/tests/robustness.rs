//! Robustness suite: every corruption and contention scenario must
//! degrade to a cache miss and rebuild — never a panic, never wrong
//! amplitudes.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use qsim_circuit::catalog;
use qsim_noise::NoiseModel;
use qsim_statevec::C64;
use redsim_msvstore::{encode_snapshot, MsvStore, SemanticKey, DEFAULT_SEED_POLICY, SNAPSHOT_EXT};

const N_QUBITS: usize = 4;
const N_KEYS: usize = 7;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("msvstore-robust-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// A fixed family of distinct keys — both test processes derive the same
/// set, so contention lands on the same files.
fn keys() -> Vec<SemanticKey> {
    let model = NoiseModel::uniform(N_QUBITS, 1e-3, 1e-2, 1e-2);
    (1..=N_KEYS)
        .map(|secret| {
            let layered = catalog::bv(N_QUBITS, secret).layered().unwrap();
            SemanticKey::compute(&layered, 1 + secret % 2, &model, DEFAULT_SEED_POLICY)
        })
        .collect()
}

/// Deterministic amplitudes for key index `i` — identical in every
/// process, so any cross-process read can be checked bit for bit.
fn amps_for(i: usize) -> Vec<C64> {
    (0..1usize << N_QUBITS)
        .map(|a| C64::new(0.5 * a as f64 + i as f64, -(i as f64) - 0.25))
        .collect()
}

fn assert_bitwise(actual: &[C64], expected: &[C64]) {
    assert_eq!(actual.len(), expected.len());
    for (got, want) in actual.iter().zip(expected) {
        assert_eq!(got.re.to_bits(), want.re.to_bits());
        assert_eq!(got.im.to_bits(), want.im.to_bits());
    }
}

#[test]
fn truncated_manifest_recovers_to_valid_entries() {
    let tmp = TempDir::new("manifest");
    let keys = keys();
    {
        let store = MsvStore::open(&tmp.0, 0).unwrap();
        for (i, key) in keys.iter().enumerate() {
            store.put(key, &amps_for(i)).unwrap();
        }
    }
    // Tear the manifest mid-line, as a crashed writer leaves it.
    let manifest = tmp.0.join(redsim_msvstore::MANIFEST_NAME);
    let text = fs::read_to_string(&manifest).unwrap();
    fs::write(&manifest, &text[..text.len() - text.len() / 3]).unwrap();
    // Reopen: no panic, surviving entries replay, the torn-off ones are
    // re-adopted from their (valid) snapshot files on first lookup.
    let store = MsvStore::open(&tmp.0, 0).unwrap();
    for (i, key) in keys.iter().enumerate() {
        let hit = store.get(key).expect("every valid snapshot remains reachable");
        assert_bitwise(&hit.amps, &amps_for(i));
    }
    assert_eq!(store.stats().entries as usize, keys.len());
}

#[test]
fn corrupt_and_short_snapshots_miss_then_rebuild() {
    let tmp = TempDir::new("snapshot");
    let store = MsvStore::open(&tmp.0, 0).unwrap();
    let keys = keys();
    let (corrupt_key, short_key) = (&keys[0], &keys[1]);
    store.put(corrupt_key, &amps_for(0)).unwrap();
    store.put(short_key, &amps_for(1)).unwrap();

    let corrupt_path = tmp.0.join(format!("{}.{SNAPSHOT_EXT}", corrupt_key.hex()));
    let mut bytes = fs::read(&corrupt_path).unwrap();
    bytes[40] ^= 0x10;
    fs::write(&corrupt_path, bytes).unwrap();

    let short_path = tmp.0.join(format!("{}.{SNAPSHOT_EXT}", short_key.hex()));
    let bytes = fs::read(&short_path).unwrap();
    fs::write(&short_path, &bytes[..bytes.len() / 2]).unwrap();

    assert!(store.get(corrupt_key).is_none(), "bit flip is a miss");
    assert!(store.get(short_key).is_none(), "truncation is a miss");

    // The rebuild path: put again (the stale entry is overwritten because
    // the file no longer validates after gc) and read back intact.
    store.gc().unwrap();
    store.put(corrupt_key, &amps_for(0)).unwrap();
    store.put(short_key, &amps_for(1)).unwrap();
    assert_bitwise(&store.get(corrupt_key).unwrap().amps, &amps_for(0));
    assert_bitwise(&store.get(short_key).unwrap().amps, &amps_for(1));
}

#[test]
fn snapshot_with_mismatched_geometry_is_a_miss() {
    let tmp = TempDir::new("geometry");
    let store = MsvStore::open(&tmp.0, 0).unwrap();
    let key = &keys()[0];
    // An adversarial (or stale-format) file at the key's path declaring a
    // *different* register width — internally consistent, checksum valid.
    let foreign: Vec<C64> = (0..8).map(|a| C64::new(a as f64, 0.0)).collect();
    let image = encode_snapshot(3, key.prefix_layer() as u32, &foreign);
    fs::write(tmp.0.join(format!("{}.{SNAPSHOT_EXT}", key.hex())), image).unwrap();
    assert!(store.get(key).is_none(), "geometry disagreeing with the key is a miss");
    // Same for a mismatched prefix layer.
    let image = encode_snapshot(N_QUBITS as u32, key.prefix_layer() as u32 + 1, &amps_for(0));
    fs::write(tmp.0.join(format!("{}.{SNAPSHOT_EXT}", key.hex())), image).unwrap();
    assert!(store.get(key).is_none(), "layer disagreeing with the key is a miss");
}

/// Child half of the concurrency test: runs only when re-invoked by
/// `concurrent_writers_never_corrupt` with the coordination env var set;
/// as a normal test it is a no-op pass.
#[test]
fn concurrent_writer_child() {
    let Some(dir) = std::env::var_os("MSVSTORE_CONCURRENCY_DIR") else {
        return;
    };
    let store = MsvStore::open(Path::new(&dir), 0).unwrap();
    let keys = keys();
    for _round in 0..25 {
        for (i, key) in keys.iter().enumerate() {
            store.put(key, &amps_for(i)).unwrap();
            if let Some(hit) = store.get(key) {
                assert_bitwise(&hit.amps, &amps_for(i));
            }
        }
    }
}

#[test]
fn concurrent_writers_never_corrupt() {
    let tmp = TempDir::new("concurrent");
    let exe = std::env::current_exe().unwrap();
    let children: Vec<_> = (0..2)
        .map(|_| {
            Command::new(&exe)
                .args(["concurrent_writer_child", "--exact", "--nocapture"])
                .env("MSVSTORE_CONCURRENCY_DIR", &tmp.0)
                .spawn()
                .unwrap()
        })
        .collect();
    for mut child in children {
        assert!(child.wait().unwrap().success(), "writer process must not panic");
    }
    // After two interleaved writers: every key resolves to bit-exact
    // amplitudes, the replayed table matches, and gc finds nothing dead.
    let store = MsvStore::open(&tmp.0, 0).unwrap();
    let keys = keys();
    for (i, key) in keys.iter().enumerate() {
        let hit = store.get(key).expect("all keys stored");
        assert_bitwise(&hit.amps, &amps_for(i));
    }
    assert_eq!(store.stats().entries as usize, keys.len());
    let report = store.gc().unwrap();
    assert_eq!(report.dead_entries, 0);
    assert_eq!(report.orphan_files, 0);
}
