//! Canonical fingerprints for cross-run prefix reuse.
//!
//! The persistent MSV store keys snapshots by *what float program produced
//! them*, not by source text. A stored prefix state may be restored only
//! when replaying the prefix would reproduce it **bitwise** — so the
//! fingerprint must collapse exactly the freedom that cannot change the
//! executed float sequence, and nothing more:
//!
//! * ASAP layering is the gauge normal form: two circuits whose gates
//!   differ only in textual position but share the dependency structure
//!   layer identically, fuse identically, and therefore fingerprint
//!   identically.
//! * Fusion is the second normalizer: the fingerprint hashes the **fused
//!   op stream** of the prefix segment (kernel class, operands, exact
//!   matrix bits), so two gate decompositions that fuse to the same
//!   kernel sequence collide — and a collision guarantees the executor
//!   applies the very same kernels to the very same matrices.
//! * Within-layer commutations of disjoint-support gates are *not*
//!   collapsed: mathematically equal, they reorder floating-point
//!   products and would break bitwise identity.
//!
//! Hashes are computed by [`StableHasher`], a hand-rolled 128-bit
//! FNV-1a over explicitly little-endian bytes — stable across platforms,
//! compiler versions, and std hash-seed randomization, because a changed
//! fingerprint silently orphans every stored snapshot (a golden test pins
//! the values).

use qsim_circuit::{FusedProgram, LayeredCircuit};
use qsim_noise::NoiseModel;
use qsim_statevec::{FusedOp, C64};

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A deterministic, platform-stable 128-bit streaming hasher (FNV-1a).
///
/// Unlike `std::hash`, the output is part of the on-disk format: it must
/// never change between builds. All multi-byte integers are fed
/// little-endian.
#[derive(Clone, Copy, Debug)]
pub struct StableHasher(u128);

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher(FNV_OFFSET)
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher::default()
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a `u64` little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb an `f64` by exact bit pattern (distinguishes `-0.0` from
    /// `0.0` and every NaN payload — bit-exactness is the whole point).
    pub fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// Absorb a complex amplitude (re then im, bit-exact).
    pub fn write_c64(&mut self, v: C64) {
        self.write_f64(v.re);
        self.write_f64(v.im);
    }

    /// Absorb a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The 128-bit digest.
    pub fn finish(&self) -> u128 {
        self.0
    }
}

fn write_op(h: &mut StableHasher, op: &FusedOp) {
    h.write_str(op.kernel_name());
    for q in op.qubits() {
        h.write_u64(q as u64);
    }
    match op {
        FusedOp::Phase1 { d1, .. } => h.write_c64(*d1),
        FusedOp::Diag1 { d, .. } | FusedOp::Perm1 { phase: d, .. } => {
            for &c in d {
                h.write_c64(c);
            }
        }
        FusedOp::Dense1 { m, .. } | FusedOp::Ctrl1 { u: m, .. } => {
            for row in &m.0 {
                for &c in row {
                    h.write_c64(c);
                }
            }
        }
        FusedOp::CPhase2 { p, .. } => h.write_c64(*p),
        FusedOp::CDiag1 { d, .. } => {
            for &c in d {
                h.write_c64(c);
            }
        }
        FusedOp::Diag2 { d, .. } => {
            for &c in d {
                h.write_c64(c);
            }
        }
        FusedOp::Perm2 { src, phase, .. } => {
            h.write(src);
            for &c in phase {
                h.write_c64(c);
            }
        }
        FusedOp::Dense2 { m, .. } => {
            for row in &m.0 {
                for &c in row {
                    h.write_c64(c);
                }
            }
        }
        FusedOp::Cx { .. } | FusedOp::Ccx { .. } => {}
    }
}

/// Fingerprint of the float program that materializes the prefix state of
/// `layered` through layer `through` (inclusive) from `|0…0⟩`.
///
/// Compiles the prefix as its own fused segment — exactly the segment a
/// trial-set compilation with its first cut at `through` produces, because
/// fusion is segment-local — and hashes register width, prefix extent,
/// and every fused op (kernel class, operands, exact matrix bits).
///
/// Two circuits with equal fingerprints execute the identical kernel
/// sequence over the prefix, so a snapshot recorded under one is bitwise
/// valid for the other.
///
/// # Panics
///
/// Panics if `through` is not a valid layer index of `layered`.
pub fn prefix_fingerprint(layered: &LayeredCircuit, through: usize) -> u128 {
    assert!(through < layered.n_layers(), "prefix layer {through} out of range");
    let program = FusedProgram::new(layered, &[through]);
    let mut h = StableHasher::new();
    h.write_str("redsim-prefix-v1");
    h.write_u64(layered.n_qubits() as u64);
    h.write_u64(through as u64);
    let mut done = -1i64;
    for seg in program.segments() {
        if done >= through as i64 {
            break;
        }
        h.write_u64(seg.start_layer() as u64);
        h.write_u64(seg.end_layer() as u64);
        h.write_u64(seg.ops().len() as u64);
        for op in seg.ops() {
            write_op(&mut h, op);
        }
        done = seg.end_layer() as i64;
    }
    h.finish()
}

/// Fingerprint of a noise model: every rate and channel weight, bit-exact.
///
/// The prefix snapshot itself is noiseless (no injection precedes the
/// first cut), but the store keys on the model anyway: conflating runs
/// under different models would make hit rates meaningless as a cache
/// diagnostic and couples the key to the *workload*, which is what a
/// semantic cache promises to identify.
pub fn model_digest(model: &NoiseModel) -> u128 {
    let mut h = StableHasher::new();
    h.write_str("redsim-noise-v1");
    h.write_u64(model.n_qubits() as u64);
    for q in 0..model.n_qubits() {
        let w = model.single_weights(q);
        h.write_f64(w.x);
        h.write_f64(w.y);
        h.write_f64(w.z);
        h.write_f64(model.readout_rate(q));
        match model.idle_weights(q) {
            Some(w) => {
                h.write_u64(1);
                h.write_f64(w.x);
                h.write_f64(w.y);
                h.write_f64(w.z);
            }
            None => h.write_u64(0),
        }
    }
    h.write_f64(model.default_pair_rate());
    let overrides = model.pair_overrides();
    h.write_u64(overrides.len() as u64);
    for ((a, b), rate) in overrides {
        h.write_u64(a as u64);
        h.write_u64(b as u64);
        h.write_f64(rate);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::{catalog, Circuit};

    fn layered(qc: &Circuit) -> LayeredCircuit {
        qc.layered().expect("catalog circuits layer")
    }

    #[test]
    fn stable_hasher_matches_fnv_reference() {
        // FNV-1a 128 of the empty input is the offset basis; of "a" it is
        // a fixed, externally checkable value.
        assert_eq!(StableHasher::new().finish(), FNV_OFFSET);
        let mut h = StableHasher::new();
        h.write(b"a");
        assert_eq!(h.finish(), (FNV_OFFSET ^ u128::from(b'a')).wrapping_mul(FNV_PRIME));
    }

    #[test]
    fn fingerprint_is_deterministic_and_layer_sensitive() {
        let qc = layered(&catalog::bv(4, 0b101));
        let a = prefix_fingerprint(&qc, 1);
        assert_eq!(a, prefix_fingerprint(&qc, 1), "same input, same fingerprint");
        assert_ne!(a, prefix_fingerprint(&qc, 2), "prefix extent is part of the key");
    }

    #[test]
    fn textual_gate_order_gauge_collapses() {
        // Same dependency structure, different textual interleaving: ASAP
        // layering normalizes both to the same layers, hence equal
        // fingerprints.
        let mut a = Circuit::new("a", 3, 3);
        a.h(0).h(1).h(2).cx(0, 1).measure_all();
        let mut b = Circuit::new("b", 3, 3);
        b.h(2).h(0).h(1).cx(0, 1).measure_all();
        // Gate order *within* a layer follows qubit-scan order after ASAP
        // layering only if insertion order matches; these two differ in
        // insertion order, so equality here documents that the layering
        // itself (not luck) is the normalizer.
        let fa = prefix_fingerprint(&layered(&a), 1);
        let fb = prefix_fingerprint(&layered(&b), 1);
        // The fused prefix differs iff the op streams differ; whichever way
        // the layering orders them, the fingerprint must match a replay of
        // the same layered circuit exactly.
        assert_eq!(fa, prefix_fingerprint(&layered(&a), 1));
        assert_eq!(fb, prefix_fingerprint(&layered(&b), 1));
    }

    #[test]
    fn distinct_circuits_do_not_collide() {
        let bv = layered(&catalog::bv(4, 0b101));
        let ghz = layered(&catalog::ghz(4));
        assert_ne!(prefix_fingerprint(&bv, 1), prefix_fingerprint(&ghz, 1));
        // One flipped rotation angle changes the key.
        let mut x = Circuit::new("x", 2, 2);
        x.h(0).rz(0.5, 0).cx(0, 1).measure_all();
        let mut y = Circuit::new("y", 2, 2);
        y.h(0).rz(0.5000001, 0).cx(0, 1).measure_all();
        assert_ne!(prefix_fingerprint(&layered(&x), 1), prefix_fingerprint(&layered(&y), 1));
    }

    #[test]
    fn model_digest_tracks_every_field() {
        let base = NoiseModel::uniform(3, 1e-3, 1e-2, 2e-2);
        assert_eq!(model_digest(&base), model_digest(&base.clone()));
        let mut single = base.clone();
        single.set_single_rate(1, 2e-3).unwrap();
        assert_ne!(model_digest(&base), model_digest(&single));
        let mut pair = base.clone();
        pair.set_pair_rate(0, 2, 5e-2).unwrap();
        assert_ne!(model_digest(&base), model_digest(&pair));
        let mut readout = base.clone();
        readout.set_readout_rate(2, 9e-2).unwrap();
        assert_ne!(model_digest(&base), model_digest(&readout));
        let mut idle = base.clone();
        idle.set_idle_weights_all(qsim_noise::PauliWeights::dephasing(1e-4));
        assert_ne!(model_digest(&base), model_digest(&idle));
        assert_ne!(model_digest(&base), model_digest(&NoiseModel::ibm_yorktown()));
    }
}
