//! Pass 6 — the strategy advisor: symbolic Pauli-frame commutation plus an
//! analytic cost model that predicts, per execution strategy, exactly what
//! `redsim`'s executors will report in `ExecStats`.
//!
//! Three analyses feed the recommendation:
//!
//! 1. **Frame commutation** ([`commute_injection`]): each injected Pauli is
//!    conjugated forward through every fused operator after its cut. While
//!    the suffix is Clifford the error stays a Pauli product, so a
//!    hypothetical frame-tracking executor (TUSQ-style, ROADMAP item 2)
//!    could absorb the trial into classical bookkeeping; the first
//!    non-Clifford operator is a conservative bail-out.
//! 2. **Pass prediction** ([`advise`]): closed forms for the sequential and
//!    fused-baseline executors, and a symbolic replay of the streaming
//!    reuse loop for the reuse/compressed executors. The replay walks the
//!    same `(depth, done)` stack with the same `keep = lcp(cur, next)`
//!    discipline, charging segment passes from prefix sums instead of
//!    touching amplitudes — because the trial order sorts extensions
//!    *before* their prefixes, the walk is bitwise-faithful to
//!    `ExecStats` (the exactness suites assert equality, not closeness).
//! 3. **Ranking**: strategies sorted by predicted amplitude passes, ties
//!    broken toward implemented strategies ([`Advice::best_executable`]
//!    additionally skips the predicted-only frame-tracking mode).
//!
//! The pass itself ([`check`]) re-derives all three analyses and flags any
//! divergence from the claims a plan carries (`A202`/`A203` errors), plus
//! advisory warnings when a *declared* strategy is predicted suboptimal
//! (`A204`) or leaves a mostly frame-trackable trial set untracked
//! (`A205`).

use std::collections::BTreeMap;

use qsim_circuit::FusedProgram;
use qsim_noise::{lcp, Injection, Site, Trial};
use qsim_statevec::Pauli;

use crate::diag::{DiagCode, Diagnostic, Location};
use crate::passes::structure::{
    classify_program, conjugate, local_op, PauliProduct, SegmentStructure, STRUCTURE_TOL,
};
use crate::plan::ExecutionPlan;

/// One execution strategy the advisor can cost.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strategy {
    /// Run every trial from scratch, gate by gate (no fusion).
    Sequential,
    /// Run every trial from scratch over the fused program.
    Fused,
    /// Prefix-reuse streaming executor (under the plan's MSV budget).
    Reuse,
    /// Prefix-reuse with compressed stored states (unbounded cache).
    Compressed,
    /// Batched tree execution: the reuse trie made explicit, sibling
    /// states swept as one frontier per fused op (same passes as
    /// unbounded reuse; peak residency = distinct injection lists).
    Tree,
    /// Pauli-frame tracking for fully trackable trials (predicted only;
    /// no executor ships yet — see ROADMAP item 2).
    FrameTracking,
}

impl Strategy {
    /// Every strategy the advisor costs, in declaration order.
    pub const ALL: [Strategy; 6] = [
        Strategy::Sequential,
        Strategy::Fused,
        Strategy::Reuse,
        Strategy::Compressed,
        Strategy::Tree,
        Strategy::FrameTracking,
    ];

    /// Stable lower-case name (reports, JSON, CLI).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Sequential => "sequential",
            Strategy::Fused => "fused",
            Strategy::Reuse => "reuse",
            Strategy::Compressed => "compressed",
            Strategy::Tree => "tree",
            Strategy::FrameTracking => "frame-tracking",
        }
    }

    /// Parse the stable name back; `None` for unknown strategies.
    pub fn parse(text: &str) -> Option<Self> {
        Strategy::ALL.into_iter().find(|s| s.name() == text)
    }

    /// Whether an executor for this strategy actually ships.
    pub fn executable(self) -> bool {
        !matches!(self, Strategy::FrameTracking)
    }

    /// Tie-break rank: equal-cost strategies prefer the lower rank, so
    /// implemented, cheaper-machinery strategies win exact ties.
    fn tie_rank(self) -> u8 {
        match self {
            Strategy::Reuse => 0,
            Strategy::Tree => 1,
            Strategy::Compressed => 2,
            Strategy::Fused => 3,
            Strategy::Sequential => 4,
            Strategy::FrameTracking => 5,
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The cost model's prediction for one strategy — field-for-field what the
/// matching executor reports in `ExecStats` (for the shipped strategies;
/// frame tracking is a documented model, not a measurement contract).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StrategyPrediction {
    /// Which strategy this prediction costs.
    pub strategy: Strategy,
    /// Predicted paper-`ops` metric (source gates + injections).
    pub ops: u64,
    /// Predicted fused kernel applications (gate work only).
    pub fused_ops: u64,
    /// Predicted amplitude passes (kernel applications + injections).
    pub amplitude_passes: u64,
    /// Predicted peak cached-state residency (0 for from-scratch runs,
    /// which never cache).
    pub msv_peak: usize,
}

impl StrategyPrediction {
    /// Wall-cost proxy: amplitude updates, i.e. passes × 2ⁿ amplitudes.
    pub fn amplitude_updates(&self, n_qubits: usize) -> f64 {
        self.amplitude_passes as f64 * (1u64 << n_qubits.min(63)) as f64
    }
}

/// The commutation verdict for one distinct injection site.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectionVerdict {
    /// The injected error (layer + site + Pauli factors).
    pub injection: Injection,
    /// Whether the error commutes through its entire suffix as a Pauli
    /// product (so frame tracking is sound for it).
    pub trackable: bool,
    /// Fused amplitude passes the suffix after this cut costs — the passes
    /// frame tracking eliminates for a trial whose last injection this is.
    pub suffix_passes: u64,
}

/// Everything the advisor derives from a plan: the structure
/// classification, per-injection frame verdicts, and the ranked strategy
/// predictions.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq)]
pub struct Advice {
    /// Structure class per fused segment, in segment order.
    pub segments: Vec<SegmentStructure>,
    /// Verdict per *distinct* injection of the trial set, sorted.
    pub verdicts: Vec<InjectionVerdict>,
    /// Trials in the set.
    pub n_trials: usize,
    /// Trials whose every injection is trackable (error-free included).
    pub trackable_trials: usize,
    /// Injection occurrences across all trials.
    pub total_injections: u64,
    /// Occurrences whose verdict is trackable.
    pub trackable_injections: u64,
    /// Predictions ranked best (fewest amplitude passes) first.
    pub predictions: Vec<StrategyPrediction>,
}

impl Advice {
    /// The ranked-best prediction (frame tracking included).
    pub fn best(&self) -> &StrategyPrediction {
        &self.predictions[0]
    }

    /// The best prediction whose executor actually ships.
    pub fn best_executable(&self) -> &StrategyPrediction {
        self.predictions
            .iter()
            .find(|p| p.strategy.executable())
            .expect("the ranked set always contains executable strategies")
    }

    /// Look up one strategy's prediction.
    pub fn prediction(&self, strategy: Strategy) -> Option<&StrategyPrediction> {
        self.predictions.iter().find(|p| p.strategy == strategy)
    }

    /// Fraction of trials that are fully frame-trackable (0 when empty).
    pub fn trackable_fraction(&self) -> f64 {
        if self.n_trials == 0 {
            0.0
        } else {
            self.trackable_trials as f64 / self.n_trials as f64
        }
    }
}

/// Per-layer-boundary prefix sums of the fused program's work, so the
/// symbolic replay can charge an advance `done → through` in O(1) exactly
/// as `FusedProgram::apply_through` would.
struct PassPrefix {
    /// `fused[l + 1]` = kernel ops of all segments ending at or before
    /// layer `l`; index 0 is the pre-circuit boundary.
    fused: Vec<u64>,
    /// Same, counting source gates.
    source: Vec<u64>,
}

impl PassPrefix {
    fn new(program: &FusedProgram) -> Self {
        let n_layers = program.n_layers();
        let mut fused = vec![0u64; n_layers + 1];
        let mut source = vec![0u64; n_layers + 1];
        let (mut f, mut s) = (0u64, 0u64);
        for seg in program.segments() {
            // Mid-segment boundaries keep the pre-segment value: a (corrupt)
            // non-cut-aligned query charges the segment as "not yet run",
            // which keeps the walk total and deterministic.
            for l in seg.start_layer()..seg.end_layer() {
                fused[l + 1] = f;
                source[l + 1] = s;
            }
            f += seg.ops().len() as u64;
            s += seg.source_gates() as u64;
            fused[seg.end_layer() + 1] = f;
            source[seg.end_layer() + 1] = s;
        }
        PassPrefix { fused, source }
    }

    /// Cumulative `(source_gates, fused_ops)` through layer `l` inclusive
    /// (`-1` = nothing); out-of-range layers clamp.
    fn through(&self, l: i64) -> (u64, u64) {
        let idx = (l + 1).clamp(0, self.fused.len() as i64 - 1) as usize;
        (self.source[idx], self.fused[idx])
    }

    /// Charge an advance of a frontier from `*done` to `through`, exactly
    /// mirroring `apply_through`'s `while done < through` loop.
    fn advance(&self, done: &mut i64, through: i64) -> (u64, u64) {
        if through <= *done {
            return (0, 0);
        }
        let (s0, f0) = self.through(*done);
        let (s1, f1) = self.through(through);
        *done = through;
        (s1 - s0, f1 - f0)
    }
}

/// Accumulator matching the `ExecStats` fields the predictions cover.
#[derive(Default)]
struct Counts {
    ops: u64,
    fused_ops: u64,
    passes: u64,
    peak: usize,
}

impl Counts {
    fn charge_advance(&mut self, (src, fused): (u64, u64)) {
        self.ops += src;
        self.fused_ops += fused;
        self.passes += fused;
    }

    fn charge_injection(&mut self) {
        self.ops += 1;
        self.passes += 1;
    }

    fn prediction(&self, strategy: Strategy) -> StrategyPrediction {
        StrategyPrediction {
            strategy,
            ops: self.ops,
            fused_ops: self.fused_ops,
            amplitude_passes: self.passes,
            msv_peak: self.peak,
        }
    }
}

/// Symbolically replay the streaming reuse loop over `order` (entries
/// failing `include` are skipped, as are out-of-range indices) and return
/// its exact `ExecStats` counts. This mirrors `run_streaming_engine`
/// frame-for-frame: a stack of `(depth, done)` pairs with in-place
/// advances, clone-at-frontier below the shared depth, consume-top beyond
/// it, and eager drops back to `keep`.
fn predict_stream(
    prefix: &PassPrefix,
    trials: &[Trial],
    order: &[usize],
    n_layers: usize,
    budget: usize,
    include: impl Fn(usize) -> bool,
) -> Counts {
    let budget = budget.max(1);
    let last_layer = n_layers as i64 - 1;
    let included: Vec<&Trial> =
        order.iter().filter(|&&orig| include(orig)).filter_map(|&orig| trials.get(orig)).collect();
    let mut counts = Counts::default();
    let mut peak = usize::from(!included.is_empty());
    // (depth, done) per cached frame; the root is never dropped.
    let mut stack: Vec<(usize, i64)> = vec![(0, -1)];
    for (pos, cur) in included.iter().enumerate() {
        let injections = cur.injections();
        let keep = match included.get(pos + 1) {
            Some(next) => lcp(cur, next).min(budget - 1),
            None => 0,
        };
        let mut d = stack.last().expect("root frame is never dropped").0;
        loop {
            if d == injections.len() {
                let top = stack.last_mut().expect("nonempty stack");
                counts.charge_advance(prefix.advance(&mut top.1, last_layer));
                while stack.last().is_some_and(|&(depth, _)| depth > keep) {
                    stack.pop();
                }
                break;
            }
            let target = (injections[d].layer() as i64).min(last_layer.max(0));
            {
                let top = stack.last_mut().expect("nonempty stack");
                counts.charge_advance(prefix.advance(&mut top.1, target));
            }
            counts.charge_injection();
            if d < keep {
                stack.push((d + 1, target));
                peak = peak.max(stack.len());
                d += 1;
            } else {
                if d > keep {
                    stack.pop();
                    while stack.last().is_some_and(|&(depth, _)| depth > keep) {
                        stack.pop();
                    }
                }
                let mut done = target;
                for inj in &injections[d + 1..] {
                    let inj_target = (inj.layer() as i64).min(last_layer.max(0));
                    counts.charge_advance(prefix.advance(&mut done, inj_target));
                    counts.charge_injection();
                }
                counts.charge_advance(prefix.advance(&mut done, last_layer));
                break;
            }
        }
    }
    counts.peak = if included.is_empty() { 0 } else { peak };
    counts
}

/// Commute one injected Pauli forward through every fused operator after
/// its cut. Returns the verdict plus the suffix pass count the injection's
/// frame-tracked execution would eliminate.
pub fn commute_injection(program: &FusedProgram, injection: &Injection) -> InjectionVerdict {
    let prefix = PassPrefix::new(program);
    commute_injection_with(program, &prefix, injection)
}

fn commute_injection_with(
    program: &FusedProgram,
    prefix: &PassPrefix,
    injection: &Injection,
) -> InjectionVerdict {
    let total = prefix.through(program.n_layers() as i64 - 1).1;
    let suffix_passes = total - prefix.through(injection.layer() as i64).1;
    let trackable = commute_frame(program, injection).is_some();
    InjectionVerdict { injection: *injection, trackable, suffix_passes }
}

/// The end-of-circuit Pauli frame of a trackable injection: an overall
/// phase `i^phase_quarters` and one Pauli factor per qubit. The frame is
/// what a tracking executor would apply classically at measurement; the
/// soundness tests apply it to an actual state vector and compare against
/// running the injection through the suffix amplitudes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommutedFrame {
    /// Global phase as a power of `i` (mod 4) — unobservable, but carried
    /// so state-level soundness checks can compare amplitudes exactly.
    pub phase_quarters: u8,
    /// Pauli factor per qubit (`None` = identity).
    pub factors: Vec<Option<Pauli>>,
}

/// Conjugate `injection`'s Pauli forward through every fused operator
/// after its cut. `None` means the error leaves the Pauli group at some
/// non-Clifford operator (the conservative bail-out): frame tracking is
/// not provably sound for this injection.
pub fn commute_frame(program: &FusedProgram, injection: &Injection) -> Option<CommutedFrame> {
    let n_qubits = program.n_qubits();
    let mut frame: Vec<Option<Pauli>> = vec![None; n_qubits];
    let mut phase_quarters = 0u8;
    let (low, high) = injection.factors();
    match injection.site() {
        Site::One(q) => {
            *frame.get_mut(q)? = low;
        }
        Site::Two(a, b) => {
            *frame.get_mut(a)? = low;
            *frame.get_mut(b)? = high;
        }
    }
    for seg in program.segments() {
        if seg.start_layer() <= injection.layer() {
            continue;
        }
        for op in seg.ops() {
            let local = local_op(op);
            if local.qubits.iter().any(|&q| q >= n_qubits) {
                return None;
            }
            if local.qubits.iter().all(|&q| frame[q].is_none()) {
                continue;
            }
            let factors = local.qubits.iter().map(|&q| frame[q]).collect();
            let product = PauliProduct { phase_quarters: 0, factors };
            let out = conjugate(&local, &product, STRUCTURE_TOL)?;
            for (&q, &factor) in local.qubits.iter().zip(&out.factors) {
                frame[q] = factor;
            }
            phase_quarters = (phase_quarters + out.phase_quarters) % 4;
        }
    }
    Some(CommutedFrame { phase_quarters, factors: frame })
}

/// Derive the full advice for a plan: classify segments, judge every
/// distinct injection, and rank the strategy predictions. Pure function of
/// the plan — [`check`] re-derives it to validate claims, and the
/// exactness suites compare it bitwise against measured `ExecStats`.
pub fn advise(plan: &ExecutionPlan<'_>) -> Advice {
    let program = &plan.program;
    let prefix = PassPrefix::new(program);
    let segments = classify_program(program);

    let mut verdict_map: BTreeMap<Injection, InjectionVerdict> = BTreeMap::new();
    let mut total_injections = 0u64;
    let mut trackable_injections = 0u64;
    let mut trackable_trials = 0usize;
    for trial in &plan.trials {
        let mut all_trackable = true;
        for injection in trial.injections() {
            let verdict = *verdict_map
                .entry(*injection)
                .or_insert_with(|| commute_injection_with(program, &prefix, injection));
            total_injections += 1;
            if verdict.trackable {
                trackable_injections += 1;
            } else {
                all_trackable = false;
            }
        }
        if all_trackable {
            trackable_trials += 1;
        }
    }

    let n_trials = plan.trials.len() as u64;
    let injection_count: u64 = plan.trials.iter().map(|t| t.injections().len() as u64).sum();
    let total_fused = prefix.through(program.n_layers() as i64 - 1).1;
    let total_source = prefix.through(program.n_layers() as i64 - 1).0;

    // Sequential and fused baselines run every trial from scratch, so the
    // advances per trial telescope over the whole program.
    let sequential = StrategyPrediction {
        strategy: Strategy::Sequential,
        ops: n_trials * total_source + injection_count,
        fused_ops: n_trials * total_source,
        amplitude_passes: n_trials * total_source + injection_count,
        msv_peak: 0,
    };
    let fused = StrategyPrediction {
        strategy: Strategy::Fused,
        ops: n_trials * total_source + injection_count,
        fused_ops: n_trials * total_fused,
        amplitude_passes: n_trials * total_fused + injection_count,
        msv_peak: 0,
    };
    let reuse =
        predict_stream(&prefix, &plan.trials, &plan.order, plan.n_layers, plan.budget, |_| true)
            .prediction(Strategy::Reuse);
    let unbounded =
        predict_stream(&prefix, &plan.trials, &plan.order, plan.n_layers, usize::MAX, |_| true);
    let compressed = unbounded.prediction(Strategy::Compressed);

    // The batched tree executor replays the same trie as unbounded reuse,
    // so its pass counts are identical; only residency differs. Buffer
    // stealing keeps the frontier monotone until the final measurement
    // boundary, so the peak is exactly the number of distinct injection
    // lists in the trial set (each distinct list ends as one live leaf).
    let mut lists: Vec<&[Injection]> = plan.trials.iter().map(|t| t.injections()).collect();
    lists.sort_unstable();
    lists.dedup();
    let tree = StrategyPrediction { msv_peak: lists.len(), ..unbounded.prediction(Strategy::Tree) };

    // Frame-tracking model (predicted only): fully trackable trials ride on
    // one shared reference pass and cost no amplitude work of their own;
    // the untracked remainder still streams with prefix reuse.
    let tracked: Vec<bool> = plan
        .trials
        .iter()
        .map(|t| t.injections().iter().all(|inj| verdict_map.get(inj).is_some_and(|v| v.trackable)))
        .collect();
    let any_tracked = tracked.iter().any(|&t| t);
    let mut ft_counts =
        predict_stream(&prefix, &plan.trials, &plan.order, plan.n_layers, plan.budget, |orig| {
            !tracked.get(orig).copied().unwrap_or(false)
        });
    if any_tracked {
        ft_counts.ops += total_source;
        ft_counts.fused_ops += total_fused;
        ft_counts.passes += total_fused;
        ft_counts.peak = ft_counts.peak.max(1);
    }
    let frame_tracking = ft_counts.prediction(Strategy::FrameTracking);

    let mut predictions = vec![sequential, fused, reuse, compressed, tree, frame_tracking];
    predictions.sort_by_key(|p| (p.amplitude_passes, p.strategy.tie_rank()));

    Advice {
        segments,
        verdicts: verdict_map.into_values().collect(),
        n_trials: plan.trials.len(),
        trackable_trials,
        total_injections,
        trackable_injections,
        predictions,
    }
}

/// Run the advisor pass: re-derive the advice and diagnose divergent
/// claims (`A202`, `A203`) and advisory strategy findings (`A204`,
/// `A205`). Silent when the plan carries neither advice nor a declared
/// strategy.
pub fn check(plan: &ExecutionPlan<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if plan.advice.is_none() && plan.strategy.is_none() {
        return diags;
    }
    let recomputed = advise(plan);
    if let Some(claimed) = &plan.advice {
        check_verdicts(claimed, &recomputed, &mut diags);
        check_predictions(claimed, &recomputed, &mut diags);
    }
    if let Some(strategy) = plan.strategy {
        // Advisory findings judge the declared strategy against the model;
        // use the recomputed advice so corrupt claims cannot mask them.
        check_declared_strategy(strategy, &recomputed, &mut diags);
    }
    diags
}

fn check_verdicts(claimed: &Advice, recomputed: &Advice, diags: &mut Vec<Diagnostic>) {
    if claimed.verdicts != recomputed.verdicts {
        let detail = claimed
            .verdicts
            .iter()
            .find(|c| !recomputed.verdicts.contains(c))
            .map_or_else(
                || "the claimed verdict list does not match recommutation".to_owned(),
                |c| {
                    format!(
                        "injection {} claims trackable={} (suffix {} passes) but recommutation disagrees",
                        c.injection, c.trackable, c.suffix_passes
                    )
                },
            );
        let layer = claimed
            .verdicts
            .iter()
            .find(|c| !recomputed.verdicts.contains(c))
            .map(|c| c.injection.layer());
        let location = layer.map_or_else(Location::none, Location::layer);
        diags.push(Diagnostic::new(DiagCode::FrameVerdictMismatch, location, detail));
    }
    if (claimed.total_injections, claimed.trackable_injections, claimed.trackable_trials)
        != (
            recomputed.total_injections,
            recomputed.trackable_injections,
            recomputed.trackable_trials,
        )
    {
        diags.push(Diagnostic::new(
            DiagCode::FrameVerdictMismatch,
            Location::none(),
            format!(
                "claimed trackability counts ({}/{} injections, {} trials) disagree with recommutation ({}/{} injections, {} trials)",
                claimed.trackable_injections,
                claimed.total_injections,
                claimed.trackable_trials,
                recomputed.trackable_injections,
                recomputed.total_injections,
                recomputed.trackable_trials,
            ),
        ));
    }
}

fn check_predictions(claimed: &Advice, recomputed: &Advice, diags: &mut Vec<Diagnostic>) {
    if claimed.predictions == recomputed.predictions {
        return;
    }
    let detail = claimed
        .predictions
        .iter()
        .find(|c| !recomputed.predictions.contains(c))
        .map_or_else(
            || "the claimed strategy ranking does not match the cost model".to_owned(),
            |c| {
                format!(
                    "strategy {} claims {} amplitude passes ({} ops, msv {}) but the cost model disagrees",
                    c.strategy, c.amplitude_passes, c.ops, c.msv_peak
                )
            },
        );
    diags.push(Diagnostic::new(DiagCode::CostPredictionMismatch, Location::none(), detail));
}

fn check_declared_strategy(strategy: Strategy, advice: &Advice, diags: &mut Vec<Diagnostic>) {
    let Some(declared) = advice.prediction(strategy) else {
        return;
    };
    let best = advice.best();
    if best.strategy != strategy && best.amplitude_passes < declared.amplitude_passes {
        diags.push(Diagnostic::new(
            DiagCode::SuboptimalStrategy,
            Location::none(),
            format!(
                "strategy={} is predicted to take {} amplitude passes; {} is predicted to take {}",
                strategy, declared.amplitude_passes, best.strategy, best.amplitude_passes
            ),
        ));
    }
    let tracking = advice.prediction(Strategy::FrameTracking);
    if strategy != Strategy::FrameTracking
        && advice.n_trials > 0
        && 2 * advice.trackable_trials >= advice.n_trials
        && tracking.is_some_and(|t| t.amplitude_passes < declared.amplitude_passes)
    {
        let pct = (100.0 * advice.trackable_fraction()).round() as u64;
        let saved = declared
            .amplitude_passes
            .saturating_sub(tracking.expect("checked above").amplitude_passes);
        diags.push(Diagnostic::new(
            DiagCode::FrameTrackableSet,
            Location::none(),
            format!(
                "trial set is {pct}% frame-trackable but strategy={strategy}; frame tracking is predicted to eliminate {saved} amplitude passes",
            ),
        ));
    }
}

/// Convenience: recompute the structure pass's claims alongside the
/// advisor's — what `ExecutionPlan::with_advice` callers attach.
pub fn advice_for(plan: &ExecutionPlan<'_>) -> Advice {
    advise(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::structure::{self, SegmentClass};
    use qsim_circuit::catalog;
    use qsim_circuit::transpile::{transpile, TranspileOptions};
    use qsim_noise::{NoiseModel, TrialGenerator};

    fn plan_for(
        circuit: &qsim_circuit::Circuit,
        trials: usize,
        seed: u64,
    ) -> (qsim_circuit::LayeredCircuit, qsim_noise::TrialSet) {
        let lowered = transpile(circuit, &TranspileOptions::logical())
            .expect("transpiles")
            .circuit
            .layered()
            .expect("layers");
        let model = NoiseModel::uniform(lowered.n_qubits(), 0.01, 0.05, 0.02);
        let set = TrialGenerator::new(&lowered, &model).expect("generator").generate(trials, seed);
        (lowered, set)
    }

    #[test]
    fn ghz_injections_are_fully_trackable() {
        // GHZ is Clifford throughout, so every injected Pauli commutes to
        // the end and every trial is frame-trackable.
        let (layered, set) = plan_for(&catalog::ghz(5), 48, 9);
        let plan = ExecutionPlan::compile(&layered, &set, usize::MAX);
        let advice = advise(&plan);
        assert!(advice.segments.iter().all(|s| s.clifford));
        assert!(advice.verdicts.iter().all(|v| v.trackable));
        assert_eq!(advice.trackable_trials, advice.n_trials);
        assert_eq!(advice.trackable_injections, advice.total_injections);
        // With everything tracked, the model predicts one reference pass.
        let ft = advice.prediction(Strategy::FrameTracking).expect("ranked");
        assert_eq!(ft.fused_ops, plan.program.total_fused_ops() as u64);
        assert_eq!(advice.best().strategy, Strategy::FrameTracking);
        assert!(advice.best_executable().strategy.executable());
    }

    #[test]
    fn qft_breaks_trackability_downstream() {
        // QFT's controlled-phase ladder is non-Clifford, so only injections
        // after the last non-Clifford operator stay trackable.
        let (layered, set) = plan_for(&catalog::qft(4), 64, 11);
        let plan = ExecutionPlan::compile(&layered, &set, usize::MAX);
        let advice = advise(&plan);
        assert!(advice.verdicts.iter().any(|v| !v.trackable), "qft must block some frames");
        assert!(advice.segments.iter().any(|s| !s.clifford), "qft fuses non-Clifford segments");
        // Later cuts have shorter suffixes: suffix_passes is monotonically
        // non-increasing in the injection layer.
        let mut by_layer: Vec<(usize, u64)> =
            advice.verdicts.iter().map(|v| (v.injection.layer(), v.suffix_passes)).collect();
        by_layer.sort();
        for pair in by_layer.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let (layered, set) = plan_for(&catalog::grover(3, 0b101, 1), 32, 5);
        let plan = ExecutionPlan::compile(&layered, &set, usize::MAX);
        let advice = advise(&plan);
        assert_eq!(advice.predictions.len(), Strategy::ALL.len());
        for pair in advice.predictions.windows(2) {
            assert!(pair[0].amplitude_passes <= pair[1].amplitude_passes);
        }
        // Reuse can never cost more passes than the fused baseline, and the
        // fused baseline never more than sequential.
        let p = |s| advice.prediction(s).expect("present").amplitude_passes;
        assert!(p(Strategy::Reuse) <= p(Strategy::Fused));
        assert!(p(Strategy::Fused) <= p(Strategy::Sequential));
        // Unbounded reuse, compressed, and the batched tree replay the
        // identical trie, so their pass predictions coincide.
        assert_eq!(p(Strategy::Reuse), p(Strategy::Compressed));
        assert_eq!(p(Strategy::Reuse), p(Strategy::Tree));
    }

    #[test]
    fn tree_prediction_counts_distinct_injection_lists() {
        let (layered, set) = plan_for(&catalog::rb_sequence(6, 17), 64, 23);
        let plan = ExecutionPlan::compile(&layered, &set, usize::MAX);
        let advice = advise(&plan);
        let tree = advice.prediction(Strategy::Tree).expect("ranked");
        let compressed = advice.prediction(Strategy::Compressed).expect("ranked");
        // Same trie, same passes — only residency differs.
        assert_eq!(
            (tree.ops, tree.fused_ops, tree.amplitude_passes),
            (compressed.ops, compressed.fused_ops, compressed.amplitude_passes)
        );
        let mut lists: Vec<&[Injection]> = set.trials().iter().map(|t| t.injections()).collect();
        lists.sort_unstable();
        lists.dedup();
        assert!(lists.len() > 1, "workload must actually branch");
        assert_eq!(tree.msv_peak, lists.len());
        // On exact pass ties the sequential-reuse machinery outranks the
        // batched frontier (tie ranks 0 vs 1).
        let reuse_pos =
            advice.predictions.iter().position(|p| p.strategy == Strategy::Reuse).unwrap();
        let tree_pos =
            advice.predictions.iter().position(|p| p.strategy == Strategy::Tree).unwrap();
        if compressed.amplitude_passes
            == advice.prediction(Strategy::Reuse).unwrap().amplitude_passes
        {
            assert!(reuse_pos < tree_pos);
        }
        // An empty trial set predicts zero residency for the tree.
        let empty = qsim_noise::TrialSet::new(layered.n_qubits(), layered.n_layers(), vec![]);
        let plan = ExecutionPlan::compile(&layered, &empty, usize::MAX);
        assert_eq!(advise(&plan).prediction(Strategy::Tree).unwrap().msv_peak, 0);
    }

    #[test]
    fn check_is_silent_without_claims_and_flags_corruption() {
        let (layered, set) = plan_for(&catalog::bv(5, 0b1011), 24, 3);
        let plan = ExecutionPlan::compile(&layered, &set, usize::MAX);
        assert!(check(&plan).is_empty());
        let advice = advise(&plan);
        let clean = plan.clone().with_advice(advice.clone());
        assert!(check(&clean).is_empty());
        assert!(structure::check(&clean).is_empty());

        let mut corrupt = advice.clone();
        corrupt.verdicts[0].trackable = !corrupt.verdicts[0].trackable;
        let bad = plan.clone().with_advice(corrupt);
        let diags = check(&bad);
        assert!(diags.iter().any(|d| d.code == DiagCode::FrameVerdictMismatch));

        let mut corrupt = advice.clone();
        corrupt.predictions[0].amplitude_passes += 1;
        let bad = plan.clone().with_advice(corrupt);
        let diags = check(&bad);
        assert!(diags.iter().any(|d| d.code == DiagCode::CostPredictionMismatch));

        let mut corrupt = advice;
        corrupt.segments[0] = SegmentStructure { class: SegmentClass::General, clifford: false };
        let bad = plan.with_advice(corrupt);
        let diags = structure::check(&bad);
        assert!(diags.iter().any(|d| d.code == DiagCode::SegmentClassMismatch));
    }

    #[test]
    fn declared_strategy_warnings_fire() {
        // BV is Clifford; declaring the fused baseline on a reuse-favorable,
        // fully trackable set provokes both advisory warnings.
        let (layered, set) = plan_for(&catalog::bv(5, 0b1011), 48, 7);
        let plan =
            ExecutionPlan::compile(&layered, &set, usize::MAX).with_strategy(Strategy::Fused);
        let diags = check(&plan);
        assert!(diags.iter().any(|d| d.code == DiagCode::SuboptimalStrategy));
        assert!(diags.iter().any(|d| d.code == DiagCode::FrameTrackableSet));
        assert!(!crate::has_errors(&diags), "advisory findings are warnings");
    }
}
