//! Pass 5 — circuit-structure classification over the fused program.
//!
//! Every fused segment (the unit of execution between consecutive
//! injection cuts) is placed into an exact structure lattice:
//!
//! ```text
//!                   general
//!                  /   |   \
//!          diagonal permutation clifford
//!                  \   |   /
//!                   identity
//! ```
//!
//! `diagonal` and `permutation` are *structural* classes read off the
//! kernel tags the fusion engine already assigns from exact zero entries
//! (`FusedOp::Phase1`/`Diag1`/… are diagonal; `Perm1`/`Cx`/… are phased
//! permutations), so membership is exact, not a tolerance judgement.
//! `clifford` is a *semantic* class: an operator is Clifford iff
//! conjugating every Pauli generator on its operand qubits yields another
//! Pauli product. Note the lattice is genuinely partial — a `T` gate is
//! diagonal but not Clifford, a Hadamard is Clifford but neither diagonal
//! nor permutation — which is why [`SegmentStructure`] carries the
//! Clifford bit separately from the structural class.
//!
//! The pass itself ([`check`]) cross-validates the classification claims
//! an [`ExecutionPlan`] carries (attached by the advisor) against an
//! independent recomputation *and* against dense matrix reconstruction of
//! every operator (`A201` on any disagreement). The classification
//! functions are public because the advisor's Pauli-frame commutation and
//! the exactness test suites reuse them.

use qsim_statevec::{FusedOp, Pauli, C64};

use crate::diag::{DiagCode, Diagnostic, Location};
use crate::plan::ExecutionPlan;

/// Tolerance for the dense-reconstruction soundness checks. Fused
/// operators are products of exactly-entered gate matrices, so structural
/// zeros survive exactly and Clifford conjugation residuals stay at the
/// rounding floor; anything noisier conservatively fails verification.
pub const STRUCTURE_TOL: f64 = 1e-12;

/// The structural class of one segment (or one fused operator), ordered
/// bottom-up along the lattice spine `identity ⊑ {diagonal, permutation,
/// clifford} ⊑ general`.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SegmentClass {
    /// No operators at all: the segment acts as the identity.
    Identity,
    /// Every operator is diagonal in the computational basis.
    Diagonal,
    /// Every operator is a phased basis-state permutation.
    Permutation,
    /// Mixed or dense operators, but all of them Clifford.
    Clifford,
    /// At least one non-Clifford dense (or mixed-structure) operator.
    General,
}

impl SegmentClass {
    /// Stable lower-case name (reports, JSON, docs).
    pub fn name(self) -> &'static str {
        match self {
            SegmentClass::Identity => "identity",
            SegmentClass::Diagonal => "diagonal",
            SegmentClass::Permutation => "permutation",
            SegmentClass::Clifford => "clifford",
            SegmentClass::General => "general",
        }
    }
}

impl std::fmt::Display for SegmentClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything the structure pass asserts about one segment: its lattice
/// class plus the (independent) Clifford bit the Pauli-frame commutation
/// relies on.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SegmentStructure {
    /// Structural lattice class.
    pub class: SegmentClass,
    /// Whether *every* operator in the segment is Clifford. Independent of
    /// `class`: a diagonal segment of `T` gates is not Clifford, a
    /// Hadamard-bearing Clifford segment is not diagonal.
    pub clifford: bool,
}

/// Structural kind of a single fused operator, read off its kernel tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Diagonal in the computational basis.
    Diagonal,
    /// Phased basis-state permutation.
    Permutation,
    /// Dense (no exploited structure).
    Dense,
}

/// The kernel tag decides the structural class — the fusion engine only
/// assigns diagonal/permutation kernels on exact structural zeros.
pub fn op_class(op: &FusedOp) -> OpClass {
    match op {
        FusedOp::Phase1 { .. }
        | FusedOp::Diag1 { .. }
        | FusedOp::CPhase2 { .. }
        | FusedOp::CDiag1 { .. }
        | FusedOp::Diag2 { .. } => OpClass::Diagonal,
        FusedOp::Perm1 { .. }
        | FusedOp::Cx { .. }
        | FusedOp::Perm2 { .. }
        | FusedOp::Ccx { .. } => OpClass::Permutation,
        FusedOp::Dense1 { .. } | FusedOp::Ctrl1 { .. } | FusedOp::Dense2 { .. } => OpClass::Dense,
    }
}

/// A fused operator lifted to an explicit dense matrix over its operand
/// qubits: `qubits[i]` contributes bit `i` of the local basis index, and
/// `mat` is the row-major `2^k × 2^k` matrix. This is the single dense
/// reconstruction every soundness check and the Pauli-frame commutation
/// share.
#[derive(Clone, Debug)]
pub struct LocalOp {
    /// Operand qubits; position in this list is the local bit position.
    pub qubits: Vec<usize>,
    /// Row-major dense matrix, dimension `2^qubits.len()`.
    pub mat: Vec<C64>,
}

impl LocalOp {
    /// Matrix dimension (`2^k`).
    pub fn dim(&self) -> usize {
        1 << self.qubits.len()
    }

    /// Entry at `(row, col)`.
    pub fn at(&self, row: usize, col: usize) -> C64 {
        self.mat[row * self.dim() + col]
    }
}

fn zero() -> C64 {
    C64::new(0.0, 0.0)
}

fn one() -> C64 {
    C64::new(1.0, 0.0)
}

fn diag_local(qubits: Vec<usize>, d: &[C64]) -> LocalOp {
    let dim = d.len();
    let mut mat = vec![zero(); dim * dim];
    for (i, &e) in d.iter().enumerate() {
        mat[i * dim + i] = e;
    }
    LocalOp { qubits, mat }
}

/// Reconstruct the dense matrix a fused operator applies. The local bit
/// convention matches [`qsim_statevec::StateVector::apply_2q`]: for the
/// two-qubit kernels `qubits = [low, high]` so the local index is
/// `2·bit(high) + bit(low)`; the Toffoli uses `[target, control_a,
/// control_b]`.
pub fn local_op(op: &FusedOp) -> LocalOp {
    match op {
        FusedOp::Phase1 { d1, qubit } => diag_local(vec![*qubit], &[one(), *d1]),
        FusedOp::Diag1 { d, qubit } => diag_local(vec![*qubit], d),
        FusedOp::Perm1 { phase, qubit } => {
            LocalOp { qubits: vec![*qubit], mat: vec![zero(), phase[0], phase[1], zero()] }
        }
        FusedOp::Dense1 { m, qubit } => {
            LocalOp { qubits: vec![*qubit], mat: m.0.iter().flatten().copied().collect() }
        }
        FusedOp::CPhase2 { p, low, high } => {
            diag_local(vec![*low, *high], &[one(), one(), one(), *p])
        }
        FusedOp::CDiag1 { d, control, target } => {
            // Local index 2·bit(control) + bit(target): the diagonal acts on
            // the target where the control bit is set.
            diag_local(vec![*target, *control], &[one(), one(), d[0], d[1]])
        }
        FusedOp::Diag2 { d, low, high } => diag_local(vec![*low, *high], d),
        FusedOp::Ctrl1 { u, control, target } => {
            let mut mat = vec![zero(); 16];
            mat[0] = one();
            mat[4 + 1] = one();
            for r in 0..2 {
                for c in 0..2 {
                    mat[(2 + r) * 4 + (2 + c)] = u.0[r][c];
                }
            }
            LocalOp { qubits: vec![*target, *control], mat }
        }
        FusedOp::Cx { control, target } => {
            // Local index 2·bit(control) + bit(target); the target flips
            // where the control is set.
            let mut mat = vec![zero(); 16];
            for input in 0..4usize {
                let (t, c) = (input & 1, input >> 1);
                let out = if c == 1 { (t ^ 1) | 2 } else { input };
                mat[out * 4 + input] = one();
            }
            LocalOp { qubits: vec![*target, *control], mat }
        }
        FusedOp::Dense2 { m, low, high } => {
            LocalOp { qubits: vec![*low, *high], mat: m.0.iter().flatten().copied().collect() }
        }
        FusedOp::Perm2 { src, phase, low, high } => {
            let mut mat = vec![zero(); 16];
            for (row, (&s, &p)) in src.iter().zip(phase.iter()).enumerate() {
                mat[row * 4 + s as usize] = p;
            }
            LocalOp { qubits: vec![*low, *high], mat }
        }
        FusedOp::Ccx { control_a, control_b, target } => {
            let mut mat = vec![zero(); 64];
            for input in 0..8usize {
                let (t, a, b) = (input & 1, (input >> 1) & 1, (input >> 2) & 1);
                let out = if a == 1 && b == 1 { input ^ 1 } else { input };
                let _ = t;
                mat[out * 8 + input] = one();
            }
            LocalOp { qubits: vec![*target, *control_a, *control_b], mat }
        }
    }
}

/// A Pauli product on the local qubits of a [`LocalOp`]: an overall phase
/// `i^phase_quarters` and one optional Pauli factor per local bit
/// position (`None` = identity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PauliProduct {
    /// Global phase as a power of `i` (mod 4).
    pub phase_quarters: u8,
    /// Pauli factor per local qubit position.
    pub factors: Vec<Option<Pauli>>,
}

fn pauli_entry(factor: Option<Pauli>, row: usize, col: usize) -> C64 {
    match factor {
        None => {
            if row == col {
                one()
            } else {
                zero()
            }
        }
        Some(p) => p.matrix().0[row][col],
    }
}

fn pauli_product_entry(factors: &[Option<Pauli>], row: usize, col: usize) -> C64 {
    let mut e = one();
    for (bit, &factor) in factors.iter().enumerate() {
        e *= pauli_entry(factor, (row >> bit) & 1, (col >> bit) & 1);
    }
    e
}

const QUARTER_PHASES: [C64; 4] = [
    C64 { re: 1.0, im: 0.0 },
    C64 { re: 0.0, im: 1.0 },
    C64 { re: -1.0, im: 0.0 },
    C64 { re: 0.0, im: -1.0 },
];

/// Match a dense `2^k × 2^k` matrix against `i^q · P₁ ⊗ … ⊗ Pₖ` within
/// `tol`. Returns `None` when the matrix is not a phased Pauli product —
/// the conservative bail-out every Clifford claim rests on.
pub fn match_pauli_product(mat: &[C64], k: usize, tol: f64) -> Option<PauliProduct> {
    let dim = 1usize << k;
    debug_assert_eq!(mat.len(), dim * dim);
    // Decode the permutation-with-phase structure directly instead of
    // trying all 4^k products: each Pauli factor either preserves (I/Z) or
    // flips (X/Y) its bit, so column 0 must hold exactly one entry of unit
    // modulus whose row reveals the flip mask.
    let mut factors: Vec<Option<Pauli>> = vec![None; k];
    let mut flip_row = None;
    for row in 0..dim {
        let e = mat[row * dim];
        if e.norm() > tol {
            if flip_row.is_some() {
                return None;
            }
            flip_row = Some(row);
        }
    }
    let flips = flip_row?;
    // Candidate factor per bit: flipped bits are X or Y, kept bits I or Z.
    // Disambiguate each by probing the column whose input sets only that
    // bit... more robustly, try the 2^k I/Z vs X/Y sign choices implied by
    // two probe columns per bit. With k ≤ 3 a direct scan over the 4^k
    // candidates is still cheap and unambiguous, so fall back to that.
    let choices: [[Option<Pauli>; 2]; 2] =
        [[None, Some(Pauli::Z)], [Some(Pauli::X), Some(Pauli::Y)]];
    let mut assignment = vec![0usize; k];
    loop {
        for (bit, f) in factors.iter_mut().enumerate() {
            *f = choices[(flips >> bit) & 1][assignment[bit]];
        }
        if let Some(product) = match_with_factors(mat, dim, &factors, tol) {
            return Some(product);
        }
        // Advance the per-bit binary counter.
        let mut bit = 0;
        loop {
            if bit == k {
                return None;
            }
            assignment[bit] += 1;
            if assignment[bit] < 2 {
                break;
            }
            assignment[bit] = 0;
            bit += 1;
        }
    }
}

fn match_with_factors(
    mat: &[C64],
    dim: usize,
    factors: &[Option<Pauli>],
    tol: f64,
) -> Option<PauliProduct> {
    // Fix the phase on the first non-negligible candidate entry.
    let mut scale = None;
    for row in 0..dim {
        for col in 0..dim {
            let c = pauli_product_entry(factors, row, col);
            if c.norm() > 0.5 {
                let m = mat[row * dim + col];
                scale = Some(m / c);
                break;
            }
        }
        if scale.is_some() {
            break;
        }
    }
    let scale = scale?;
    let quarters = QUARTER_PHASES.iter().position(|&q| (q - scale).norm() <= tol)? as u8;
    for row in 0..dim {
        for col in 0..dim {
            let want = pauli_product_entry(factors, row, col) * scale;
            if (mat[row * dim + col] - want).norm() > tol {
                return None;
            }
        }
    }
    Some(PauliProduct { phase_quarters: quarters, factors: factors.to_vec() })
}

/// Conjugate a Pauli product through a fused operator: returns
/// `U · P · U†` as a Pauli product, or `None` when the result leaves the
/// Pauli group (the operator is not Clifford for this input).
pub fn conjugate(op: &LocalOp, product: &PauliProduct, tol: f64) -> Option<PauliProduct> {
    let dim = op.dim();
    let k = op.qubits.len();
    // M = U · P
    let mut up = vec![zero(); dim * dim];
    for row in 0..dim {
        for col in 0..dim {
            let mut e = zero();
            for mid in 0..dim {
                e += op.at(row, mid) * pauli_product_entry(&product.factors, mid, col);
            }
            up[row * dim + col] = e;
        }
    }
    // M · U†
    let mut upu = vec![zero(); dim * dim];
    for row in 0..dim {
        for col in 0..dim {
            let mut e = zero();
            for mid in 0..dim {
                e += up[row * dim + mid] * op.at(col, mid).conj();
            }
            upu[row * dim + col] = e;
        }
    }
    let mut out = match_pauli_product(&upu, k, tol)?;
    out.phase_quarters = (out.phase_quarters + product.phase_quarters) % 4;
    Some(out)
}

/// Whether a fused operator is Clifford: conjugating each `X` and `Z`
/// generator on its operand qubits must yield a Pauli product. The two
/// generators per qubit generate the whole local Pauli group, so this is
/// both necessary and sufficient.
pub fn op_is_clifford(op: &FusedOp, tol: f64) -> bool {
    let local = local_op(op);
    let k = local.qubits.len();
    for bit in 0..k {
        for generator in [Pauli::X, Pauli::Z] {
            let mut factors = vec![None; k];
            factors[bit] = Some(generator);
            let product = PauliProduct { phase_quarters: 0, factors };
            if conjugate(&local, &product, tol).is_none() {
                return false;
            }
        }
    }
    true
}

/// Classify one segment's operator list into the structure lattice.
pub fn classify_ops(ops: &[FusedOp]) -> SegmentStructure {
    if ops.is_empty() {
        return SegmentStructure { class: SegmentClass::Identity, clifford: true };
    }
    let clifford = ops.iter().all(|op| op_is_clifford(op, STRUCTURE_TOL));
    let class = if ops.iter().all(|op| op_class(op) == OpClass::Diagonal) {
        SegmentClass::Diagonal
    } else if ops.iter().all(|op| op_class(op) == OpClass::Permutation) {
        SegmentClass::Permutation
    } else if clifford {
        SegmentClass::Clifford
    } else {
        SegmentClass::General
    };
    SegmentStructure { class, clifford }
}

/// Classify every segment of a fused program, in segment order.
pub fn classify_program(program: &qsim_circuit::FusedProgram) -> Vec<SegmentStructure> {
    program.segments().iter().map(|seg| classify_ops(seg.ops())).collect()
}

/// Verify a structure claim by dense reconstruction: every operator's
/// reconstructed matrix must exhibit the claimed structure within `tol`.
/// Returns the first violation as a human-readable message.
///
/// # Errors
///
/// Returns a description of the first operator violating the claim.
pub fn check_structure(ops: &[FusedOp], claim: SegmentStructure, tol: f64) -> Result<(), String> {
    if claim.class == SegmentClass::Identity && !ops.is_empty() {
        return Err(format!("claimed identity but the segment holds {} op(s)", ops.len()));
    }
    for (i, op) in ops.iter().enumerate() {
        let local = local_op(op);
        let dim = local.dim();
        match claim.class {
            SegmentClass::Identity | SegmentClass::General | SegmentClass::Clifford => {}
            SegmentClass::Diagonal => {
                for row in 0..dim {
                    for col in 0..dim {
                        if row != col && local.at(row, col).norm() > tol {
                            return Err(format!(
                                "op {i} (`{}`) claimed diagonal but |m[{row}][{col}]| = {:.3e}",
                                op.kernel_name(),
                                local.at(row, col).norm()
                            ));
                        }
                    }
                }
            }
            SegmentClass::Permutation => {
                for row in 0..dim {
                    let hot = (0..dim).filter(|&col| local.at(row, col).norm() > tol).count();
                    if hot != 1 {
                        return Err(format!(
                            "op {i} (`{}`) claimed permutation but row {row} has {hot} entries",
                            op.kernel_name()
                        ));
                    }
                }
                for col in 0..dim {
                    let hot = (0..dim).filter(|&row| local.at(row, col).norm() > tol).count();
                    if hot != 1 {
                        return Err(format!(
                            "op {i} (`{}`) claimed permutation but column {col} has {hot} entries",
                            op.kernel_name()
                        ));
                    }
                }
            }
        }
        if claim.clifford && !op_is_clifford(op, tol) {
            return Err(format!(
                "op {i} (`{}`) claimed Clifford but conjugation leaves the Pauli group",
                op.kernel_name()
            ));
        }
    }
    Ok(())
}

/// Run the structure pass: cross-check the plan's attached classification
/// claims (if any) against recomputation and dense reconstruction.
pub fn check(plan: &ExecutionPlan<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let Some(advice) = &plan.advice else {
        return diags;
    };
    let segments = plan.program.segments();
    if advice.segments.len() != segments.len() {
        diags.push(Diagnostic::new(
            DiagCode::SegmentClassMismatch,
            Location::none(),
            format!(
                "advice classifies {} segment(s) but the fused program has {}",
                advice.segments.len(),
                segments.len()
            ),
        ));
        return diags;
    }
    for (s, (seg, &claim)) in segments.iter().zip(&advice.segments).enumerate() {
        let recomputed = classify_ops(seg.ops());
        if claim != recomputed {
            diags.push(Diagnostic::new(
                DiagCode::SegmentClassMismatch,
                Location::segment(s).at_layer(seg.start_layer()),
                format!(
                    "segment {s} claimed {} (clifford={}) but reclassifies as {} (clifford={})",
                    claim.class, claim.clifford, recomputed.class, recomputed.clifford
                ),
            ));
            continue;
        }
        if let Err(why) = check_structure(seg.ops(), claim, STRUCTURE_TOL) {
            diags.push(Diagnostic::new(
                DiagCode::SegmentClassMismatch,
                Location::segment(s).at_layer(seg.start_layer()),
                format!("segment {s} fails dense-reconstruction verification: {why}"),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_statevec::{Matrix2, Matrix4};

    #[test]
    fn kernel_tags_map_to_structural_classes() {
        let diag = FusedOp::classify_1q(&Matrix2::s(), 0);
        assert_eq!(op_class(&diag), OpClass::Diagonal);
        let perm = FusedOp::classify_1q(&Matrix2::x(), 0);
        assert_eq!(op_class(&perm), OpClass::Permutation);
        let dense = FusedOp::classify_1q(&Matrix2::h(), 0);
        assert_eq!(op_class(&dense), OpClass::Dense);
        let cx = FusedOp::classify_2q(&Matrix4::cx(), 0, 1);
        assert_eq!(op_class(&cx), OpClass::Permutation);
    }

    #[test]
    fn clifford_judgement_matches_textbook_gates() {
        for (m, clifford) in [
            (Matrix2::h(), true),
            (Matrix2::s(), true),
            (Matrix2::x(), true),
            (Matrix2::y(), true),
            (Matrix2::z(), true),
            (Matrix2::t(), false),
            (Matrix2::rz(0.3), false),
            (Matrix2::rx(1.0), false),
        ] {
            let op = FusedOp::classify_1q(&m, 0);
            assert_eq!(op_is_clifford(&op, STRUCTURE_TOL), clifford, "matrix {m}");
        }
        for (m, clifford) in [
            (Matrix4::cx(), true),
            (Matrix4::cz(), true),
            (Matrix4::swap(), true),
            (Matrix4::cphase(0.4), false),
            (Matrix4::controlled(&Matrix2::h()), false),
        ] {
            let op = FusedOp::classify_2q(&m, 0, 1);
            assert_eq!(op_is_clifford(&op, STRUCTURE_TOL), clifford, "matrix {m}");
        }
        // The Toffoli is a permutation but famously not Clifford.
        let ccx = FusedOp::Ccx { control_a: 0, control_b: 1, target: 2 };
        assert_eq!(op_class(&ccx), OpClass::Permutation);
        assert!(!op_is_clifford(&ccx, STRUCTURE_TOL));
    }

    #[test]
    fn conjugation_reproduces_known_clifford_tableaus() {
        // H X H† = Z, H Z H† = X, S X S† = Y (phase-free on these).
        let h = local_op(&FusedOp::classify_1q(&Matrix2::h(), 0));
        let x = PauliProduct { phase_quarters: 0, factors: vec![Some(Pauli::X)] };
        let z = PauliProduct { phase_quarters: 0, factors: vec![Some(Pauli::Z)] };
        assert_eq!(conjugate(&h, &x, STRUCTURE_TOL).unwrap().factors, vec![Some(Pauli::Z)]);
        assert_eq!(conjugate(&h, &z, STRUCTURE_TOL).unwrap().factors, vec![Some(Pauli::X)]);
        let s = local_op(&FusedOp::classify_1q(&Matrix2::s(), 0));
        let sxs = conjugate(&s, &x, STRUCTURE_TOL).unwrap();
        assert_eq!(sxs.factors, vec![Some(Pauli::Y)]);
        // CX propagates X on the control to X⊗X and Z on the target to Z⊗Z.
        let cx = local_op(&FusedOp::Cx { control: 1, target: 0 });
        let x_ctrl = PauliProduct { phase_quarters: 0, factors: vec![None, Some(Pauli::X)] };
        let spread = conjugate(&cx, &x_ctrl, STRUCTURE_TOL).unwrap();
        assert_eq!(spread.factors, vec![Some(Pauli::X), Some(Pauli::X)]);
        // T breaks out of the Pauli group on X.
        let t = local_op(&FusedOp::classify_1q(&Matrix2::t(), 0));
        assert!(conjugate(&t, &x, STRUCTURE_TOL).is_none());
        assert!(conjugate(&t, &z, STRUCTURE_TOL).is_some());
    }

    #[test]
    fn segment_classification_covers_the_lattice() {
        let s = FusedOp::classify_1q(&Matrix2::s(), 0);
        let t = FusedOp::classify_1q(&Matrix2::t(), 0);
        let x = FusedOp::classify_1q(&Matrix2::x(), 0);
        let h = FusedOp::classify_1q(&Matrix2::h(), 0);
        let cases: Vec<(Vec<FusedOp>, SegmentClass, bool)> = vec![
            (vec![], SegmentClass::Identity, true),
            (vec![s.clone()], SegmentClass::Diagonal, true),
            (vec![t.clone()], SegmentClass::Diagonal, false),
            (vec![x.clone()], SegmentClass::Permutation, true),
            (vec![s.clone(), x.clone()], SegmentClass::Clifford, true),
            (vec![h.clone()], SegmentClass::Clifford, true),
            (vec![h.clone(), t.clone()], SegmentClass::General, false),
        ];
        for (ops, class, clifford) in cases {
            let got = classify_ops(&ops);
            assert_eq!(got, SegmentStructure { class, clifford }, "ops {ops:?}");
            check_structure(&ops, got, STRUCTURE_TOL).expect("own classification verifies");
        }
    }

    #[test]
    fn dense_reconstruction_rejects_false_claims() {
        let h = FusedOp::classify_1q(&Matrix2::h(), 0);
        let claim = SegmentStructure { class: SegmentClass::Diagonal, clifford: true };
        assert!(check_structure(std::slice::from_ref(&h), claim, STRUCTURE_TOL).is_err());
        let t = FusedOp::classify_1q(&Matrix2::t(), 0);
        let claim = SegmentStructure { class: SegmentClass::Diagonal, clifford: true };
        assert!(check_structure(std::slice::from_ref(&t), claim, STRUCTURE_TOL).is_err());
        let claim = SegmentStructure { class: SegmentClass::Identity, clifford: true };
        assert!(check_structure(std::slice::from_ref(&t), claim, STRUCTURE_TOL).is_err());
    }
}
