//! The verifier passes. Each is a pure function from [`crate::ExecutionPlan`]
//! to a list of [`crate::Diagnostic`]s; [`crate::verify`] runs all six.

pub mod advisor;
pub mod borrow;
pub mod circuit;
pub mod fusion;
pub mod structure;
pub mod trials;
