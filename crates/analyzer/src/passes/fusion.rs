//! Pass 2 — fusion-cut soundness.
//!
//! The fused program is only a legal stand-in for the layered circuit if
//! (a) its geometry matches (`FUS002`), (b) its segments tile the layer
//! range exactly once (`FUS003`), (c) every injection layer any trial uses
//! ends a segment, so execution can pause there (`FUS001`), (d) every
//! fused operator is unitary (`FUS004`) and structurally identical to an
//! independent recompilation of its segment (`FUS005`), and (e) the
//! per-segment source-gate accounting that backs the paper's `ops` metric
//! sums to the circuit's gate count (`FUS006`).

use std::collections::BTreeSet;

use qsim_circuit::FusedProgram;
use qsim_statevec::{FusedOp, C64};

use crate::diag::{DiagCode, Diagnostic, Location};
use crate::plan::ExecutionPlan;

/// Tolerance for the unitarity check on fused operators. Looser than the
/// substrate's construction tolerance because fused matrices are products
/// of up to a whole segment's gates.
pub const UNITARY_TOL: f64 = 1e-9;

/// Run the fusion-cut soundness pass.
pub fn check(plan: &ExecutionPlan<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let layered = plan.layered;
    let program = &plan.program;

    if program.n_qubits() != layered.n_qubits() || program.n_layers() != layered.n_layers() {
        diags.push(Diagnostic::new(
            DiagCode::ProgramGeometry,
            Location::none(),
            format!(
                "fused program compiled for {} qubit(s) × {} layer(s) but the circuit has {} × {}",
                program.n_qubits(),
                program.n_layers(),
                layered.n_qubits(),
                layered.n_layers()
            ),
        ));
    }

    // FUS003: segments must cover 0..n_layers contiguously, in order.
    let mut tiled = true;
    let mut next_start = 0usize;
    for (s, seg) in program.segments().iter().enumerate() {
        if seg.start_layer() != next_start || seg.end_layer() < seg.start_layer() {
            diags.push(Diagnostic::new(
                DiagCode::SegmentTiling,
                Location::segment(s).at_layer(seg.start_layer()),
                format!(
                    "segment {s} covers layers {}..={} but layer {next_start} is the next uncovered layer",
                    seg.start_layer(),
                    seg.end_layer()
                ),
            ));
            tiled = false;
            break;
        }
        next_start = seg.end_layer() + 1;
    }
    if tiled && next_start != layered.n_layers() {
        diags.push(Diagnostic::new(
            DiagCode::SegmentTiling,
            Location::none(),
            format!(
                "segments cover layers 0..{next_start} but the circuit has {} layer(s)",
                layered.n_layers()
            ),
        ));
        tiled = false;
    }

    // FUS001: every injection layer any trial uses must end a segment.
    let used_layers: BTreeSet<usize> = plan
        .trials
        .iter()
        .flat_map(|t| t.injections().iter().map(|i| i.layer()))
        .filter(|&l| l < layered.n_layers())
        .collect();
    for &layer in &used_layers {
        if !program.is_cut_aligned(layer) {
            diags.push(Diagnostic::new(
                DiagCode::MissingCut,
                Location::layer(layer),
                format!(
                    "trials inject errors after layer {layer} but no fused segment ends there; execution cannot pause at that point"
                ),
            ));
        }
    }

    // FUS004: every fused operator must be unitary.
    for (s, seg) in program.segments().iter().enumerate() {
        for op in seg.ops() {
            if !fused_op_is_unitary(op, UNITARY_TOL) {
                diags.push(Diagnostic::new(
                    DiagCode::NonUnitaryFusedOp,
                    Location::segment(s).at_layer(seg.start_layer()),
                    format!(
                        "segment {s} (layers {}..={}) contains a non-unitary `{}` kernel",
                        seg.start_layer(),
                        seg.end_layer(),
                        op.kernel_name()
                    ),
                ));
            }
        }
    }

    // FUS005/FUS006 compare against an independent recompilation at the
    // same cut set; both are meaningless if the tiling itself is broken.
    if tiled && program.n_layers() == layered.n_layers() {
        let ends: Vec<usize> = program.segments().iter().map(|s| s.end_layer()).collect();
        let reference = FusedProgram::new(layered, &ends);
        if reference.segments().len() == program.segments().len() {
            for (s, (seg, ref_seg)) in
                program.segments().iter().zip(reference.segments()).enumerate()
            {
                if seg.ops() != ref_seg.ops() {
                    diags.push(Diagnostic::new(
                        DiagCode::KernelMismatch,
                        Location::segment(s).at_layer(seg.start_layer()),
                        format!(
                            "segment {s} kernels differ from recompilation of layers {}..={} ({} vs {} op(s))",
                            seg.start_layer(),
                            seg.end_layer(),
                            seg.ops().len(),
                            ref_seg.ops().len()
                        ),
                    ));
                }
                if seg.source_gates() != ref_seg.source_gates() {
                    diags.push(Diagnostic::new(
                        DiagCode::SourceGateMismatch,
                        Location::segment(s).at_layer(seg.start_layer()),
                        format!(
                            "segment {s} claims {} source gate(s) but layers {}..={} hold {}",
                            seg.source_gates(),
                            seg.start_layer(),
                            seg.end_layer(),
                            ref_seg.source_gates()
                        ),
                    ));
                }
            }
        }
        let total: usize = program.segments().iter().map(|s| s.source_gates()).sum();
        if total != layered.total_gates() {
            diags.push(Diagnostic::new(
                DiagCode::SourceGateMismatch,
                Location::none(),
                format!(
                    "segments account for {total} source gate(s) but the circuit has {}",
                    layered.total_gates()
                ),
            ));
        }
    }
    diags
}

fn unit_modulus(c: C64, tol: f64) -> bool {
    (c.re.hypot(c.im) - 1.0).abs() <= tol
}

/// Structural unitarity check per kernel class: diagonal and permutation
/// kernels are unitary iff every entry has unit modulus; dense kernels get
/// the full matrix check; CX/CCX are permutations by construction.
pub fn fused_op_is_unitary(op: &FusedOp, tol: f64) -> bool {
    match op {
        FusedOp::Phase1 { d1, .. } => unit_modulus(*d1, tol),
        FusedOp::Diag1 { d, .. } => d.iter().all(|&c| unit_modulus(c, tol)),
        FusedOp::Perm1 { phase, .. } => phase.iter().all(|&c| unit_modulus(c, tol)),
        FusedOp::CPhase2 { p, .. } => unit_modulus(*p, tol),
        FusedOp::CDiag1 { d, .. } => d.iter().all(|&c| unit_modulus(c, tol)),
        FusedOp::Diag2 { d, .. } => d.iter().all(|&c| unit_modulus(c, tol)),
        FusedOp::Dense1 { m, .. } => m.is_unitary(tol),
        FusedOp::Ctrl1 { u, .. } => u.is_unitary(tol),
        FusedOp::Dense2 { m, .. } => m.is_unitary(tol),
        FusedOp::Perm2 { src, phase, .. } => {
            let mut seen = [false; 4];
            for &s in src.iter() {
                if (s as usize) >= 4 || seen[s as usize] {
                    return false;
                }
                seen[s as usize] = true;
            }
            phase.iter().all(|&c| unit_modulus(c, tol))
        }
        FusedOp::Cx { .. } | FusedOp::Ccx { .. } => true,
    }
}
