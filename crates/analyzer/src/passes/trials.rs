//! Pass 3 — trial-set and noise-model lints.
//!
//! The reorder is only sound if `order` is a permutation (`TRL002`) sorted
//! under the shared reorder key (`TRL001`) — otherwise prefix reuse either
//! drops/duplicates samples or reuses a prefix the previous trial never
//! built. Each trial must also be well-formed in itself: injections inside
//! the circuit (`TRL003`/`TRL004`), canonically sorted with no duplicate
//! position (`TRL005`), and the set's geometry matching the circuit
//! (`TRL006`). When the plan carries the generating noise model, its
//! probabilities are linted too (`NSE001`).

use std::cmp::Ordering;

use qsim_noise::{compare_trials, NoiseModel, PauliWeights, Site};

use crate::diag::{DiagCode, Diagnostic, Location};
use crate::plan::ExecutionPlan;

/// Run the trial-set lints.
pub fn check(plan: &ExecutionPlan<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let layered = plan.layered;

    if plan.n_qubits != layered.n_qubits() || plan.n_layers != layered.n_layers() {
        diags.push(Diagnostic::new(
            DiagCode::TrialGeometry,
            Location::none(),
            format!(
                "trial set generated for {} qubit(s) × {} layer(s) but the circuit has {} × {}",
                plan.n_qubits,
                plan.n_layers,
                layered.n_qubits(),
                layered.n_layers()
            ),
        ));
    }
    if plan.trials.is_empty() {
        diags.push(Diagnostic::new(
            DiagCode::EmptyTrialSet,
            Location::none(),
            "the trial set is empty; the run will produce no samples".to_string(),
        ));
    }

    // TRL002: `order` must be a permutation of 0..trials.len(). Duplicates
    // and out-of-range entries are reported per entry; a missing trial is
    // then implied by the length check (or by a reported duplicate).
    let mut seen = vec![false; plan.trials.len()];
    for &idx in &plan.order {
        match seen.get_mut(idx) {
            Some(slot) if !*slot => *slot = true,
            Some(_) => diags.push(Diagnostic::new(
                DiagCode::NotPermutation,
                Location::trial(idx),
                format!("trial {idx} appears more than once in the execution order"),
            )),
            None => diags.push(Diagnostic::new(
                DiagCode::NotPermutation,
                Location::trial(idx),
                format!("execution order names trial {idx} but the set has {}", plan.trials.len()),
            )),
        }
    }
    if plan.order.len() != plan.trials.len() {
        diags.push(Diagnostic::new(
            DiagCode::NotPermutation,
            Location::none(),
            format!(
                "execution order has {} entr(ies) for {} trial(s)",
                plan.order.len(),
                plan.trials.len()
            ),
        ));
    }

    // TRL001: consecutive trials must respect the reorder key.
    for pair in plan.order.windows(2) {
        let (Some(a), Some(b)) = (plan.trials.get(pair[0]), plan.trials.get(pair[1])) else {
            continue;
        };
        if compare_trials(a, b) == Ordering::Greater {
            diags.push(Diagnostic::new(
                DiagCode::NotSorted,
                Location::trial(pair[1]),
                format!(
                    "trial {} runs after trial {} but sorts before it under the reorder key; prefix reuse would read a cache that was never built",
                    pair[1], pair[0]
                ),
            ));
        }
    }

    // Per-trial lints.
    for (t, trial) in plan.trials.iter().enumerate() {
        let injections = trial.injections();
        for (i, injection) in injections.iter().enumerate() {
            if injection.layer() >= layered.n_layers() {
                diags.push(Diagnostic::new(
                    DiagCode::LayerOutOfRange,
                    Location::injection(t, i).at_layer(injection.layer()),
                    format!(
                        "trial {t} injects after layer {} but the circuit has {} layer(s)",
                        injection.layer(),
                        layered.n_layers()
                    ),
                ));
            }
            let (first, second) = match injection.site() {
                Site::One(q) => (q, None),
                Site::Two(low, high) => (low, Some(high)),
            };
            for q in std::iter::once(first).chain(second) {
                if q >= layered.n_qubits() {
                    diags.push(Diagnostic::new(
                        DiagCode::QubitOutOfRange,
                        Location::injection(t, i).at_qubit(q),
                        format!(
                            "trial {t} injects on qubit {q} but the register has {} qubit(s)",
                            layered.n_qubits()
                        ),
                    ));
                }
            }
        }
        for (i, pair) in injections.windows(2).enumerate() {
            if pair[0].cmp(&pair[1]) == Ordering::Greater {
                diags.push(Diagnostic::new(
                    DiagCode::NonCanonicalTrial,
                    Location::injection(t, i + 1),
                    format!("trial {t}'s injections are not in canonical (layer, site) order"),
                ));
            } else if pair[0].layer() == pair[1].layer() && pair[0].site() == pair[1].site() {
                diags.push(Diagnostic::new(
                    DiagCode::NonCanonicalTrial,
                    Location::injection(t, i + 1),
                    format!("trial {t} injects twice at layer {}, same site", pair[0].layer()),
                ));
            }
        }
    }

    if let Some(model) = &plan.model {
        check_model(model, &mut diags);
        if model.n_qubits() != layered.n_qubits() {
            diags.push(Diagnostic::new(
                DiagCode::TrialGeometry,
                Location::none(),
                format!(
                    "noise model covers {} qubit(s) but the circuit has {}",
                    model.n_qubits(),
                    layered.n_qubits()
                ),
            ));
        }
    }
    diags
}

fn valid_prob(p: f64) -> bool {
    p.is_finite() && (0.0..=1.0).contains(&p)
}

fn check_weights(what: &str, qubit: usize, w: PauliWeights, diags: &mut Vec<Diagnostic>) {
    let components_ok = [w.x, w.y, w.z].into_iter().all(valid_prob);
    // Tolerate float dust just above 1 the same way `PauliWeights::new` does.
    let total_ok = w.total() <= 1.0 + 1e-12;
    if !components_ok || !total_ok {
        diags.push(Diagnostic::new(
            DiagCode::InvalidProbability,
            Location::none().at_qubit(qubit),
            format!(
                "{what} channel on qubit {qubit} has weights x={} y={} z={} (each must lie in [0, 1], total at most 1)",
                w.x, w.y, w.z
            ),
        ));
    }
}

fn check_model(model: &NoiseModel, diags: &mut Vec<Diagnostic>) {
    for q in 0..model.n_qubits() {
        check_weights("single-qubit error", q, model.single_weights(q), diags);
        if let Some(idle) = model.idle_weights(q) {
            check_weights("idle error", q, idle, diags);
        }
        let readout = model.readout_rate(q);
        if !valid_prob(readout) {
            diags.push(Diagnostic::new(
                DiagCode::InvalidProbability,
                Location::none().at_qubit(q),
                format!("readout error rate {readout} on qubit {q} is outside [0, 1]"),
            ));
        }
    }
    if !valid_prob(model.default_pair_rate()) {
        diags.push(Diagnostic::new(
            DiagCode::InvalidProbability,
            Location::none(),
            format!("default two-qubit error rate {} is outside [0, 1]", model.default_pair_rate()),
        ));
    }
    for ((a, b), rate) in model.pair_overrides() {
        if !valid_prob(rate) {
            diags.push(Diagnostic::new(
                DiagCode::InvalidProbability,
                Location::none().at_qubit(a),
                format!("two-qubit error rate {rate} on edge ({a}, {b}) is outside [0, 1]"),
            ));
        }
    }
}
