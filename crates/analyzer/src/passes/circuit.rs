//! Pass 4 — circuit lints.
//!
//! Checks the layered circuit the plan executes: gate operands inside the
//! register (`CIR001`), multi-qubit gates on coupled qubit pairs when a
//! device map is attached (`CIR002`), unitary gate matrices — a NaN or
//! infinite rotation angle produces a non-unitary matrix that silently
//! poisons every amplitude (`CIR003`) — and a well-formed measurement map
//! (`CIR004`).

use crate::diag::{DiagCode, Diagnostic, Location};
use crate::plan::ExecutionPlan;

/// Run the circuit lints.
pub fn check(plan: &ExecutionPlan<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let layered = plan.layered;
    let n_qubits = layered.n_qubits();

    for l in 0..layered.n_layers() {
        for op in layered.layer(l) {
            for &q in &op.qubits {
                if q >= n_qubits {
                    diags.push(Diagnostic::new(
                        DiagCode::GateQubitOutOfRange,
                        Location::layer(l).at_qubit(q),
                        format!(
                            "`{}` in layer {l} operates on qubit {q} but the register has {n_qubits} qubit(s)",
                            op.gate.name()
                        ),
                    ));
                }
            }
            let unitary = if let Some(m) = op.gate.matrix1() {
                m.is_unitary(crate::passes::fusion::UNITARY_TOL)
            } else if let Some(m) = op.gate.matrix2() {
                m.is_unitary(crate::passes::fusion::UNITARY_TOL)
            } else {
                // CX/CCX fast paths are basis permutations — always unitary.
                true
            };
            if !unitary {
                diags.push(Diagnostic::new(
                    DiagCode::NonUnitaryGate,
                    Location::layer(l),
                    format!(
                        "`{}` in layer {l} has a non-unitary matrix (NaN or infinite parameter?)",
                        op.gate.name()
                    ),
                ));
            }
            if let Some(coupling) = &plan.coupling {
                // Post-transpile, every multi-qubit gate must sit on
                // device-adjacent qubits (pairwise, so CCX is covered too).
                for (i, &a) in op.qubits.iter().enumerate() {
                    for &b in &op.qubits[i + 1..] {
                        if a.max(b) < coupling.n_qubits() && !coupling.are_adjacent(a, b) {
                            diags.push(Diagnostic::new(
                                DiagCode::CouplingViolation,
                                Location::layer(l).at_qubit(a),
                                format!(
                                    "`{}` in layer {l} spans qubits {a} and {b}, which the coupling map does not connect",
                                    op.gate.name()
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    let mut used_cbits = vec![false; layered.n_cbits()];
    for &(qubit, cbit) in layered.measurements() {
        if qubit >= n_qubits {
            diags.push(Diagnostic::new(
                DiagCode::InvalidMeasurement,
                Location::none().at_qubit(qubit),
                format!("measurement reads qubit {qubit} but the register has {n_qubits} qubit(s)"),
            ));
        }
        match used_cbits.get_mut(cbit) {
            Some(slot) if !*slot => *slot = true,
            Some(_) => diags.push(Diagnostic::new(
                DiagCode::InvalidMeasurement,
                Location::none().at_qubit(qubit),
                format!("classical bit {cbit} receives more than one measurement"),
            )),
            None => diags.push(Diagnostic::new(
                DiagCode::InvalidMeasurement,
                Location::none().at_qubit(qubit),
                format!(
                    "measurement writes classical bit {cbit} but the circuit has {} classical bit(s)",
                    layered.n_cbits()
                ),
            )),
        }
    }
    diags
}
