//! Pass 1 — the MSV borrow checker.
//!
//! Symbolically executes the prefix-cache schedule, tracking every frame's
//! lifetime (created → cached/working → dropped), its layer frontier, and
//! the cache-stack discipline. Rejects use-after-drop (`MSV001`), leaked
//! frames (`MSV002`), frontier desyncs (`MSV004`), and bad measurement
//! coverage (`MSV005`), and cross-checks the schedule's peak cached-frame
//! count and total work against the claimed cost report (`MSV003`,
//! `MSV006`).

use std::collections::BTreeMap;

use crate::diag::{DiagCode, Diagnostic, Location};
use crate::plan::{ExecutionPlan, FrameId, ScheduleOp, ROOT_FRAME};

struct FrameState {
    /// Last layer applied; `-1` = fresh |0…0⟩ state.
    done: i64,
    cached: bool,
    alive: bool,
}

/// Run the borrow checker over `plan.schedule`.
pub fn check(plan: &ExecutionPlan<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let layered = plan.layered;
    let last_layer = layered.n_layers() as i64 - 1;
    // Cumulative gates through layer `l` (inclusive); -1 = nothing yet.
    let gates_through = |l: i64| -> u64 {
        if l < 0 || last_layer < 0 {
            0
        } else {
            layered.gates_through(l.min(last_layer) as usize) as u64
        }
    };

    let mut frames: BTreeMap<FrameId, FrameState> = BTreeMap::new();
    let mut cache_stack: Vec<FrameId> = Vec::new();
    if !plan.order.is_empty() || !plan.schedule.is_empty() {
        frames.insert(ROOT_FRAME, FrameState { done: -1, cached: true, alive: true });
        cache_stack.push(ROOT_FRAME);
    }
    let mut peak = usize::from(!plan.order.is_empty());
    let mut measured = vec![0usize; plan.trials.len()];
    let mut ops_total: u64 = 0;

    for (i, op) in plan.schedule.iter().enumerate() {
        let at = Location::schedule_op(i);
        // Shared liveness guard: every op names one primary frame.
        let (primary, _) = op.frames();
        let alive = frames.get(&primary).is_some_and(|f| f.alive);
        if !alive {
            diags.push(Diagnostic::new(
                DiagCode::UseAfterDrop,
                at,
                format!("schedule op {op:?} uses frame {primary} after it was dropped (or before it was created)"),
            ));
            continue;
        }
        match *op {
            ScheduleOp::Advance { frame, through } => {
                let st = frames.get_mut(&frame).expect("liveness checked above");
                if through < st.done {
                    diags.push(Diagnostic::new(
                        DiagCode::FrontierDesync,
                        at,
                        format!(
                            "frame {frame} frontier moves backwards: at layer {} asked to advance through {through}",
                            st.done
                        ),
                    ));
                } else if through > last_layer {
                    diags.push(Diagnostic::new(
                        DiagCode::FrontierDesync,
                        at,
                        format!(
                            "frame {frame} advances through layer {through} but the circuit ends at {last_layer}"
                        ),
                    ));
                }
                ops_total += gates_through(through).saturating_sub(gates_through(st.done));
                st.done = st.done.max(through.min(last_layer));
            }
            ScheduleOp::CloneInject { parent, child, injection, cached } => {
                ops_total += 1;
                let parent_done = frames.get(&parent).expect("liveness checked above").done;
                if injection.layer() as i64 != parent_done {
                    diags.push(Diagnostic::new(
                        DiagCode::FrontierDesync,
                        at,
                        format!(
                            "injection at layer {} cloned from frame {parent} whose frontier is at layer {parent_done}",
                            injection.layer()
                        ),
                    ));
                }
                if frames.contains_key(&child) {
                    diags.push(Diagnostic::new(
                        DiagCode::FrontierDesync,
                        at,
                        format!("frame id {child} reused; frames must be allocated monotonically"),
                    ));
                    continue;
                }
                frames.insert(child, FrameState { done: parent_done, cached, alive: true });
                if cached {
                    if cache_stack.last() != Some(&parent) {
                        diags.push(Diagnostic::new(
                            DiagCode::FrontierDesync,
                            at,
                            format!(
                                "cached clone branches from frame {parent}, which is not the top of the cache stack"
                            ),
                        ));
                    }
                    cache_stack.push(child);
                    peak = peak.max(cache_stack.len());
                }
            }
            ScheduleOp::Detach { frame } => {
                if frame == ROOT_FRAME {
                    diags.push(Diagnostic::new(
                        DiagCode::FrontierDesync,
                        at,
                        "the root (error-free prefix) frame must stay cached".to_string(),
                    ));
                    continue;
                }
                let st = frames.get_mut(&frame).expect("liveness checked above");
                if !st.cached || cache_stack.last() != Some(&frame) {
                    diags.push(Diagnostic::new(
                        DiagCode::FrontierDesync,
                        at,
                        format!("detach of frame {frame}, which is not the top of the cache stack"),
                    ));
                    cache_stack.retain(|&f| f != frame);
                } else {
                    cache_stack.pop();
                }
                st.cached = false;
            }
            ScheduleOp::InjectInPlace { frame, injection } => {
                ops_total += 1;
                let st = frames.get(&frame).expect("liveness checked above");
                if injection.layer() as i64 != st.done {
                    diags.push(Diagnostic::new(
                        DiagCode::FrontierDesync,
                        at,
                        format!(
                            "injection at layer {} applied to frame {frame} whose frontier is at layer {}",
                            injection.layer(),
                            st.done
                        ),
                    ));
                }
            }
            ScheduleOp::Measure { frame, trial } => {
                let st = frames.get(&frame).expect("liveness checked above");
                if st.done != last_layer {
                    diags.push(Diagnostic::new(
                        DiagCode::MeasurementCoverage,
                        at.at_trial(trial),
                        format!(
                            "trial {trial} measured from frame {frame} at layer {}, before the circuit's last layer {last_layer}",
                            st.done
                        ),
                    ));
                }
                match measured.get_mut(trial) {
                    Some(count) => {
                        *count += 1;
                        if *count > 1 {
                            diags.push(Diagnostic::new(
                                DiagCode::MeasurementCoverage,
                                at.at_trial(trial),
                                format!("trial {trial} measured {count} times"),
                            ));
                        }
                    }
                    None => diags.push(Diagnostic::new(
                        DiagCode::MeasurementCoverage,
                        at,
                        format!(
                            "measurement of unknown trial {trial} (the set has {})",
                            plan.trials.len()
                        ),
                    )),
                }
            }
            ScheduleOp::Drop { frame } => {
                if frame == ROOT_FRAME {
                    diags.push(Diagnostic::new(
                        DiagCode::FrontierDesync,
                        at,
                        "the root (error-free prefix) frame must never be dropped".to_string(),
                    ));
                    continue;
                }
                let st = frames.get_mut(&frame).expect("liveness checked above");
                if st.cached {
                    if cache_stack.last() == Some(&frame) {
                        cache_stack.pop();
                    } else {
                        diags.push(Diagnostic::new(
                            DiagCode::FrontierDesync,
                            at,
                            format!("drop of cached frame {frame}, which is not the top of the cache stack"),
                        ));
                        cache_stack.retain(|&f| f != frame);
                    }
                }
                st.alive = false;
            }
        }
    }

    for (&id, st) in &frames {
        if st.alive && id != ROOT_FRAME {
            diags.push(Diagnostic::new(
                DiagCode::LeakedFrame,
                Location::none(),
                format!("frame {id} is still alive when the schedule ends"),
            ));
        }
    }
    for (trial, &count) in measured.iter().enumerate() {
        if count == 0 {
            diags.push(Diagnostic::new(
                DiagCode::MeasurementCoverage,
                Location::trial(trial),
                format!("trial {trial} is never measured by the schedule"),
            ));
        }
    }

    if let Some(exp) = plan.expectations {
        if peak != exp.msv_peak {
            diags.push(Diagnostic::new(
                DiagCode::PeakMsvMismatch,
                Location::none(),
                format!(
                    "schedule peaks at {peak} cached state vector(s) but the cost report claims {}",
                    exp.msv_peak
                ),
            ));
        }
        if ops_total != exp.optimized_ops {
            diags.push(Diagnostic::new(
                DiagCode::OpsMismatch,
                Location::none(),
                format!(
                    "schedule performs {ops_total} gate+injection op(s) but the cost report claims {}",
                    exp.optimized_ops
                ),
            ));
        }
    }
    diags
}
