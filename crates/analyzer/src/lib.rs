#![warn(missing_docs)]
//! Static plan verifier for noisy quantum-circuit simulation.
//!
//! The paper's optimization — reorder Monte-Carlo trials, cache shared
//! prefix states, fuse gates between injection cuts — is "mathematically
//! equivalent to the original simulation" only while a stack of invariants
//! holds: the reorder is a permutation sorted under the shared key, every
//! cached state vector is dropped exactly at its last use, every injection
//! layer is a fusion cut, every operator is unitary. All of them are pure
//! functions of the *plan*, checkable before touching a single amplitude.
//!
//! This crate checks them like a compiler checks a program:
//!
//! * [`ExecutionPlan`] captures one compiled run — circuit, trials,
//!   order, fused program, and an explicit prefix-cache [`ScheduleOp`]
//!   stream produced by symbolically replaying `redsim`'s streaming loop.
//! * [`verify`] runs six passes — the MSV borrow checker, fusion-cut
//!   soundness, trial-set lints, circuit lints, structure-classification
//!   cross-checks, and the strategy advisor — and returns structured
//!   [`Diagnostic`]s with stable [`DiagCode`]s (`MSV*`, `FUS*`, `TRL*`,
//!   `NSE*`, `CIR*`, `A2*`; the full table lives in `docs/DIAGNOSTICS.md`).
//! * [`render_tty`] prints them human-readably; with the `serde` feature
//!   they serialize to JSON for tooling.
//! * [`Mutation`] seeds deliberate corruptions so the test suite can prove
//!   each pass actually fires.
//!
//! # Example
//!
//! ```
//! use qsim_analyzer::{verify, ExecutionPlan};
//! use qsim_circuit::catalog;
//! use qsim_noise::{NoiseModel, TrialGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let layered = catalog::bv(4, 0b101).layered()?;
//! let model = NoiseModel::uniform(4, 1e-3, 1e-2, 1e-2);
//! let trials = TrialGenerator::new(&layered, &model)?.generate(64, 7);
//! let plan = ExecutionPlan::compile(&layered, &trials, usize::MAX).with_model(model);
//! assert!(verify(&plan).is_empty());
//! # Ok(())
//! # }
//! ```

pub mod canon;
mod diag;
pub mod mutate;
pub mod passes;
mod plan;

pub use canon::{model_digest, prefix_fingerprint, StableHasher};
pub use diag::{has_errors, render_tty, DiagCode, Diagnostic, Location, Severity};
pub use mutate::Mutation;
pub use passes::advisor::{
    advise, commute_frame, Advice, CommutedFrame, InjectionVerdict, Strategy, StrategyPrediction,
};
pub use passes::structure::{SegmentClass, SegmentStructure};
pub use plan::{
    compile_schedule, ExecutionPlan, FrameId, PlanExpectations, ScheduleOp, ROOT_FRAME,
};

/// Run every verifier pass over `plan` and collect the findings, in pass
/// order (borrow checker, fusion, trial set, circuit, structure, advisor).
/// An empty result means the plan upholds every checked invariant; any
/// [`Severity::Error`] means executing it could produce wrong results.
pub fn verify(plan: &ExecutionPlan<'_>) -> Vec<Diagnostic> {
    let mut diags = passes::borrow::check(plan);
    diags.extend(passes::fusion::check(plan));
    diags.extend(passes::trials::check(plan));
    diags.extend(passes::circuit::check(plan));
    diags.extend(passes::structure::check(plan));
    diags.extend(passes::advisor::check(plan));
    diags
}

/// Markdown table of every diagnostic code (used to generate
/// `docs/DIAGNOSTICS.md`; a test asserts the file matches).
pub fn diag_table_markdown() -> String {
    use std::fmt::Write as _;
    let mut out = String::from("| Code | Severity | Invariant |\n| --- | --- | --- |\n");
    for &code in DiagCode::ALL {
        let _ = writeln!(out, "| `{}` | {} | {} |", code.as_str(), code.severity(), code.summary());
    }
    out
}
