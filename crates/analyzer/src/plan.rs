//! The execution plan the verifier checks: the trial order, the fused
//! program, and an explicit prefix-cache [`ScheduleOp`] stream.
//!
//! `redsim`'s `ReuseExecutor` never materializes its schedule — frame
//! lifetimes are implicit in its streaming loop. [`compile_schedule`]
//! reproduces that loop symbolically (same `keep = lcp(cur, next)`
//! clamped to `budget - 1`, same clone-at-frontier / consume-top /
//! eager-drop discipline) and records every frame event, so the borrow
//! checker can prove lifetime soundness without touching an amplitude.

use qsim_circuit::{CouplingMap, FusedProgram, LayeredCircuit};
use qsim_noise::{
    compare_trials, injection_cut_layers, lcp, Injection, NoiseModel, Trial, TrialSet,
};
use qsim_telemetry::{NullRecorder, Recorder};

use crate::passes::advisor::{Advice, Strategy};

/// Identifier of one multi-state-vector frame. Frames are allocated
/// monotonically; the error-free root prefix is always [`ROOT_FRAME`] and
/// ids are never reused, so a dangling reference is detectable forever.
pub type FrameId = usize;

/// The error-free prefix frame every trial branches from.
pub const ROOT_FRAME: FrameId = 0;

/// One event of the prefix-cache schedule, in execution order.
#[derive(Clone, Debug, PartialEq)]
pub enum ScheduleOp {
    /// Apply circuit layers to bring `frame`'s frontier up to (and
    /// including) layer `through` (`-1` means "before layer 0", i.e. a
    /// no-op for a fresh state).
    Advance {
        /// Frame whose frontier moves.
        frame: FrameId,
        /// Target layer, inclusive.
        through: i64,
    },
    /// Clone `parent` at its frontier and apply `injection` to the copy.
    /// `cached` copies stay live for later trials (they occupy an MSV
    /// slot); transient copies are consumed by the current trial alone.
    CloneInject {
        /// Frame being cloned (must be at `injection.layer()`).
        parent: FrameId,
        /// Freshly allocated frame id for the copy.
        child: FrameId,
        /// Error operator applied to the copy.
        injection: Injection,
        /// Whether the copy joins the cache stack.
        cached: bool,
    },
    /// Remove the top cached frame from the cache stack and hand its
    /// state to the current trial as its working state (the executor's
    /// "consume the deepest prefix" move — no copy).
    Detach {
        /// Frame leaving the cache stack (stays alive as working state).
        frame: FrameId,
    },
    /// Apply `injection` to `frame` in place (working state only).
    InjectInPlace {
        /// Working frame (must be at `injection.layer()`).
        frame: FrameId,
        /// Error operator applied in place.
        injection: Injection,
    },
    /// Sample trial `trial` from `frame` (frame must have completed the
    /// circuit).
    Measure {
        /// Frame holding the final state.
        frame: FrameId,
        /// Original (pre-reorder) trial index being measured.
        trial: usize,
    },
    /// Release `frame`; any later reference is use-after-drop.
    Drop {
        /// Frame being released.
        frame: FrameId,
    },
}

impl ScheduleOp {
    /// The frames this op touches (child of a clone included).
    pub fn frames(&self) -> (FrameId, Option<FrameId>) {
        match *self {
            ScheduleOp::Advance { frame, .. }
            | ScheduleOp::Detach { frame }
            | ScheduleOp::InjectInPlace { frame, .. }
            | ScheduleOp::Measure { frame, .. }
            | ScheduleOp::Drop { frame } => (frame, None),
            ScheduleOp::CloneInject { parent, child, .. } => (parent, Some(child)),
        }
    }
}

/// Cost figures the plan claims; the borrow checker cross-checks them
/// (`MSV003`, `MSV006`). Take them from `redsim`'s `CostReport`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanExpectations {
    /// Paper `ops` metric for running every trial from scratch.
    pub baseline_ops: u64,
    /// Paper `ops` metric under prefix reuse — what the schedule must cost.
    pub optimized_ops: u64,
    /// Peak number of simultaneously cached state vectors (root included).
    pub msv_peak: usize,
}

/// Everything the verifier needs about one compiled run, with every field
/// public so tests (and the mutation harness) can corrupt any layer.
#[derive(Clone, Debug)]
pub struct ExecutionPlan<'a> {
    /// The transpiled, layered circuit to execute.
    pub layered: &'a LayeredCircuit,
    /// Register width the trial set was generated for.
    pub n_qubits: usize,
    /// Layer count the trial set was generated for.
    pub n_layers: usize,
    /// The Monte-Carlo trials, in original generation order.
    pub trials: Vec<Trial>,
    /// Execution order: `order[k]` = index into `trials` of the k-th trial
    /// to run. Must be a permutation sorted under the reorder key.
    pub order: Vec<usize>,
    /// MSV budget the schedule was compiled for (`usize::MAX` = unbounded).
    pub budget: usize,
    /// The fused program shared by all trials.
    pub program: FusedProgram,
    /// The explicit prefix-cache schedule.
    pub schedule: Vec<ScheduleOp>,
    /// Claimed cost figures, if any.
    pub expectations: Option<PlanExpectations>,
    /// The noise model the trials were drawn from, if available.
    pub model: Option<NoiseModel>,
    /// The device coupling map the circuit was transpiled to, if any.
    pub coupling: Option<CouplingMap>,
    /// The execution strategy the caller intends to run, if declared
    /// (judged by the advisor pass, `A204`/`A205`).
    pub strategy: Option<Strategy>,
    /// Claimed advisor output, if attached (cross-checked by the structure
    /// and advisor passes, `A201`–`A203`).
    pub advice: Option<Advice>,
}

impl<'a> ExecutionPlan<'a> {
    /// Compile the canonical plan for `(layered, set, budget)`: sort the
    /// trial order under the reorder key, cut the fused program at the
    /// union of injection layers, and compile the prefix-cache schedule.
    ///
    /// Compilation is total — malformed inputs (out-of-range layers, an
    /// empty set, budget 0) still produce a plan; it is [`crate::verify`]'s
    /// job to diagnose them.
    pub fn compile(layered: &'a LayeredCircuit, set: &TrialSet, budget: usize) -> Self {
        Self::compile_traced(layered, set, budget, &NullRecorder)
    }

    /// [`ExecutionPlan::compile`] with telemetry: bumps the
    /// `"plan.fuse_compile"` counter once per fused-program compilation,
    /// so callers sharing one plan across consumers (`qsim verify` +
    /// `qsim advise`, the auto-select hook) can prove fuse work is not
    /// repeated.
    pub fn compile_traced<R: Recorder + ?Sized>(
        layered: &'a LayeredCircuit,
        set: &TrialSet,
        budget: usize,
        recorder: &R,
    ) -> Self {
        let trials = set.trials().to_vec();
        let mut order: Vec<usize> = (0..trials.len()).collect();
        order.sort_by(|&a, &b| compare_trials(&trials[a], &trials[b]));
        let program = FusedProgram::new(layered, &injection_cut_layers(&trials));
        if recorder.enabled() {
            recorder.counter("plan.fuse_compile", 1);
        }
        let schedule = compile_schedule(&trials, &order, layered.n_layers(), budget);
        ExecutionPlan {
            layered,
            n_qubits: set.n_qubits(),
            n_layers: set.n_layers(),
            trials,
            order,
            budget,
            program,
            schedule,
            expectations: None,
            model: None,
            coupling: None,
            strategy: None,
            advice: None,
        }
    }

    /// Attach claimed cost figures for `MSV003`/`MSV006` cross-checks.
    pub fn with_expectations(mut self, expectations: PlanExpectations) -> Self {
        self.expectations = Some(expectations);
        self
    }

    /// Attach the noise model for `NSE001` lints.
    pub fn with_model(mut self, model: NoiseModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Attach the coupling map for `CIR002` lints.
    pub fn with_coupling(mut self, coupling: CouplingMap) -> Self {
        self.coupling = Some(coupling);
        self
    }

    /// Declare the strategy this plan will run under (judged by the
    /// advisor pass, `A204`/`A205`).
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Attach claimed advisor output for `A201`–`A203` cross-checks.
    pub fn with_advice(mut self, advice: Advice) -> Self {
        self.advice = Some(advice);
        self
    }
}

/// Symbolically replay `redsim`'s streaming reuse loop and record every
/// frame event. `order[k]` indexes into `trials`; out-of-range order
/// entries are skipped here (the trial-set pass reports them).
pub fn compile_schedule(
    trials: &[Trial],
    order: &[usize],
    n_layers: usize,
    budget: usize,
) -> Vec<ScheduleOp> {
    let budget = budget.max(1);
    let last_layer = n_layers as i64 - 1;
    let mut ops = Vec::new();
    // Cache stack of (frame, depth): depth = number of injections applied.
    // The root (error-free prefix, depth 0) is never dropped.
    let mut stack: Vec<(FrameId, usize)> = vec![(ROOT_FRAME, 0)];
    let mut next_frame: FrameId = ROOT_FRAME + 1;
    let mut alloc = || {
        let id = next_frame;
        next_frame += 1;
        id
    };

    for (pos, &orig) in order.iter().enumerate() {
        let Some(cur) = trials.get(orig) else { continue };
        let injections = cur.injections();
        // How many leading injections the *next* trial shares — that many
        // frames stay cached; a budget of B caps the stack at B frames
        // (root included), so at most B - 1 injected prefixes survive.
        let keep = match order.get(pos + 1).and_then(|&n| trials.get(n)) {
            Some(next) => lcp(cur, next).min(budget - 1),
            None => 0,
        };
        let mut d = stack.last().expect("root frame is never dropped").1;
        loop {
            let &(top, _) = stack.last().expect("root frame is never dropped");
            if d == injections.len() {
                // All injections applied: finish the circuit on the shared
                // frame, measure, then eagerly drop what the next trial
                // cannot reuse.
                ops.push(ScheduleOp::Advance { frame: top, through: last_layer });
                ops.push(ScheduleOp::Measure { frame: top, trial: orig });
                while stack.last().is_some_and(|&(_, depth)| depth > keep) {
                    let (frame, _) = stack.pop().expect("non-empty by loop condition");
                    ops.push(ScheduleOp::Drop { frame });
                }
                break;
            }
            let target = injections[d].layer() as i64;
            ops.push(ScheduleOp::Advance { frame: top, through: target });
            if d < keep {
                // Shared prefix the next trial also needs: cache a copy.
                let child = alloc();
                ops.push(ScheduleOp::CloneInject {
                    parent: top,
                    child,
                    injection: injections[d],
                    cached: true,
                });
                stack.push((child, d + 1));
                d += 1;
                continue;
            }
            // Last shared point: obtain a private working state...
            let working = if d == keep {
                // ...by copying the still-shared top...
                let child = alloc();
                ops.push(ScheduleOp::CloneInject {
                    parent: top,
                    child,
                    injection: injections[d],
                    cached: false,
                });
                child
            } else {
                // ...or by consuming the top outright (deeper than the next
                // trial reuses), dropping intermediates it strands.
                let (frame, _) = stack.pop().expect("depth > keep implies a cached frame");
                ops.push(ScheduleOp::Detach { frame });
                while stack.last().is_some_and(|&(_, depth)| depth > keep) {
                    let (dead, _) = stack.pop().expect("non-empty by loop condition");
                    ops.push(ScheduleOp::Drop { frame: dead });
                }
                ops.push(ScheduleOp::InjectInPlace { frame, injection: injections[d] });
                frame
            };
            // Remaining injections are private to this trial.
            for &injection in &injections[d + 1..] {
                ops.push(ScheduleOp::Advance { frame: working, through: injection.layer() as i64 });
                ops.push(ScheduleOp::InjectInPlace { frame: working, injection });
            }
            ops.push(ScheduleOp::Advance { frame: working, through: last_layer });
            ops.push(ScheduleOp::Measure { frame: working, trial: orig });
            ops.push(ScheduleOp::Drop { frame: working });
            break;
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_statevec::Pauli;

    fn trial(layers: &[usize]) -> Trial {
        Trial::new(layers.iter().map(|&l| Injection::single(l, 0, Pauli::X)).collect(), 0, 0)
    }

    #[test]
    fn error_free_trial_runs_on_the_root_alone() {
        let trials = vec![Trial::error_free(1)];
        let ops = compile_schedule(&trials, &[0], 4, usize::MAX);
        assert_eq!(
            ops,
            vec![
                ScheduleOp::Advance { frame: ROOT_FRAME, through: 3 },
                ScheduleOp::Measure { frame: ROOT_FRAME, trial: 0 },
            ]
        );
    }

    #[test]
    fn shared_prefix_is_cached_then_consumed() {
        // Two trials sharing injection @0, diverging at the second.
        let trials = vec![trial(&[0, 1]), trial(&[0, 2])];
        let ops = compile_schedule(&trials, &[0, 1], 4, usize::MAX);
        // Trial 0: cache the shared depth-1 prefix (frame 1), finish on a
        // transient copy (frame 2). Trial 1: consume frame 1 directly.
        assert_eq!(
            ops,
            vec![
                ScheduleOp::Advance { frame: 0, through: 0 },
                ScheduleOp::CloneInject {
                    parent: 0,
                    child: 1,
                    injection: Injection::single(0, 0, Pauli::X),
                    cached: true,
                },
                ScheduleOp::Advance { frame: 1, through: 1 },
                ScheduleOp::CloneInject {
                    parent: 1,
                    child: 2,
                    injection: Injection::single(1, 0, Pauli::X),
                    cached: false,
                },
                ScheduleOp::Advance { frame: 2, through: 3 },
                ScheduleOp::Measure { frame: 2, trial: 0 },
                ScheduleOp::Drop { frame: 2 },
                ScheduleOp::Advance { frame: 1, through: 2 },
                ScheduleOp::Detach { frame: 1 },
                ScheduleOp::InjectInPlace {
                    frame: 1,
                    injection: Injection::single(2, 0, Pauli::X)
                },
                ScheduleOp::Advance { frame: 1, through: 3 },
                ScheduleOp::Measure { frame: 1, trial: 1 },
                ScheduleOp::Drop { frame: 1 },
            ]
        );
    }

    #[test]
    fn budget_one_never_caches() {
        let trials = vec![trial(&[0, 1]), trial(&[0, 2])];
        let ops = compile_schedule(&trials, &[0, 1], 4, 1);
        assert!(ops.iter().all(|op| !matches!(
            op,
            ScheduleOp::CloneInject { cached: true, .. } | ScheduleOp::Detach { .. }
        )));
        // Both trials still measured exactly once.
        let measured: Vec<usize> = ops
            .iter()
            .filter_map(|op| match op {
                ScheduleOp::Measure { trial, .. } => Some(*trial),
                _ => None,
            })
            .collect();
        assert_eq!(measured, vec![0, 1]);
    }
}
