//! The diagnostic data model: codes, severities, locations, and renderers.
//!
//! Diagnostics are shaped like a compiler's: a stable machine-readable
//! [`DiagCode`], a [`Severity`], a human message, and a structured
//! [`Location`] into the plan. They serialize to JSON (under the `serde`
//! feature) for tooling and render to a terminal via [`render_tty`].

use std::fmt;

/// How bad a finding is.
///
/// `Error` means the plan is unsound — executing it could produce wrong
/// amplitudes, wrong statistics, or out-of-bounds access. `Warning` flags
/// something legal but suspicious (e.g. an empty trial set).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Severity {
    /// Suspicious but executable.
    Warning,
    /// The plan is unsound; executors must refuse it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

macro_rules! diag_codes {
    ($( $variant:ident => ($code:literal, $severity:ident, $summary:literal), )*) => {
        /// Stable identifier for one plan invariant, grouped by pass:
        /// `MSV*` (cache-schedule borrow checker), `FUS*` (fusion-cut
        /// soundness), `TRL*` (trial-set lints), `NSE*` (noise-model
        /// lints), `CIR*` (circuit lints), `A2*` (structure classifier
        /// and strategy advisor).
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[allow(clippy::upper_case_acronyms)]
        pub enum DiagCode {
            $(
                #[doc = $summary]
                $variant,
            )*
        }

        impl DiagCode {
            /// Every code the verifier can emit, in pass order.
            pub const ALL: &'static [DiagCode] = &[$(DiagCode::$variant),*];

            /// The stable wire form, e.g. `"MSV001"`.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(DiagCode::$variant => $code,)*
                }
            }

            /// Parse the wire form back; `None` for unknown codes.
            pub fn parse(text: &str) -> Option<Self> {
                match text {
                    $($code => Some(DiagCode::$variant),)*
                    _ => None,
                }
            }

            /// The severity this code always carries.
            pub fn severity(self) -> Severity {
                match self {
                    $(DiagCode::$variant => Severity::$severity,)*
                }
            }

            /// One-line description of the invariant the code guards.
            pub fn summary(self) -> &'static str {
                match self {
                    $(DiagCode::$variant => $summary,)*
                }
            }
        }
    };
}

diag_codes! {
    // ---- MSV borrow checker (cache schedule) ----
    UseAfterDrop => ("MSV001", Error, "a schedule op uses a frame after it was dropped (or never created)"),
    LeakedFrame => ("MSV002", Error, "a non-root frame is still alive when the schedule ends"),
    PeakMsvMismatch => ("MSV003", Error, "the schedule's peak cached-frame count disagrees with the cost report"),
    FrontierDesync => ("MSV004", Error, "a frame's layer frontier moves backwards, an injection misses its frontier, or cache-stack discipline is violated"),
    MeasurementCoverage => ("MSV005", Error, "a trial is measured zero times, more than once, or before its circuit completes"),
    OpsMismatch => ("MSV006", Error, "the schedule's total gate+injection work disagrees with the cost report"),
    // ---- Fusion-cut soundness ----
    MissingCut => ("FUS001", Error, "an injection layer of the trial set does not end a fused segment"),
    ProgramGeometry => ("FUS002", Error, "the fused program's qubit or layer count disagrees with the circuit"),
    SegmentTiling => ("FUS003", Error, "the fused segments do not tile the layer range exactly once"),
    NonUnitaryFusedOp => ("FUS004", Error, "a fused operator is not unitary within tolerance"),
    KernelMismatch => ("FUS005", Error, "a classified kernel does not match recompilation of its segment"),
    SourceGateMismatch => ("FUS006", Error, "a segment's source-gate accounting disagrees with the circuit"),
    // ---- Trial-set lints ----
    NotSorted => ("TRL001", Error, "consecutive trials violate the reorder sort key"),
    NotPermutation => ("TRL002", Error, "the execution order is not a permutation of the trial indices"),
    LayerOutOfRange => ("TRL003", Error, "an injection targets a layer outside the circuit"),
    QubitOutOfRange => ("TRL004", Error, "an injection targets a qubit outside the register"),
    NonCanonicalTrial => ("TRL005", Error, "a trial's injections are unsorted or duplicate a position"),
    TrialGeometry => ("TRL006", Error, "the trial set's qubit or layer count disagrees with the circuit"),
    EmptyTrialSet => ("TRL007", Warning, "the trial set has no trials; the run will produce no samples"),
    // ---- Noise-model lints ----
    InvalidProbability => ("NSE001", Error, "a noise-model probability is outside [0, 1] or a channel's total exceeds 1"),
    // ---- Circuit lints ----
    GateQubitOutOfRange => ("CIR001", Error, "a gate operates on a qubit outside the register"),
    CouplingViolation => ("CIR002", Error, "a multi-qubit gate spans qubits the coupling map does not connect"),
    NonUnitaryGate => ("CIR003", Error, "a gate's matrix is not unitary (e.g. a NaN rotation angle)"),
    InvalidMeasurement => ("CIR004", Error, "a measurement maps an out-of-range qubit or classical bit, or reuses a classical bit"),
    // ---- Structure classifier & strategy advisor ----
    SegmentClassMismatch => ("A201", Error, "a claimed segment structure class disagrees with reclassification or dense-matrix verification"),
    FrameVerdictMismatch => ("A202", Error, "a claimed Pauli-frame trackability verdict disagrees with symbolic recommutation"),
    CostPredictionMismatch => ("A203", Error, "a claimed strategy cost prediction disagrees with the analytic cost model"),
    SuboptimalStrategy => ("A204", Warning, "the declared strategy is predicted to cost more amplitude passes than the ranked best"),
    FrameTrackableSet => ("A205", Warning, "most trials are fully frame-trackable but the declared strategy does not track frames"),
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(feature = "serde")]
impl serde::ser::Serialize for DiagCode {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Str(self.as_str().to_owned())
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::de::Deserialize<'de> for DiagCode {
    fn from_value(value: &serde::value::Value) -> Result<Self, serde::de::DeError> {
        let text = String::from_value(value)?;
        DiagCode::parse(&text)
            .ok_or_else(|| serde::de::DeError::new(format!("unknown diagnostic code `{text}`")))
    }
}

/// Where in the plan a diagnostic points. Every field is optional; a
/// location names only the coordinates that make sense for its code
/// (e.g. a schedule finding has `schedule_op`, a trial lint has `trial`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Location {
    /// Original (pre-reorder) trial index.
    pub trial: Option<usize>,
    /// Injection index within the trial.
    pub injection: Option<usize>,
    /// Circuit layer.
    pub layer: Option<usize>,
    /// Fused-program segment index.
    pub segment: Option<usize>,
    /// Index into the cache schedule's op stream.
    pub schedule_op: Option<usize>,
    /// Qubit index.
    pub qubit: Option<usize>,
}

impl Location {
    /// An empty location (plan-global finding).
    pub fn none() -> Self {
        Self::default()
    }

    /// Point at a trial.
    pub fn trial(index: usize) -> Self {
        Self { trial: Some(index), ..Self::default() }
    }

    /// Point at one injection of a trial.
    pub fn injection(trial: usize, injection: usize) -> Self {
        Self { trial: Some(trial), injection: Some(injection), ..Self::default() }
    }

    /// Point at a circuit layer.
    pub fn layer(layer: usize) -> Self {
        Self { layer: Some(layer), ..Self::default() }
    }

    /// Point at a fused segment.
    pub fn segment(index: usize) -> Self {
        Self { segment: Some(index), ..Self::default() }
    }

    /// Point at one op of the cache schedule.
    pub fn schedule_op(index: usize) -> Self {
        Self { schedule_op: Some(index), ..Self::default() }
    }

    /// Add a layer coordinate.
    pub fn at_layer(mut self, layer: usize) -> Self {
        self.layer = Some(layer);
        self
    }

    /// Add a qubit coordinate.
    pub fn at_qubit(mut self, qubit: usize) -> Self {
        self.qubit = Some(qubit);
        self
    }

    /// Add a trial coordinate.
    pub fn at_trial(mut self, trial: usize) -> Self {
        self.trial = Some(trial);
        self
    }

    fn parts(&self) -> Vec<String> {
        let mut parts = Vec::new();
        if let Some(t) = self.trial {
            parts.push(format!("trial {t}"));
        }
        if let Some(i) = self.injection {
            parts.push(format!("injection {i}"));
        }
        if let Some(l) = self.layer {
            parts.push(format!("layer {l}"));
        }
        if let Some(s) = self.segment {
            parts.push(format!("segment {s}"));
        }
        if let Some(o) = self.schedule_op {
            parts.push(format!("schedule op {o}"));
        }
        if let Some(q) = self.qubit {
            parts.push(format!("qubit {q}"));
        }
        parts
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts = self.parts();
        if parts.is_empty() {
            write!(f, "plan")
        } else {
            write!(f, "{}", parts.join(", "))
        }
    }
}

/// One finding: a coded, located, human-readable statement about the plan.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Diagnostic {
    /// The invariant that failed.
    pub code: DiagCode,
    /// Error or warning (always `code.severity()` for verifier output).
    pub severity: Severity,
    /// Human-readable explanation with concrete values.
    pub message: String,
    /// Structured pointer into the plan.
    pub location: Location,
}

impl Diagnostic {
    /// Build a diagnostic; severity comes from the code.
    pub fn new(code: DiagCode, location: Location, message: impl Into<String>) -> Self {
        Diagnostic { code, severity: code.severity(), message: message.into(), location }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {} --> {}", self.severity, self.code, self.message, self.location)
    }
}

/// True if any diagnostic is an [`Severity::Error`].
pub fn has_errors(diagnostics: &[Diagnostic]) -> bool {
    diagnostics.iter().any(|d| d.severity == Severity::Error)
}

/// Render diagnostics the way a compiler prints to a TTY:
///
/// ```text
/// error[MSV001]: frame 3 used after drop
///   --> schedule op 17, trial 5
/// ```
///
/// followed by an `N errors, M warnings` summary line. Returns an empty
/// string for an empty slice so callers can print a success line instead.
pub fn render_tty(diagnostics: &[Diagnostic]) -> String {
    use std::fmt::Write as _;
    if diagnostics.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    for d in diagnostics {
        let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
        let _ = writeln!(out, "  --> {}", d.location);
    }
    let errors = diagnostics.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = diagnostics.len() - errors;
    let _ = writeln!(out, "{errors} error(s), {warnings} warning(s)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_their_wire_form() {
        for &code in DiagCode::ALL {
            assert_eq!(DiagCode::parse(code.as_str()), Some(code));
            assert!(!code.summary().is_empty());
        }
        assert_eq!(DiagCode::parse("XYZ999"), None);
    }

    #[test]
    fn wire_forms_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for &code in DiagCode::ALL {
            assert!(seen.insert(code.as_str()), "duplicate wire form {}", code.as_str());
        }
    }

    #[test]
    fn renderer_reports_counts_and_locations() {
        let diags = vec![
            Diagnostic::new(
                DiagCode::UseAfterDrop,
                Location::schedule_op(17).at_trial(5),
                "frame 3 used after drop",
            ),
            Diagnostic::new(DiagCode::EmptyTrialSet, Location::none(), "no trials"),
        ];
        let text = render_tty(&diags);
        assert!(text.contains("error[MSV001]: frame 3 used after drop"));
        assert!(text.contains("--> trial 5, schedule op 17"));
        assert!(text.contains("warning[TRL007]"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
        assert!(render_tty(&[]).is_empty());
        assert!(has_errors(&diags));
        assert!(!has_errors(&diags[1..]));
    }
}
