//! The mutation self-test harness: seeded plan corruptions, one per
//! verifier invariant, proving each pass actually fires.
//!
//! A verifier that always returns "sound" is worse than none. Each
//! [`Mutation`] deliberately breaks one invariant of a compiled
//! [`ExecutionPlan`]; the self-test contract is that [`crate::verify`]
//! then emits [`Mutation::expected_code`]. `apply` returns `false` when
//! the plan has no site for the corruption (e.g. no cached frame to leak),
//! so tests can skip inapplicable combinations honestly.

use qsim_circuit::FusedProgram;
use qsim_noise::{compare_trials, Injection, PauliWeights, Trial};
use qsim_statevec::{FusedOp, Pauli};

use crate::diag::DiagCode;
use crate::passes::structure::SegmentClass;
use crate::plan::{ExecutionPlan, ScheduleOp};

/// One seeded corruption of a compiled plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Swap two adjacent, differing trials in the execution order.
    SwapAdjacentTrials,
    /// Make one order entry a duplicate of its neighbour.
    DuplicateOrderEntry,
    /// Recompile the fused program without one used injection cut.
    DropCutLayer,
    /// Replace a dense kernel with its (non-unitary) diagonal truncation.
    MisclassifyKernel,
    /// Move a frame's drop to right after its creation (off-by-one drop
    /// point — the frame's later uses become use-after-drop).
    PrematureDrop,
    /// Delete a frame's drop entirely.
    LeakFrame,
    /// Overstate the claimed peak MSV by one.
    PeakMsvLie,
    /// Retarget an injection at a qubit outside the register.
    BadPauliTarget,
    /// Retarget an injection at a layer outside the circuit.
    OutOfRangeLayer,
    /// Corrupt the noise model with a channel whose total exceeds 1.
    UnnormalizedModel,
    /// Flip a claimed segment structure class (requires attached advice).
    MisclassifySegment,
    /// Flip one claimed Pauli-frame trackability verdict.
    FlipFrameVerdict,
    /// Skew the best-ranked strategy's claimed amplitude-pass count.
    SkewCostModel,
}

impl Mutation {
    /// Every mutation, for exhaustive self-tests.
    pub const ALL: &'static [Mutation] = &[
        Mutation::SwapAdjacentTrials,
        Mutation::DuplicateOrderEntry,
        Mutation::DropCutLayer,
        Mutation::MisclassifyKernel,
        Mutation::PrematureDrop,
        Mutation::LeakFrame,
        Mutation::PeakMsvLie,
        Mutation::BadPauliTarget,
        Mutation::OutOfRangeLayer,
        Mutation::UnnormalizedModel,
        Mutation::MisclassifySegment,
        Mutation::FlipFrameVerdict,
        Mutation::SkewCostModel,
    ];

    /// The diagnostic code this corruption must provoke.
    pub fn expected_code(self) -> DiagCode {
        match self {
            Mutation::SwapAdjacentTrials => DiagCode::NotSorted,
            Mutation::DuplicateOrderEntry => DiagCode::NotPermutation,
            Mutation::DropCutLayer => DiagCode::MissingCut,
            Mutation::MisclassifyKernel => DiagCode::KernelMismatch,
            Mutation::PrematureDrop => DiagCode::UseAfterDrop,
            Mutation::LeakFrame => DiagCode::LeakedFrame,
            Mutation::PeakMsvLie => DiagCode::PeakMsvMismatch,
            Mutation::BadPauliTarget => DiagCode::QubitOutOfRange,
            Mutation::OutOfRangeLayer => DiagCode::LayerOutOfRange,
            Mutation::UnnormalizedModel => DiagCode::InvalidProbability,
            Mutation::MisclassifySegment => DiagCode::SegmentClassMismatch,
            Mutation::FlipFrameVerdict => DiagCode::FrameVerdictMismatch,
            Mutation::SkewCostModel => DiagCode::CostPredictionMismatch,
        }
    }

    /// Corrupt `plan` in place. Returns `false` if the plan offers no
    /// site for this corruption (nothing was changed).
    pub fn apply(self, plan: &mut ExecutionPlan<'_>) -> bool {
        match self {
            Mutation::SwapAdjacentTrials => {
                for pos in 0..plan.order.len().saturating_sub(1) {
                    let (a, b) = (plan.order[pos], plan.order[pos + 1]);
                    if compare_trials(&plan.trials[a], &plan.trials[b]) == std::cmp::Ordering::Less
                    {
                        plan.order.swap(pos, pos + 1);
                        return true;
                    }
                }
                false
            }
            Mutation::DuplicateOrderEntry => {
                for pos in 0..plan.order.len().saturating_sub(1) {
                    if plan.order[pos] != plan.order[pos + 1] {
                        plan.order[pos] = plan.order[pos + 1];
                        return true;
                    }
                }
                false
            }
            Mutation::DropCutLayer => {
                // Dropping the cut at the circuit's last layer changes
                // nothing (the final layer always ends a segment), so pick
                // a used injection layer strictly before it.
                let last = plan.layered.n_layers().saturating_sub(1);
                let Some(cut) = plan
                    .trials
                    .iter()
                    .flat_map(|t| t.injections().iter().map(|i| i.layer()))
                    .find(|&l| l < last)
                else {
                    return false;
                };
                let cuts: Vec<usize> = plan
                    .trials
                    .iter()
                    .flat_map(|t| t.injections().iter().map(|i| i.layer()))
                    .filter(|&l| l != cut)
                    .collect();
                plan.program = FusedProgram::new(plan.layered, &cuts);
                true
            }
            Mutation::MisclassifyKernel => {
                for seg in plan.program.segments_mut() {
                    for op in seg.ops_mut() {
                        match *op {
                            FusedOp::Dense1 { m, qubit } => {
                                *op = FusedOp::Diag1 { d: [m.0[0][0], m.0[1][1]], qubit };
                                return true;
                            }
                            FusedOp::Dense2 { m, low, high } => {
                                *op = FusedOp::Diag2 {
                                    d: [m.0[0][0], m.0[1][1], m.0[2][2], m.0[3][3]],
                                    low,
                                    high,
                                };
                                return true;
                            }
                            _ => {}
                        }
                    }
                }
                false
            }
            Mutation::PrematureDrop => {
                for i in 0..plan.schedule.len() {
                    let ScheduleOp::Drop { frame } = plan.schedule[i] else { continue };
                    let Some(created) = plan.schedule[..i].iter().position(
                        |op| matches!(op, ScheduleOp::CloneInject { child, .. } if *child == frame),
                    ) else {
                        continue;
                    };
                    // Only worthwhile if the frame is used between creation
                    // and drop — the move must strand a later use.
                    let used_between =
                        plan.schedule[created + 1..i].iter().any(|op| op.frames().0 == frame);
                    if !used_between {
                        continue;
                    }
                    let drop = plan.schedule.remove(i);
                    plan.schedule.insert(created + 1, drop);
                    return true;
                }
                false
            }
            Mutation::LeakFrame => {
                if let Some(i) =
                    plan.schedule.iter().position(|op| matches!(op, ScheduleOp::Drop { .. }))
                {
                    plan.schedule.remove(i);
                    return true;
                }
                false
            }
            Mutation::PeakMsvLie => match plan.expectations.as_mut() {
                Some(exp) => {
                    exp.msv_peak += 1;
                    true
                }
                None => false,
            },
            Mutation::BadPauliTarget => retarget_injection(plan, |injection, n_qubits, _| {
                Injection::single(injection.layer(), n_qubits, Pauli::X)
            }),
            Mutation::OutOfRangeLayer => {
                retarget_injection(plan, |_, _, n_layers| Injection::single(n_layers, 0, Pauli::X))
            }
            Mutation::UnnormalizedModel => match plan.model.as_mut() {
                Some(model) if model.n_qubits() > 0 => {
                    // Bypasses `PauliWeights::new` validation on purpose:
                    // total probability 2.7.
                    let bad = PauliWeights { x: 0.9, y: 0.9, z: 0.9 };
                    model.set_single_weights(0, bad).expect("qubit 0 exists");
                    true
                }
                _ => false,
            },
            Mutation::MisclassifySegment => match plan.advice.as_mut() {
                Some(advice) => {
                    // Any class change mismatches the structure pass's exact
                    // recomputation; rotate to a guaranteed-different class.
                    let Some(claim) = advice.segments.first_mut() else { return false };
                    claim.class = match claim.class {
                        SegmentClass::General => SegmentClass::Identity,
                        _ => SegmentClass::General,
                    };
                    claim.clifford = !claim.clifford;
                    true
                }
                None => false,
            },
            Mutation::FlipFrameVerdict => match plan.advice.as_mut() {
                Some(advice) => match advice.verdicts.first_mut() {
                    Some(verdict) => {
                        verdict.trackable = !verdict.trackable;
                        true
                    }
                    None => false,
                },
                None => false,
            },
            Mutation::SkewCostModel => match plan.advice.as_mut() {
                Some(advice) => match advice.predictions.first_mut() {
                    Some(prediction) => {
                        prediction.amplitude_passes += 1;
                        true
                    }
                    None => false,
                },
                None => false,
            },
        }
    }
}

/// Replace the first injection of the first errorful trial via `make`,
/// keeping the trial's flips and seed. Returns `false` for an all-clean
/// set.
fn retarget_injection(
    plan: &mut ExecutionPlan<'_>,
    make: impl Fn(Injection, usize, usize) -> Injection,
) -> bool {
    let n_qubits = plan.layered.n_qubits();
    let n_layers = plan.layered.n_layers();
    for trial in &mut plan.trials {
        if trial.n_injections() == 0 {
            continue;
        }
        let mut injections = trial.injections().to_vec();
        injections[0] = make(injections[0], n_qubits, n_layers);
        // Skip if the replacement collides with an existing position
        // (`Trial::new` would panic on the duplicate).
        let candidate = injections[0];
        if injections[1..]
            .iter()
            .any(|i| i.layer() == candidate.layer() && i.site() == candidate.site())
        {
            continue;
        }
        *trial = Trial::new(injections, trial.meas_flip_mask(), trial.seed());
        return true;
    }
    false
}
