//! Golden test keeping `docs/DIAGNOSTICS.md` in sync with the code
//! registry: everything after the generation marker must byte-match
//! [`qsim_analyzer::diag_table_markdown`]. Run with `UPDATE_DIAGNOSTICS=1`
//! to rewrite the generated region in place after adding a code.

const DOC_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/DIAGNOSTICS.md");
const MARKER_END: &str = "Do not edit below this line. -->\n";

#[test]
fn diagnostics_doc_matches_generated_table() {
    let table = qsim_analyzer::diag_table_markdown();
    let contents =
        std::fs::read_to_string(DOC_PATH).unwrap_or_else(|e| panic!("read {DOC_PATH}: {e}"));
    let marker_at =
        contents.find(MARKER_END).expect("docs/DIAGNOSTICS.md must keep its generation marker");
    let head = &contents[..marker_at + MARKER_END.len()];
    let generated = &contents[marker_at + MARKER_END.len()..];
    if std::env::var_os("UPDATE_DIAGNOSTICS").is_some() {
        std::fs::write(DOC_PATH, format!("{head}{table}"))
            .unwrap_or_else(|e| panic!("write {DOC_PATH}: {e}"));
        return;
    }
    assert_eq!(
        generated, table,
        "docs/DIAGNOSTICS.md is stale; regenerate with \
         `UPDATE_DIAGNOSTICS=1 cargo test -p qsim-analyzer --test diag_docs`"
    );
}
