//! The mutation self-test: clean plans verify clean across the whole
//! catalog, and every seeded corruption provokes its expected diagnostic.

use qsim_analyzer::{verify, DiagCode, ExecutionPlan, Mutation, PlanExpectations, Severity};
use qsim_circuit::transpile::{transpile, TranspileOptions};
use qsim_circuit::{catalog, Circuit, LayeredCircuit};
use qsim_noise::{NoiseModel, TrialGenerator, TrialSet};

/// Lower to the native gate set (trial generation rejects e.g. `ccx`).
fn native(circuit: &Circuit) -> LayeredCircuit {
    transpile(circuit, &TranspileOptions::logical())
        .expect("transpile")
        .circuit
        .layered()
        .expect("layering")
}

/// Every catalog circuit, by name, at sizes small enough to test quickly.
fn catalog_circuits() -> Vec<(&'static str, Circuit)> {
    vec![
        ("rb", catalog::rb()),
        ("grover_3q", catalog::grover_3q(1)),
        ("grover", catalog::grover(3, 0b101, 1)),
        ("wstate_3q", catalog::wstate_3q()),
        ("seven_x1_mod15", catalog::seven_x1_mod15()),
        ("bv", catalog::bv(5, 0b1011)),
        ("qft", catalog::qft(4)),
        ("quantum_volume", catalog::quantum_volume(4, 3, 11)),
        ("rb_sequence", catalog::rb_sequence(6, 5)),
        ("ghz", catalog::ghz(5)),
        ("qpe", catalog::qpe(3, 1)),
        ("adder_2bit", catalog::adder_2bit(2, 3)),
        ("hidden_shift", catalog::hidden_shift(4, 0b0110)),
    ]
}

fn generate(layered: &LayeredCircuit, seed: u64) -> (TrialSet, NoiseModel) {
    // Rates high enough that 64 trials carry several multi-injection
    // trials, exercising deep cache stacks.
    let model = NoiseModel::uniform(layered.n_qubits(), 0.01, 0.05, 0.02);
    let set = TrialGenerator::new(layered, &model).expect("generator").generate(64, seed);
    (set, model)
}

fn expectations(layered: &LayeredCircuit, set: &TrialSet, budget: usize) -> PlanExpectations {
    let mut sorted = set.trials().to_vec();
    redsim::reorder(&mut sorted);
    let report = redsim::analysis::analyze_sorted_with_budget(layered, &sorted, budget.max(1))
        .expect("analysis");
    PlanExpectations {
        baseline_ops: report.baseline_ops,
        optimized_ops: report.optimized_ops,
        msv_peak: report.msv_peak,
    }
}

fn compile<'a>(
    layered: &'a LayeredCircuit,
    set: &TrialSet,
    model: &NoiseModel,
    budget: usize,
) -> ExecutionPlan<'a> {
    let plan = ExecutionPlan::compile(layered, set, budget)
        .with_expectations(expectations(layered, set, budget))
        .with_model(model.clone());
    // Attach the advisor's own analysis so the structure and advisor
    // cross-check passes run (and the A2xx mutations find sites).
    let advice = qsim_analyzer::advise(&plan);
    plan.with_advice(advice)
}

#[test]
fn clean_plans_verify_clean_across_catalog_and_seeds() {
    for (name, circuit) in catalog_circuits() {
        let layered = native(&circuit);
        for seed in [1u64, 2, 3] {
            let (set, model) = generate(&layered, seed);
            for budget in [usize::MAX, 2] {
                let plan = compile(&layered, &set, &model, budget);
                let diags = verify(&plan);
                assert!(
                    diags.is_empty(),
                    "{name} seed {seed} budget {budget}: expected a clean plan, got:\n{}",
                    qsim_analyzer::render_tty(&diags)
                );
            }
        }
    }
}

#[test]
fn every_mutation_provokes_its_expected_code() {
    // qft has dense kernels, multi-injection trials, and interior
    // injection layers — every mutation finds a site on it.
    let circuit = catalog::qft(4);
    let layered = native(&circuit);
    for seed in [1u64, 2, 3] {
        let (set, model) = generate(&layered, seed);
        for &mutation in Mutation::ALL {
            let mut plan = compile(&layered, &set, &model, usize::MAX);
            assert!(mutation.apply(&mut plan), "{mutation:?} found no site on qft(4) seed {seed}");
            let diags = verify(&plan);
            let expected = mutation.expected_code();
            assert!(
                diags.iter().any(|d| d.code == expected),
                "{mutation:?} seed {seed}: expected {expected} among:\n{}",
                qsim_analyzer::render_tty(&diags)
            );
            assert!(
                qsim_analyzer::has_errors(&diags),
                "{mutation:?} seed {seed}: corruption must be an error"
            );
        }
    }
}

#[test]
fn mutations_fire_across_the_catalog_where_applicable() {
    // Broader sweep: on every catalog circuit, each applicable mutation
    // still provokes its code (some circuits offer no site for some
    // mutations — e.g. all-Clifford circuits fuse to no dense kernel).
    for (name, circuit) in catalog_circuits() {
        let layered = native(&circuit);
        let (set, model) = generate(&layered, 7);
        for &mutation in Mutation::ALL {
            let mut plan = compile(&layered, &set, &model, usize::MAX);
            if !mutation.apply(&mut plan) {
                continue;
            }
            let expected = mutation.expected_code();
            let diags = verify(&plan);
            assert!(
                diags.iter().any(|d| d.code == expected),
                "{name}: {mutation:?} expected {expected} among:\n{}",
                qsim_analyzer::render_tty(&diags)
            );
        }
    }
}

#[test]
fn empty_trial_set_is_a_warning_not_an_error() {
    let layered = catalog::ghz(3).layered().expect("layering");
    let set = TrialSet::new(layered.n_qubits(), layered.n_layers(), Vec::new());
    let plan = ExecutionPlan::compile(&layered, &set, usize::MAX);
    let diags = verify(&plan);
    assert!(diags.iter().any(|d| d.code == DiagCode::EmptyTrialSet));
    assert!(diags.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn geometry_mismatch_is_rejected() {
    let layered = catalog::ghz(3).layered().expect("layering");
    let set = TrialSet::new(layered.n_qubits() + 1, layered.n_layers(), Vec::new());
    let plan = ExecutionPlan::compile(&layered, &set, usize::MAX);
    assert!(verify(&plan).iter().any(|d| d.code == DiagCode::TrialGeometry));
}

#[test]
fn budgeted_plans_match_budgeted_cost_reports() {
    let layered = catalog::bv(5, 0b1011).layered().expect("layering");
    let (set, model) = generate(&layered, 5);
    for budget in [1usize, 2, 3, 5] {
        let plan = compile(&layered, &set, &model, budget);
        let diags = verify(&plan);
        assert!(diags.is_empty(), "budget {budget}:\n{}", qsim_analyzer::render_tty(&diags));
    }
}
