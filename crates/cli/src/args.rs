//! Hand-rolled argument parsing for the `qsim` CLI.

use std::error::Error;
use std::fmt;

/// Which subcommand to run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Print circuit characteristics (counts, depth, layers).
    Info,
    /// Transpile to a device and emit OpenQASM.
    Transpile,
    /// Static cost analysis of the reordered noisy simulation.
    Analyze,
    /// Run the noisy Monte-Carlo simulation and print the histogram.
    Run,
    /// Statically verify the compiled execution plan; no amplitudes.
    Verify,
    /// Classify circuit structure, predict per-strategy cost, recommend.
    Advise,
    /// Run with full telemetry and print the metrics report.
    Profile,
    /// Analyze a JSONL trace (or bench JSON) offline and render a report.
    Report,
    /// Benchmark history: record results, check for regressions, show.
    History(HistoryAction),
    /// Persistent semantic prefix cache: stats, garbage-collect, clear.
    Cache(CacheAction),
    /// Tail a `--live` snapshot directory as a terminal dashboard.
    Top,
}

/// Subaction of `qsim cache`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheAction {
    /// Print entry/byte/hit totals, per-layer breakdown.
    Stats,
    /// Drop dead entries and orphan snapshots; compact the manifest.
    Gc,
    /// Remove every entry and snapshot.
    Clear,
}

/// Subaction of `qsim history`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistoryAction {
    /// Append a bench JSON document to the history file.
    Record,
    /// Compare the newest record per source against its trailing window.
    Check,
    /// Print the recorded history.
    Show,
}

/// Target device connectivity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceSpec {
    /// No routing (all-to-all).
    None,
    /// IBM Q5 Yorktown bowtie.
    Yorktown,
    /// Linear chain of `n` qubits.
    Linear(usize),
    /// `rows × cols` grid.
    Grid(usize, usize),
}

/// Noise model selection.
#[derive(Clone, Debug, PartialEq)]
pub enum NoiseSpec {
    /// IBM Yorktown calibration (paper Fig. 4).
    Yorktown,
    /// Uniform `(single, two_qubit, readout)` rates.
    Uniform(f64, f64, f64),
    /// The paper's artificial model: 1q rate with 10× two-qubit/readout.
    Artificial(f64),
    /// Load a calibration file (see `qsim_noise::calibration`).
    File(String),
}

/// Parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub struct Options {
    /// Subcommand.
    pub command: Command,
    /// Input path (`-` = stdin).
    pub input: String,
    /// Device for transpilation.
    pub device: DeviceSpec,
    /// Noise model (`analyze`/`run`).
    pub noise: NoiseSpec,
    /// Monte-Carlo trials.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for `run` (0 = all cores, 1 = sequential).
    pub threads: usize,
    /// Stored-state budget (`usize::MAX` = unbounded).
    pub budget: usize,
    /// Run the baseline strategy instead of the reordered one.
    pub baseline: bool,
    /// Skip transpilation entirely (input is already device-native).
    pub no_transpile: bool,
    /// Write the generated trial set to this path.
    pub save_trials: Option<String>,
    /// Replay a previously saved trial set instead of generating.
    pub load_trials: Option<String>,
    /// Use compressed at-rest frontiers for the reordered run.
    pub compressed: bool,
    /// Explicit execution strategy for `run` (`None` = reordered reuse,
    /// or whatever `--baseline`/`--compressed` select).
    pub strategy: Option<String>,
    /// Layer scheduling: ALAP instead of the default ASAP.
    pub alap: bool,
    /// Emit machine-readable JSON instead of the human report (`verify`).
    pub json: bool,
    /// Stream a JSONL telemetry trace to this path (`run`/`profile`).
    pub trace: Option<String>,
    /// Write folded stacks for flamegraph tooling to this path (`profile`).
    pub folded: Option<String>,
    /// Write a self-contained HTML report to this path (`report`).
    pub html: Option<String>,
    /// Compare the input against this earlier trace/bench file (`report`).
    pub against: Option<String>,
    /// Benchmark history file (`history`).
    pub history_path: String,
    /// Regression threshold in percent (`history check`).
    pub threshold: f64,
    /// Trailing baseline window size (`history check`).
    pub window: usize,
    /// Exit nonzero when `history check` flags a regression.
    pub fail: bool,
    /// Semantic prefix cache directory (`run`/`profile` opt in; `cache`
    /// subcommand default `.qsim-cache`).
    pub cache: Option<String>,
    /// Cache size budget in bytes (0 = unbounded).
    pub cache_budget: u64,
    /// Publish live snapshots into this directory (`run`/`profile`).
    pub live: Option<String>,
    /// Live snapshot publish interval in milliseconds.
    pub live_interval_ms: u64,
    /// Render one frame and exit (`top`).
    pub once: bool,
}

/// CLI parsing/validation failure; carries a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for CliError {}

/// Usage text printed on `--help` or bad invocations.
pub const USAGE: &str = "\
qsim — noisy quantum-circuit simulation with Monte-Carlo trial reordering

USAGE:
    qsim <COMMAND> <FILE.qasm | -> [OPTIONS]

COMMANDS:
    info        circuit characteristics (gate counts, depth, layers)
    transpile   lower to a device and print OpenQASM
    analyze     static cost analysis (ops saved, MSVs) — no amplitudes
    run         noisy Monte-Carlo simulation; prints the outcome histogram
    verify      prove the compiled plan sound (schedule, fusion, trials)
    advise      rank execution strategies by predicted cost — no amplitudes
    profile     run with full telemetry; prints Prometheus/JSON metrics
    report      analyze a JSONL trace (or bench JSON) offline; TTY/JSON/HTML
    history     benchmark history: record <BENCH.json> | check | show
    cache       semantic prefix cache: stats | gc | clear
    top         tail a --live snapshot directory as a terminal dashboard

OPTIONS:
    --device <none|yorktown|linear:N|grid:RxC>   connectivity  [default: yorktown]
    --noise <yorktown|uniform:P1,P2,PM|artificial:P|file:PATH>  error model [default: yorktown]
    --trials <N>        Monte-Carlo trials                [default: 4096]
    --seed <N>          RNG seed                          [default: 2020]
    --threads <N>       worker threads (0 = all cores)    [default: 1]
    --budget <N>        stored-state cap (0 = unbounded)  [default: 0]
    --baseline          run the unoptimized baseline executor
    --no-transpile      input is already device-native; skip lowering
    --save-trials <P>   write the generated trial set to a file
    --load-trials <P>   replay a saved trial set (ignores --trials/--seed)
    --compressed        store cached frontiers in zero-elided sparse form
    --strategy <S>      execution strategy for run: reuse | tree (batched
                        sibling-frontier sweeps; bitwise-identical outcomes)
    --alap              schedule layers as-late-as-possible (moves idle errors)
    --json              machine-readable output (verify, advise, report)
    --trace <P>         stream a JSONL telemetry trace to a file (run, profile)
    --folded <P>        write folded stacks for flamegraphs (profile)
    --html <P>          write a self-contained HTML report (report)
    --against <P>       diff the input against an earlier trace/bench (report)
    --history <P>       history file                      [default: results/history.jsonl]
    --threshold <PCT>   regression threshold, e.g. 5%     [default: 5%]
    --window <N>        trailing baseline window          [default: 5]
    --fail              exit nonzero when history check flags a regression
    --cache <DIR>       persistent prefix cache directory (run, profile, cache)
    --cache-budget <B>  cache size cap in bytes (0 = unbounded)  [default: 0]
    --live <DIR>        publish live progress snapshots to a directory (run, profile)
    --live-interval <MS>  live snapshot publish interval    [default: 200]
    --once              render a single frame and exit (top)
";

impl Options {
    /// Parse raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] with a message suitable for direct printing.
    pub fn parse(args: &[String]) -> Result<Options, CliError> {
        if args.iter().any(|a| a == "--help" || a == "-h") {
            return Err(CliError(USAGE.to_owned()));
        }
        let mut positional = Vec::new();
        let mut opts = Options {
            command: Command::Info,
            input: String::new(),
            device: DeviceSpec::Yorktown,
            noise: NoiseSpec::Yorktown,
            trials: 4096,
            seed: 2020,
            threads: 1,
            budget: usize::MAX,
            baseline: false,
            no_transpile: false,
            save_trials: None,
            load_trials: None,
            compressed: false,
            strategy: None,
            alap: false,
            json: false,
            trace: None,
            folded: None,
            html: None,
            against: None,
            history_path: "results/history.jsonl".to_owned(),
            threshold: 5.0,
            window: 5,
            fail: false,
            cache: None,
            cache_budget: 0,
            live: None,
            live_interval_ms: 200,
            once: false,
        };
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            match arg.as_str() {
                "--baseline" => opts.baseline = true,
                "--no-transpile" => opts.no_transpile = true,
                "--compressed" => opts.compressed = true,
                "--alap" => opts.alap = true,
                "--json" => opts.json = true,
                "--fail" => opts.fail = true,
                "--once" => opts.once = true,
                "--device" | "--noise" | "--trials" | "--seed" | "--threads" | "--budget"
                | "--save-trials" | "--load-trials" | "--trace" | "--folded" | "--html"
                | "--against" | "--history" | "--threshold" | "--window" | "--cache"
                | "--cache-budget" | "--live" | "--live-interval" | "--strategy" => {
                    let value =
                        args.get(i + 1).ok_or_else(|| CliError(format!("{arg} needs a value")))?;
                    match arg.as_str() {
                        "--device" => opts.device = parse_device(value)?,
                        "--noise" => opts.noise = parse_noise(value)?,
                        "--trials" => opts.trials = parse_num(value, arg)?,
                        "--seed" => opts.seed = parse_num(value, arg)?,
                        "--threads" => opts.threads = parse_num(value, arg)?,
                        "--budget" => {
                            let b: usize = parse_num(value, arg)?;
                            opts.budget = if b == 0 { usize::MAX } else { b };
                        }
                        "--save-trials" => opts.save_trials = Some(value.clone()),
                        "--load-trials" => opts.load_trials = Some(value.clone()),
                        "--trace" => opts.trace = Some(value.clone()),
                        "--folded" => opts.folded = Some(value.clone()),
                        "--html" => opts.html = Some(value.clone()),
                        "--against" => opts.against = Some(value.clone()),
                        "--history" => opts.history_path = value.clone(),
                        "--threshold" => {
                            opts.threshold = parse_num(value.trim_end_matches('%'), "--threshold")?;
                        }
                        "--window" => opts.window = parse_num(value, arg)?,
                        "--cache" => opts.cache = Some(value.clone()),
                        "--cache-budget" => opts.cache_budget = parse_num(value, arg)?,
                        "--live" => opts.live = Some(value.clone()),
                        "--live-interval" => opts.live_interval_ms = parse_num(value, arg)?,
                        "--strategy" => {
                            if !matches!(value.as_str(), "reuse" | "tree") {
                                return Err(CliError(format!(
                                    "unknown strategy {value:?} (reuse, tree)"
                                )));
                            }
                            opts.strategy = Some(value.clone());
                        }
                        _ => unreachable!(),
                    }
                    i += 1;
                }
                other if other.starts_with("--") => {
                    return Err(CliError(format!("unknown option {other}\n\n{USAGE}")));
                }
                other => positional.push(other.to_owned()),
            }
            i += 1;
        }
        let mut positional = positional.into_iter();
        let command =
            positional.next().ok_or_else(|| CliError(format!("missing command\n\n{USAGE}")))?;
        opts.command = match command.as_str() {
            "info" => Command::Info,
            "transpile" => Command::Transpile,
            "analyze" => Command::Analyze,
            "run" => Command::Run,
            "verify" => Command::Verify,
            "advise" => Command::Advise,
            "profile" => Command::Profile,
            "report" => Command::Report,
            "history" => {
                let action = positional.next().ok_or_else(|| {
                    CliError(format!("history needs record|check|show\n\n{USAGE}"))
                })?;
                match action.as_str() {
                    "record" => Command::History(HistoryAction::Record),
                    "check" => Command::History(HistoryAction::Check),
                    "show" => Command::History(HistoryAction::Show),
                    other => {
                        return Err(CliError(format!(
                            "unknown history action {other} (record, check, show)"
                        )))
                    }
                }
            }
            "cache" => {
                let action = positional
                    .next()
                    .ok_or_else(|| CliError(format!("cache needs stats|gc|clear\n\n{USAGE}")))?;
                match action.as_str() {
                    "stats" => Command::Cache(CacheAction::Stats),
                    "gc" => Command::Cache(CacheAction::Gc),
                    "clear" => Command::Cache(CacheAction::Clear),
                    other => {
                        return Err(CliError(format!(
                            "unknown cache action {other} (stats, gc, clear)"
                        )))
                    }
                }
            }
            "top" => Command::Top,
            other => return Err(CliError(format!("unknown command {other}\n\n{USAGE}"))),
        };
        // `history check`/`history show` and the cache subcommand operate
        // on their own files, not a circuit.
        let needs_input = !matches!(
            opts.command,
            Command::History(HistoryAction::Check | HistoryAction::Show) | Command::Cache(_)
        );
        if needs_input {
            opts.input = positional
                .next()
                .ok_or_else(|| CliError(format!("missing input file\n\n{USAGE}")))?;
        }
        if let Some(extra) = positional.next() {
            return Err(CliError(format!("unexpected argument {extra}")));
        }
        Ok(opts)
    }
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, CliError>
where
    T::Err: fmt::Display,
{
    value.parse().map_err(|e| CliError(format!("invalid value for {flag}: {e}")))
}

fn parse_device(value: &str) -> Result<DeviceSpec, CliError> {
    if value == "none" {
        return Ok(DeviceSpec::None);
    }
    if value == "yorktown" {
        return Ok(DeviceSpec::Yorktown);
    }
    if let Some(n) = value.strip_prefix("linear:") {
        return Ok(DeviceSpec::Linear(parse_num(n, "--device linear")?));
    }
    if let Some(shape) = value.strip_prefix("grid:") {
        let (rows, cols) = shape
            .split_once('x')
            .ok_or_else(|| CliError("grid device needs RxC, e.g. grid:2x3".to_owned()))?;
        return Ok(DeviceSpec::Grid(
            parse_num(rows, "--device grid rows")?,
            parse_num(cols, "--device grid cols")?,
        ));
    }
    Err(CliError(format!("unknown device {value:?} (none, yorktown, linear:N, grid:RxC)")))
}

fn parse_noise(value: &str) -> Result<NoiseSpec, CliError> {
    if value == "yorktown" {
        return Ok(NoiseSpec::Yorktown);
    }
    if let Some(rates) = value.strip_prefix("uniform:") {
        let parts: Vec<&str> = rates.split(',').collect();
        if parts.len() != 3 {
            return Err(CliError("uniform noise needs P1,P2,PM".to_owned()));
        }
        return Ok(NoiseSpec::Uniform(
            parse_num(parts[0], "--noise uniform P1")?,
            parse_num(parts[1], "--noise uniform P2")?,
            parse_num(parts[2], "--noise uniform PM")?,
        ));
    }
    if let Some(rate) = value.strip_prefix("artificial:") {
        return Ok(NoiseSpec::Artificial(parse_num(rate, "--noise artificial")?));
    }
    if let Some(path) = value.strip_prefix("file:") {
        return Ok(NoiseSpec::File(path.to_owned()));
    }
    Err(CliError(format!(
        "unknown noise model {value:?} (yorktown, uniform:P1,P2,PM, artificial:P, file:PATH)"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<Options, CliError> {
        let args: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        Options::parse(&args)
    }

    #[test]
    fn parses_minimal_invocation() {
        let opts = parse(&["info", "foo.qasm"]).unwrap();
        assert_eq!(opts.command, Command::Info);
        assert_eq!(opts.input, "foo.qasm");
        assert_eq!(opts.trials, 4096);
        assert_eq!(opts.budget, usize::MAX);
    }

    #[test]
    fn parses_full_run() {
        let opts = parse(&[
            "run",
            "bell.qasm",
            "--trials",
            "1000",
            "--seed",
            "7",
            "--threads",
            "0",
            "--budget",
            "3",
            "--baseline",
            "--device",
            "linear:6",
            "--noise",
            "uniform:1e-3,1e-2,2e-2",
        ])
        .unwrap();
        assert_eq!(opts.command, Command::Run);
        assert_eq!(opts.trials, 1000);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.threads, 0);
        assert_eq!(opts.budget, 3);
        assert!(opts.baseline);
        assert_eq!(opts.device, DeviceSpec::Linear(6));
        assert_eq!(opts.noise, NoiseSpec::Uniform(1e-3, 1e-2, 2e-2));
    }

    #[test]
    fn parses_verify() {
        let opts = parse(&["verify", "f.qasm", "--json", "--trials", "64"]).unwrap();
        assert_eq!(opts.command, Command::Verify);
        assert!(opts.json);
        assert_eq!(opts.trials, 64);
        assert!(!parse(&["run", "f.qasm"]).unwrap().json);
    }

    #[test]
    fn parses_advise() {
        let opts = parse(&["advise", "f.qasm", "--json", "--budget", "2"]).unwrap();
        assert_eq!(opts.command, Command::Advise);
        assert!(opts.json);
        assert_eq!(opts.budget, 2);
        assert!(parse(&["advise"]).is_err());
    }

    #[test]
    fn parses_profile_with_trace_and_folded() {
        let opts = parse(&[
            "profile",
            "f.qasm",
            "--trace",
            "/tmp/t.jsonl",
            "--folded",
            "/tmp/t.folded",
            "--trials",
            "64",
        ])
        .unwrap();
        assert_eq!(opts.command, Command::Profile);
        assert_eq!(opts.trace.as_deref(), Some("/tmp/t.jsonl"));
        assert_eq!(opts.folded.as_deref(), Some("/tmp/t.folded"));
        // Both flags default to off and need a value when given.
        let plain = parse(&["run", "f.qasm"]).unwrap();
        assert_eq!(plain.trace, None);
        assert_eq!(plain.folded, None);
        assert!(parse(&["run", "f.qasm", "--trace"]).is_err());
    }

    #[test]
    fn budget_zero_means_unbounded() {
        let opts = parse(&["analyze", "f.qasm", "--budget", "0"]).unwrap();
        assert_eq!(opts.budget, usize::MAX);
    }

    #[test]
    fn device_and_noise_variants() {
        assert_eq!(
            parse(&["info", "f", "--device", "grid:2x3"]).unwrap().device,
            DeviceSpec::Grid(2, 3)
        );
        assert_eq!(parse(&["info", "f", "--device", "none"]).unwrap().device, DeviceSpec::None);
        assert_eq!(
            parse(&["info", "f", "--noise", "artificial:1e-4"]).unwrap().noise,
            NoiseSpec::Artificial(1e-4)
        );
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["info"]).is_err());
        assert!(parse(&["frobnicate", "f.qasm"]).is_err());
        assert!(parse(&["info", "f.qasm", "--bogus"]).is_err());
        assert!(parse(&["info", "f.qasm", "extra"]).is_err());
        assert!(parse(&["info", "f", "--trials"]).is_err());
        assert!(parse(&["info", "f", "--trials", "many"]).is_err());
        assert!(parse(&["info", "f", "--device", "torus"]).is_err());
        assert!(parse(&["info", "f", "--noise", "uniform:1e-3"]).is_err());
        assert!(parse(&["info", "f", "--device", "grid:9"]).is_err());
    }

    #[test]
    fn parses_report_with_outputs() {
        let opts = parse(&[
            "report",
            "trace.jsonl",
            "--html",
            "/tmp/r.html",
            "--against",
            "old.jsonl",
            "--json",
        ])
        .unwrap();
        assert_eq!(opts.command, Command::Report);
        assert_eq!(opts.input, "trace.jsonl");
        assert_eq!(opts.html.as_deref(), Some("/tmp/r.html"));
        assert_eq!(opts.against.as_deref(), Some("old.jsonl"));
        assert!(opts.json);
        assert!(parse(&["report"]).is_err());
    }

    #[test]
    fn parses_history_actions() {
        let opts = parse(&["history", "record", "BENCH_fusion.json"]).unwrap();
        assert_eq!(opts.command, Command::History(HistoryAction::Record));
        assert_eq!(opts.input, "BENCH_fusion.json");
        assert_eq!(opts.history_path, "results/history.jsonl");

        let opts = parse(&[
            "history",
            "check",
            "--threshold",
            "7.5%",
            "--window",
            "3",
            "--fail",
            "--history",
            "h.jsonl",
        ])
        .unwrap();
        assert_eq!(opts.command, Command::History(HistoryAction::Check));
        assert_eq!(opts.threshold, 7.5);
        assert_eq!(opts.window, 3);
        assert!(opts.fail);
        assert_eq!(opts.history_path, "h.jsonl");
        // Bare percentages parse too, and the default is warn-only.
        let opts = parse(&["history", "check", "--threshold", "5"]).unwrap();
        assert_eq!(opts.threshold, 5.0);
        assert!(!opts.fail);

        assert_eq!(
            parse(&["history", "show"]).unwrap().command,
            Command::History(HistoryAction::Show)
        );
        assert!(parse(&["history"]).is_err());
        assert!(parse(&["history", "frob"]).is_err());
        assert!(parse(&["history", "record"]).is_err());
    }

    #[test]
    fn parses_cache_actions() {
        let opts = parse(&["cache", "stats", "--cache", "/tmp/c", "--json"]).unwrap();
        assert_eq!(opts.command, Command::Cache(CacheAction::Stats));
        assert_eq!(opts.cache.as_deref(), Some("/tmp/c"));
        assert!(opts.json);

        let opts = parse(&["cache", "gc", "--cache-budget", "1048576"]).unwrap();
        assert_eq!(opts.command, Command::Cache(CacheAction::Gc));
        assert_eq!(opts.cache, None, "directory defaults downstream");
        assert_eq!(opts.cache_budget, 1_048_576);

        assert_eq!(parse(&["cache", "clear"]).unwrap().command, Command::Cache(CacheAction::Clear));
        assert!(parse(&["cache"]).is_err());
        assert!(parse(&["cache", "frob"]).is_err());
        assert!(parse(&["cache", "stats", "extra"]).is_err());
        assert!(parse(&["cache", "stats", "--cache"]).is_err());
        assert!(parse(&["cache", "stats", "--cache-budget", "lots"]).is_err());
    }

    #[test]
    fn parses_run_with_cache() {
        let opts =
            parse(&["run", "f.qasm", "--cache", ".qsim-cache", "--cache-budget", "0"]).unwrap();
        assert_eq!(opts.command, Command::Run);
        assert_eq!(opts.cache.as_deref(), Some(".qsim-cache"));
        assert_eq!(opts.cache_budget, 0);
        assert_eq!(parse(&["run", "f.qasm"]).unwrap().cache, None);
    }

    #[test]
    fn parses_strategy() {
        let opts = parse(&["run", "f.qasm", "--strategy", "tree"]).unwrap();
        assert_eq!(opts.strategy.as_deref(), Some("tree"));
        assert_eq!(
            parse(&["run", "f.qasm", "--strategy", "reuse"]).unwrap().strategy.as_deref(),
            Some("reuse")
        );
        assert_eq!(parse(&["run", "f.qasm"]).unwrap().strategy, None);
        assert!(parse(&["run", "f.qasm", "--strategy"]).is_err());
        assert!(parse(&["run", "f.qasm", "--strategy", "frobnicate"]).is_err());
    }

    #[test]
    fn parses_live_options() {
        let opts =
            parse(&["profile", "f.qasm", "--live", "live-out", "--live-interval", "50"]).unwrap();
        assert_eq!(opts.live.as_deref(), Some("live-out"));
        assert_eq!(opts.live_interval_ms, 50);
        let plain = parse(&["run", "f.qasm"]).unwrap();
        assert_eq!(plain.live, None);
        assert_eq!(plain.live_interval_ms, 200);
        assert!(parse(&["run", "f.qasm", "--live"]).is_err());
        assert!(parse(&["run", "f.qasm", "--live-interval", "soon"]).is_err());
    }

    #[test]
    fn parses_top() {
        let opts = parse(&["top", "live-out", "--once", "--json"]).unwrap();
        assert_eq!(opts.command, Command::Top);
        assert_eq!(opts.input, "live-out");
        assert!(opts.once);
        assert!(opts.json);
        assert!(!parse(&["top", "live-out"]).unwrap().once);
        assert!(parse(&["top"]).is_err(), "top needs a directory or file");
    }

    #[test]
    fn help_returns_usage() {
        let err = parse(&["--help"]).unwrap_err();
        assert!(err.to_string().contains("USAGE"));
    }
}
