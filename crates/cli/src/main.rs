//! `qsim` — noisy quantum-circuit simulation with Monte-Carlo trial
//! reordering, on the command line.

use std::process::ExitCode;

use noisy_qsim_cli::{execute, Options};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Options::parse(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut stdout = std::io::stdout().lock();
    match execute(&opts, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("qsim: {e}");
            ExitCode::FAILURE
        }
    }
}
