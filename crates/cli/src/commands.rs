//! Command implementations for the `qsim` CLI. Each writes human-readable
//! output to the given writer, so tests can capture it.

use std::io::{Read, Write};

use qsim_circuit::transpile::{transpile, TranspileOptions};
use qsim_circuit::{to_qasm, Circuit, CouplingMap};
use qsim_noise::NoiseModel;
use qsim_observatory::{ExpectedStats, LiveView};
use qsim_telemetry::{
    AggregatingRecorder, JsonlRecorder, LivePublisher, MetricsReport, NullRecorder, Recorder,
    TeeRecorder, TraceMeta,
};
use redsim::{ExecStats, RunResult, Simulation};
use redsim_msvstore::MsvStore;

use crate::args::{CacheAction, CliError, Command, DeviceSpec, HistoryAction, NoiseSpec, Options};

/// Execute a parsed invocation, writing the report to `out`.
///
/// # Errors
///
/// Returns [`CliError`] with a printable message for I/O, parse, compile,
/// model, or execution failures.
pub fn execute(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    // Offline commands work on trace/bench/history files, not circuits.
    match opts.command {
        Command::Report => return report(opts, out),
        Command::History(action) => return history(opts, action, out),
        Command::Cache(action) => return cache_cmd(opts, action, out),
        Command::Top => return top(opts, out),
        _ => {}
    }
    let circuit = if opts.input == "-" {
        let source = read_input(&opts.input)?;
        qsim_qasm::parse(&source).map_err(|e| CliError(format!("<stdin>: {e}")))?
    } else {
        // File parsing resolves includes relative to the file.
        qsim_qasm::parse_file(&opts.input).map_err(|e| CliError(format!("{}: {e}", opts.input)))?
    };
    let prepared = prepare(&circuit, opts)?;
    match opts.command {
        Command::Info => info(&circuit, &prepared, out),
        Command::Transpile => {
            writeln!(out, "{}", to_qasm(&prepared)).map_err(io_err)?;
            Ok(())
        }
        Command::Analyze => analyze(&prepared, opts, out),
        Command::Run => run(&prepared, opts, out),
        Command::Verify => verify(&prepared, opts, out),
        Command::Advise => advise(&prepared, opts, out),
        Command::Profile => profile(&prepared, opts, out),
        Command::Report | Command::History(_) | Command::Cache(_) | Command::Top => {
            unreachable!("offline commands return before circuit parsing")
        }
    }
}

// A `map_err` adapter, so it takes the error by value like `map_err` hands
// it over.
#[allow(clippy::needless_pass_by_value)]
fn io_err(e: std::io::Error) -> CliError {
    CliError(format!("i/o failure: {e}"))
}

fn read_input(path: &str) -> Result<String, CliError> {
    if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| CliError(format!("stdin: {e}")))?;
        Ok(buffer)
    } else {
        std::fs::read_to_string(path).map_err(|e| CliError(format!("{path}: {e}")))
    }
}

fn coupling(device: &DeviceSpec) -> Option<CouplingMap> {
    match device {
        DeviceSpec::None => None,
        DeviceSpec::Yorktown => Some(CouplingMap::yorktown()),
        DeviceSpec::Linear(n) => Some(CouplingMap::linear(*n)),
        DeviceSpec::Grid(r, c) => Some(CouplingMap::grid(*r, *c)),
    }
}

fn prepare(circuit: &Circuit, opts: &Options) -> Result<Circuit, CliError> {
    if opts.no_transpile {
        return Ok(circuit.clone());
    }
    let options = TranspileOptions {
        coupling: coupling(&opts.device),
        fuse_single_qubit: true,
        cancel_cx: true,
        commute_rotations: true,
    };
    let lowered = transpile(circuit, &options).map_err(|e| CliError(format!("transpile: {e}")))?;
    Ok(lowered.circuit)
}

fn model_for(circuit: &Circuit, noise: &NoiseSpec) -> Result<NoiseModel, CliError> {
    let n = circuit.n_qubits();
    match noise {
        NoiseSpec::Yorktown => {
            if n > 5 {
                return Err(CliError(format!(
                    "the Yorktown model covers 5 qubits but the circuit uses {n}; pick --noise uniform/artificial"
                )));
            }
            Ok(NoiseModel::ibm_yorktown())
        }
        NoiseSpec::Uniform(p1, p2, pm) => {
            NoiseModel::try_uniform(n, *p1, *p2, *pm).map_err(|e| CliError(e.to_string()))
        }
        NoiseSpec::Artificial(p1) => NoiseModel::try_uniform(n, *p1, p1 * 10.0, p1 * 10.0)
            .map_err(|e| CliError(e.to_string())),
        NoiseSpec::File(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| CliError(format!("{path}: {e}")))?;
            let model = qsim_noise::calibration::parse(&text)
                .map_err(|e| CliError(format!("{path}: {e}")))?;
            if model.n_qubits() < n {
                return Err(CliError(format!(
                    "calibration covers {} qubits but the circuit uses {n}",
                    model.n_qubits()
                )));
            }
            Ok(model)
        }
    }
}

fn info(original: &Circuit, prepared: &Circuit, out: &mut dyn Write) -> Result<(), CliError> {
    let layered = prepared.layered().map_err(|e| CliError(format!("layering: {e}")))?;
    let before = original.counts();
    let after = prepared.counts();
    writeln!(out, "parsed:     {original}").map_err(io_err)?;
    writeln!(out, "prepared:   {prepared}").map_err(io_err)?;
    writeln!(
        out,
        "gates:      {} single, {} cnot, {} other (from {} / {} / {})",
        after.single, after.cnot, after.other_multi, before.single, before.cnot, before.other_multi
    )
    .map_err(io_err)?;
    writeln!(out, "layers:     {}", layered.n_layers()).map_err(io_err)?;
    writeln!(out, "measure:    {} qubits", after.measure).map_err(io_err)?;
    Ok(())
}

fn simulation(prepared: &Circuit, opts: &Options) -> Result<Simulation, CliError> {
    let model = model_for(prepared, &opts.noise)?;
    let strategy = if opts.alap {
        qsim_circuit::LayeringStrategy::Alap
    } else {
        qsim_circuit::LayeringStrategy::Asap
    };
    let layered =
        prepared.layered_with(strategy).map_err(|e| CliError(format!("layering: {e}")))?;
    let mut sim =
        Simulation::new(layered, model).map_err(|e| CliError(format!("simulation setup: {e}")))?;
    if let Some(path) = &opts.load_trials {
        let text = std::fs::read_to_string(path).map_err(|e| CliError(format!("{path}: {e}")))?;
        let set =
            qsim_noise::trial_io::parse(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
        sim.set_trials(set).map_err(|e| CliError(format!("{path}: {e}")))?;
    } else {
        sim.generate_trials(opts.trials, opts.seed)
            .map_err(|e| CliError(format!("trial generation: {e}")))?;
    }
    if let Some(path) = &opts.save_trials {
        let set = sim.trials().expect("trials just prepared");
        std::fs::write(path, qsim_noise::trial_io::emit(set))
            .map_err(|e| CliError(format!("{path}: {e}")))?;
    }
    Ok(sim)
}

fn analyze(prepared: &Circuit, opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let sim = simulation(prepared, opts)?;
    let report =
        sim.analyze_with_budget(opts.budget).map_err(|e| CliError(format!("analysis: {e}")))?;
    writeln!(out, "{report}").map_err(io_err)?;
    writeln!(
        out,
        "normalized computation: {:.4} (saving {:.1}%)",
        report.normalized_computation(),
        100.0 * report.savings()
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "maintained state vectors: {} (path policy: {})",
        report.msv_peak, report.msv_path_peak
    )
    .map_err(io_err)?;
    Ok(())
}

/// Compile the analyzer plan for this invocation — the single shared
/// entry point for `verify` and `advise`, so each command compiles the
/// fused program exactly once (tracked by the `plan.fuse_compile`
/// telemetry counter).
fn compiled_plan<'a>(
    sim: &'a Simulation,
    opts: &Options,
) -> Result<qsim_analyzer::ExecutionPlan<'a>, CliError> {
    let set = sim.trials().expect("trials just prepared");
    let report =
        sim.analyze_with_budget(opts.budget).map_err(|e| CliError(format!("analysis: {e}")))?;
    let mut plan = qsim_analyzer::ExecutionPlan::compile(sim.layered(), set, opts.budget)
        .with_expectations(qsim_analyzer::PlanExpectations {
            baseline_ops: report.baseline_ops,
            optimized_ops: report.optimized_ops,
            msv_peak: report.msv_peak,
        })
        .with_model(sim.model().clone());
    if let Some(map) = coupling(&opts.device) {
        plan = plan.with_coupling(map);
    }
    Ok(plan)
}

fn verify(prepared: &Circuit, opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let sim = simulation(prepared, opts)?;
    let plan = compiled_plan(&sim, opts)?;
    let set = sim.trials().expect("trials just prepared");
    let diagnostics = qsim_analyzer::verify(&plan);
    if opts.json {
        let json = serde_json::to_string(&diagnostics)
            .map_err(|e| CliError(format!("serializing diagnostics: {e}")))?;
        writeln!(out, "{json}").map_err(io_err)?;
    } else if diagnostics.is_empty() {
        writeln!(
            out,
            "plan verified: {} trials over {} layers, {} schedule ops, no diagnostics",
            set.trials().len(),
            sim.layered().n_layers(),
            plan.schedule.len()
        )
        .map_err(io_err)?;
    } else {
        writeln!(out, "{}", qsim_analyzer::render_tty(&diagnostics)).map_err(io_err)?;
    }
    if qsim_analyzer::has_errors(&diagnostics) {
        let errors =
            diagnostics.iter().filter(|d| d.severity == qsim_analyzer::Severity::Error).count();
        return Err(CliError(format!("plan verification failed with {errors} error(s)")));
    }
    Ok(())
}

/// The strategy the flag combination declares, for the advisor's
/// suboptimal-strategy lint (`--baseline` runs the fused program).
fn declared_strategy(opts: &Options) -> qsim_analyzer::Strategy {
    if opts.baseline {
        qsim_analyzer::Strategy::Fused
    } else if opts.compressed {
        qsim_analyzer::Strategy::Compressed
    } else if wants_tree(opts) {
        qsim_analyzer::Strategy::Tree
    } else {
        qsim_analyzer::Strategy::Reuse
    }
}

/// Whether the flags select the batched tree executor.
fn wants_tree(opts: &Options) -> bool {
    opts.strategy.as_deref() == Some("tree")
}

fn advise(prepared: &Circuit, opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let sim = simulation(prepared, opts)?;
    let plan = compiled_plan(&sim, opts)?;
    let advice = qsim_analyzer::advise(&plan);
    let plan = plan.with_strategy(declared_strategy(opts)).with_advice(advice);
    let diagnostics = qsim_analyzer::verify(&plan);
    let advice = plan.advice.as_ref().expect("advice just attached");
    let best = advice.best_executable();

    if opts.json {
        let advice_json = serde_json::to_string(advice)
            .map_err(|e| CliError(format!("serializing advice: {e}")))?;
        let diags_json = serde_json::to_string(&diagnostics)
            .map_err(|e| CliError(format!("serializing diagnostics: {e}")))?;
        writeln!(
            out,
            "{{\"advice\":{advice_json},\"recommended\":\"{}\",\"diagnostics\":{diags_json}}}",
            best.strategy
        )
        .map_err(io_err)?;
    } else {
        let tally = |class| advice.segments.iter().filter(|s| s.class == class).count();
        writeln!(
            out,
            "segments:    {} — {} identity, {} diagonal, {} permutation, {} clifford, {} general ({} clifford in total)",
            advice.segments.len(),
            tally(qsim_analyzer::SegmentClass::Identity),
            tally(qsim_analyzer::SegmentClass::Diagonal),
            tally(qsim_analyzer::SegmentClass::Permutation),
            tally(qsim_analyzer::SegmentClass::Clifford),
            tally(qsim_analyzer::SegmentClass::General),
            advice.segments.iter().filter(|s| s.clifford).count(),
        )
        .map_err(io_err)?;
        writeln!(
            out,
            "frames:      {}/{} distinct injections commute through their suffix; {}/{} trials fully trackable ({:.1}%)",
            advice.verdicts.iter().filter(|v| v.trackable).count(),
            advice.verdicts.len(),
            advice.trackable_trials,
            advice.n_trials,
            100.0 * advice.trackable_fraction(),
        )
        .map_err(io_err)?;
        writeln!(out).map_err(io_err)?;
        writeln!(
            out,
            "  {:<16} {:>14} {:>14} {:>14} {:>5} {:>12}",
            "strategy", "passes", "ops", "fused_ops", "msv", "updates"
        )
        .map_err(io_err)?;
        let n_qubits = sim.layered().n_qubits();
        for p in &advice.predictions {
            let marker = if p.strategy == best.strategy { '>' } else { ' ' };
            let name = if p.strategy.executable() {
                p.strategy.name().to_owned()
            } else {
                format!("{}*", p.strategy)
            };
            writeln!(
                out,
                "{marker} {name:<16} {:>14} {:>14} {:>14} {:>5} {:>12.3e}",
                p.amplitude_passes,
                p.ops,
                p.fused_ops,
                p.msv_peak,
                p.amplitude_updates(n_qubits),
            )
            .map_err(io_err)?;
        }
        if advice.predictions.iter().any(|p| !p.strategy.executable()) {
            writeln!(out, "  (* predicted only; no executor ships yet)").map_err(io_err)?;
        }
        let declared = advice
            .prediction(declared_strategy(opts))
            .expect("declared strategies are always ranked");
        write!(out, "\nrecommended: {}", best.strategy).map_err(io_err)?;
        if best.amplitude_passes < declared.amplitude_passes {
            writeln!(
                out,
                " — saves {:.1}% of amplitude passes vs the selected {}",
                100.0 * (1.0 - best.amplitude_passes as f64 / declared.amplitude_passes as f64),
                declared.strategy,
            )
            .map_err(io_err)?;
        } else {
            writeln!(out, " (the selected {} is already optimal)", declared.strategy)
                .map_err(io_err)?;
        }
        if !diagnostics.is_empty() {
            writeln!(out, "\n{}", qsim_analyzer::render_tty(&diagnostics)).map_err(io_err)?;
        }
    }
    if qsim_analyzer::has_errors(&diagnostics) {
        let errors =
            diagnostics.iter().filter(|d| d.severity == qsim_analyzer::Severity::Error).count();
        return Err(CliError(format!("advisor cross-check failed with {errors} error(s)")));
    }
    Ok(())
}

/// The strategy name the flag combination selects; recorded in the trace
/// meta header so offline analysis knows what it is looking at.
fn strategy_name(opts: &Options) -> &'static str {
    if opts.cache.is_some() && !opts.baseline && !opts.compressed {
        "reuse-cached"
    } else if wants_tree(opts) {
        "tree"
    } else if opts.baseline {
        if opts.threads == 1 {
            "baseline"
        } else {
            "parallel-baseline"
        }
    } else if opts.compressed {
        "compressed"
    } else if opts.budget != usize::MAX {
        "reuse-budget"
    } else if opts.threads == 1 {
        "reuse"
    } else {
        "parallel-reuse"
    }
}

/// Run-metadata header for a `--trace` file.
fn trace_meta(sim: &Simulation, opts: &Options) -> TraceMeta {
    TraceMeta {
        git_rev: qsim_observatory::git_rev(),
        seed: opts.seed,
        qubits: sim.layered().n_qubits() as u64,
        strategy: strategy_name(opts).to_owned(),
    }
}

/// Build the `--live` snapshot publisher for this run, when requested.
fn live_publisher(sim: &Simulation, opts: &Options) -> Result<Option<LivePublisher>, CliError> {
    let Some(dir) = &opts.live else { return Ok(None) };
    let trials_total = sim.trials().expect("trials just prepared").trials().len() as u64;
    let interval_ns = opts.live_interval_ms.saturating_mul(1_000_000);
    LivePublisher::create(
        std::path::Path::new(dir),
        &trace_meta(sim, opts),
        trials_total,
        interval_ns,
    )
    .map(Some)
    .map_err(|e| CliError(format!("{dir}: live publisher: {e}")))
}

/// Post-run reconciliation of the published `live.json` against the
/// executor's own counters: flush the final snapshot, read it back from
/// disk, and fail loudly on any drift — the live plane's exactness gate.
fn finalize_live(
    publisher: &LivePublisher,
    opts: &Options,
    stats: &ExecStats,
) -> Result<(), CliError> {
    let dir = opts.live.as_deref().unwrap_or(".");
    Recorder::flush(publisher).map_err(|e| CliError(format!("{dir}: live publish: {e}")))?;
    let view = LiveView::load(&publisher.json_path()).map_err(CliError)?;
    let expected = ExpectedStats {
        trials: stats.n_trials as u64,
        ops: stats.ops,
        fused_ops: stats.fused_ops,
        amplitude_passes: stats.amplitude_passes,
        // No independent executor-side figures here; the conservation law
        // inside `reconcile` still binds credited passes to the counters.
        credited_passes: None,
        cache_hits: None,
    };
    let problems = view.reconcile(&expected);
    if problems.is_empty() {
        Ok(())
    } else {
        Err(CliError(format!("live snapshot reconciliation failed:\n  {}", problems.join("\n  "))))
    }
}

/// Execute the strategy selected by the flags under `recorder`. Shared by
/// `run` (NullRecorder or a `--trace` sink) and `profile` (aggregating,
/// possibly teed into a trace).
fn run_strategy<R: Recorder + ?Sized>(
    sim: &Simulation,
    opts: &Options,
    recorder: &R,
) -> Result<RunResult, CliError> {
    if wants_tree(opts)
        && (opts.baseline
            || opts.compressed
            || opts.budget != usize::MAX
            || opts.threads != 1
            || opts.cache.is_some())
    {
        return Err(CliError(
            "--strategy tree runs the batched tree executor; \
             drop --baseline/--compressed/--budget/--threads/--cache"
                .to_owned(),
        ));
    }
    if let Some(dir) = &opts.cache {
        if opts.baseline || opts.compressed || opts.budget != usize::MAX || opts.threads != 1 {
            return Err(CliError(
                "--cache applies to the default reordered strategy; \
                 drop --baseline/--compressed/--budget/--threads"
                    .to_owned(),
            ));
        }
        let store = open_store(dir, opts.cache_budget)?;
        return sim
            .run_reordered_cached_traced(&store, recorder)
            .map(|(result, cache)| {
                eprintln!(
                    "semantic cache {} at layer {}: key {} ({} B read, {} B written)",
                    if cache.hit { "hit" } else { "miss" },
                    cache.prefix_layer,
                    cache.key.as_deref().unwrap_or("-"),
                    cache.bytes_read,
                    cache.bytes_written
                );
                result
            })
            .map_err(|e| CliError(format!("execution: {e}")));
    }
    if opts.baseline {
        if opts.threads == 1 {
            sim.run_baseline_traced(recorder)
        } else {
            sim.run_baseline_parallel_traced(opts.threads, recorder)
        }
    } else if opts.compressed {
        sim.run_reordered_compressed_traced(recorder).map(|(result, comp)| {
            eprintln!(
                "compressed frontiers: peak {} B vs {} B dense ({}/{} sparse)",
                comp.peak_stored_bytes,
                comp.peak_dense_bytes,
                comp.sparse_frames,
                comp.frames_stored
            );
            result
        })
    } else if wants_tree(opts) {
        sim.run_tree_traced(recorder)
    } else if opts.budget != usize::MAX {
        sim.run_reordered_with_budget_traced(opts.budget, recorder)
    } else if opts.threads == 1 {
        sim.run_reordered_traced(recorder)
    } else {
        sim.run_reordered_parallel_traced(opts.threads, recorder)
    }
    .map_err(|e| CliError(format!("execution: {e}")))
}

fn run(prepared: &Circuit, opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let sim = simulation(prepared, opts)?;
    let started = std::time::Instant::now();
    let live = live_publisher(&sim, opts)?;
    let result = match (&opts.trace, &live) {
        (Some(path), publisher) => {
            let trace = JsonlRecorder::create(path, &trace_meta(&sim, opts))
                .map_err(|e| CliError(format!("{path}: {e}")))?;
            let result = match publisher {
                Some(publisher) => {
                    let tee = TeeRecorder::new(&trace, publisher);
                    run_strategy(&sim, opts, &tee)?
                }
                None => run_strategy(&sim, opts, &trace)?,
            };
            trace.flush().map_err(|e| CliError(format!("{path}: {e}")))?;
            result
        }
        (None, Some(publisher)) => run_strategy(&sim, opts, publisher)?,
        (None, None) => run_strategy(&sim, opts, &NullRecorder)?,
    };
    if let Some(publisher) = &live {
        finalize_live(publisher, opts, &result.stats)?;
    }
    let elapsed = started.elapsed();
    let histogram = sim.histogram(&result);
    writeln!(out, "{} ({elapsed:?})", result.stats).map_err(io_err)?;
    writeln!(out, "{histogram}").map_err(io_err)?;
    Ok(())
}

fn profile(prepared: &Circuit, opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let sim = simulation(prepared, opts)?;
    let aggregate = AggregatingRecorder::new();
    let live = live_publisher(&sim, opts)?;
    let result = match (&opts.trace, &live) {
        (Some(path), publisher) => {
            let trace = JsonlRecorder::create(path, &trace_meta(&sim, opts))
                .map_err(|e| CliError(format!("{path}: {e}")))?;
            let tee = TeeRecorder::new(&aggregate, &trace);
            let result = match publisher {
                Some(publisher) => {
                    let tee = TeeRecorder::new(&tee, publisher);
                    run_strategy(&sim, opts, &tee)?
                }
                None => run_strategy(&sim, opts, &tee)?,
            };
            trace.flush().map_err(|e| CliError(format!("{path}: {e}")))?;
            result
        }
        (None, Some(publisher)) => {
            let tee = TeeRecorder::new(&aggregate, publisher);
            run_strategy(&sim, opts, &tee)?
        }
        (None, None) => run_strategy(&sim, opts, &aggregate)?,
    };
    if let Some(publisher) = &live {
        finalize_live(publisher, opts, &result.stats)?;
    }
    let report = aggregate.report();
    cross_check(&sim, opts, &result.stats, &report)?;
    if let Some(path) = &opts.folded {
        std::fs::write(path, report.render_folded())
            .map_err(|e| CliError(format!("{path}: {e}")))?;
    }
    writeln!(out, "{}", result.stats).map_err(io_err)?;
    writeln!(out).map_err(io_err)?;
    if opts.json {
        writeln!(out, "{}", report.render_json()).map_err(io_err)?;
    } else {
        write!(out, "{}", report.render_prometheus()).map_err(io_err)?;
    }
    Ok(())
}

/// Fail loudly if the observation plane drifted from the accounting plane:
/// the telemetry totals must reproduce [`ExecStats`] exactly, and — for
/// the strategies the static analyzer models — the [`redsim::CostReport`]
/// prediction too.
fn cross_check(
    sim: &Simulation,
    opts: &Options,
    stats: &ExecStats,
    report: &MetricsReport,
) -> Result<(), CliError> {
    let mut mismatches = Vec::new();
    {
        let mut expect = |name: &str, telemetry: u64, expected: u64| {
            if telemetry != expected {
                mismatches.push(format!("{name}: telemetry says {telemetry}, expected {expected}"));
            }
        };
        expect("trials", report.counter("trials"), stats.n_trials as u64);
        expect("ops", report.counter("ops"), stats.ops);
        expect("fused_ops", report.counter("fused_ops"), stats.fused_ops);
        expect("amplitude_passes", report.counter("amplitude_passes"), stats.amplitude_passes);
        expect("kernel applications", report.total_kernel_count(), stats.amplitude_passes);
        // Zero on non-batched runs (neither side records them), exact on
        // tree runs.
        expect("batch_sweeps", report.counter("batch_sweeps"), stats.batch_sweeps);
        expect("batch_width_max", report.counter("batch_width_max"), stats.batch_width_max);
        // The bypassed-segment count is a pure function of the compiled
        // program, so telemetry must reproduce an independent recompile.
        let recompiled = redsim::exec::fuse_for_trials(
            sim.layered(),
            sim.trials().expect("trials prepared before execution").trials(),
        );
        expect(
            "fusion_bypassed",
            report.counter("fusion_bypassed"),
            recompiled.bypassed_segments() as u64,
        );
        if opts.threads == 1 {
            // Sequential runs: live residency reproduces the MSV metric.
            expect("peak MSVs", report.peak_residency() as u64, stats.peak_msv as u64);
        } else if report.peak_residency() > stats.peak_msv {
            // Workers account their peaks additively, so the true global
            // concurrent residency can only be at or below the sum.
            mismatches.push(format!(
                "peak MSVs: observed residency {} exceeds the summed worker peaks {}",
                report.peak_residency(),
                stats.peak_msv
            ));
        }
    }
    // The static analyzer predicts sequential costs exactly; parallel
    // chunking changes the sharing structure, so it is exempt.
    if opts.threads == 1 {
        let cost =
            sim.analyze_with_budget(opts.budget).map_err(|e| CliError(format!("analysis: {e}")))?;
        let predicted = if opts.baseline { cost.baseline_ops } else { cost.optimized_ops };
        if stats.ops != predicted {
            mismatches.push(format!(
                "analyzer ops: executor did {}, analyzer says {predicted}",
                stats.ops
            ));
        }
        if wants_tree(opts) {
            // The tree frontier peaks at the number of distinct injection
            // lists (buffer stealing keeps it monotone until the final
            // boundary), not at the reuse stack depth the CostReport
            // models — check it against its own closed form.
            let mut lists: Vec<_> = sim
                .trials()
                .expect("trials prepared before execution")
                .trials()
                .iter()
                .map(qsim_noise::Trial::injections)
                .collect();
            lists.sort_unstable();
            lists.dedup();
            if stats.peak_msv != lists.len() {
                mismatches.push(format!(
                    "tree frontier peak: executor held {}, {} distinct injection lists",
                    stats.peak_msv,
                    lists.len()
                ));
            }
        } else if !opts.baseline && stats.peak_msv != cost.msv_peak {
            mismatches.push(format!(
                "analyzer MSV peak: executor held {}, analyzer says {}",
                stats.peak_msv, cost.msv_peak
            ));
        }
    }
    if mismatches.is_empty() {
        Ok(())
    } else {
        Err(CliError(format!("telemetry cross-check failed:\n  {}", mismatches.join("\n  "))))
    }
}

/// `qsim report`: offline analysis of a JSONL trace (or a bench JSON
/// document), rendered as TTY tables, JSON, or self-contained HTML —
/// optionally diffed against an earlier file with `--against`.
fn report(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    use qsim_observatory as obs;
    let text = read_input(&opts.input)?;
    if text.trim_start().starts_with("{\"ev\":\"meta\"") {
        let trace =
            obs::Trace::parse(&text).map_err(|e| CliError(format!("{}: {e}", opts.input)))?;
        let analysis = obs::TraceAnalysis::from_trace(&trace);
        if let Some(path) = &opts.against {
            let before = obs::Trace::load(path).map_err(CliError)?;
            let deltas = obs::compare_traces(&before, &trace);
            if opts.json {
                writeln!(out, "{}", obs::render_deltas_json(&deltas)).map_err(io_err)?;
            } else {
                write!(out, "{}", obs::render_deltas_tty(&deltas)).map_err(io_err)?;
            }
            return Ok(());
        }
        if let Some(path) = &opts.html {
            std::fs::write(path, obs::render_html(&trace, &analysis))
                .map_err(|e| CliError(format!("{path}: {e}")))?;
        }
        if opts.json {
            writeln!(out, "{}", obs::render_json(&trace, &analysis)).map_err(io_err)?;
        } else {
            write!(out, "{}", obs::render_tty(&trace, &analysis)).map_err(io_err)?;
        }
        let problems = analysis.cross_check();
        if problems.is_empty() {
            Ok(())
        } else {
            Err(CliError(format!("trace cross-check failed:\n  {}", problems.join("\n  "))))
        }
    } else {
        let doc = obs::Json::parse(&text).map_err(|e| CliError(format!("{}: {e}", opts.input)))?;
        if let Some(path) = &opts.against {
            let before_text =
                std::fs::read_to_string(path).map_err(|e| CliError(format!("{path}: {e}")))?;
            let before =
                obs::Json::parse(&before_text).map_err(|e| CliError(format!("{path}: {e}")))?;
            let deltas = obs::compare_bench_json(&before, &doc);
            if opts.json {
                writeln!(out, "{}", obs::render_deltas_json(&deltas)).map_err(io_err)?;
            } else {
                write!(out, "{}", obs::render_deltas_tty(&deltas)).map_err(io_err)?;
            }
            return Ok(());
        }
        if opts.html.is_some() {
            return Err(CliError("--html needs a JSONL trace input".to_owned()));
        }
        let metrics = obs::flatten_metrics(&doc);
        if opts.json {
            let rows: Vec<String> =
                metrics.iter().map(|(name, value)| format!("\"{name}\": {value}")).collect();
            writeln!(out, "{{\"metrics\": {{{}}}}}", rows.join(", ")).map_err(io_err)?;
        } else {
            writeln!(out, "bench metrics ({}):", opts.input).map_err(io_err)?;
            for (name, value) in &metrics {
                writeln!(out, "  {name} = {value}").map_err(io_err)?;
            }
        }
        Ok(())
    }
}

/// `qsim history record|check|show` over the append-only benchmark
/// history file.
fn history(opts: &Options, action: HistoryAction, out: &mut dyn Write) -> Result<(), CliError> {
    use qsim_observatory as obs;
    match action {
        HistoryAction::Record => {
            let text = read_input(&opts.input)?;
            let doc =
                obs::Json::parse(&text).map_err(|e| CliError(format!("{}: {e}", opts.input)))?;
            let stem = std::path::Path::new(&opts.input)
                .file_stem()
                .and_then(|s| s.to_str())
                .map(|s| s.trim_start_matches("BENCH_").to_owned())
                .unwrap_or_else(|| "bench".to_owned());
            let timestamp = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            let record = obs::record_from_bench(&doc, &stem, timestamp);
            obs::history::append(&opts.history_path, &record).map_err(CliError)?;
            writeln!(
                out,
                "recorded {} metrics from {} (rev {}) into {}",
                record.metrics.len(),
                record.source,
                record.git_rev,
                opts.history_path
            )
            .map_err(io_err)?;
        }
        HistoryAction::Check => {
            let records = obs::history::load(&opts.history_path).map_err(CliError)?;
            let regressions = obs::history::check(&records, opts.window, opts.threshold);
            if regressions.is_empty() {
                writeln!(
                    out,
                    "history check: ok — nothing moved more than {:.1}% against its trailing window of {}",
                    opts.threshold, opts.window
                )
                .map_err(io_err)?;
            } else {
                writeln!(
                    out,
                    "history check: {} metric(s) regressed past {:.1}%:",
                    regressions.len(),
                    opts.threshold
                )
                .map_err(io_err)?;
                for r in &regressions {
                    writeln!(
                        out,
                        "  {}/{}: {:.4} -> {:.4} ({:.1}% worse)",
                        r.source, r.metric, r.baseline, r.latest, r.worse_pct
                    )
                    .map_err(io_err)?;
                }
                if opts.fail {
                    return Err(CliError(format!(
                        "history check failed: {} regression(s) past {:.1}%",
                        regressions.len(),
                        opts.threshold
                    )));
                }
                writeln!(out, "  (warn-only; pass --fail to exit nonzero)").map_err(io_err)?;
            }
        }
        HistoryAction::Show => {
            let records = obs::history::load(&opts.history_path).map_err(CliError)?;
            for r in &records {
                writeln!(
                    out,
                    "{}  {:<12}  rev {}  seed {}  {} metrics  [{}/{} {} cpus]",
                    r.timestamp,
                    r.source,
                    r.git_rev,
                    r.seed,
                    r.metrics.len(),
                    r.env.os,
                    r.env.arch,
                    r.env.cpus
                )
                .map_err(io_err)?;
            }
            writeln!(out, "{} record(s) in {}", records.len(), opts.history_path)
                .map_err(io_err)?;
        }
    }
    Ok(())
}

/// Default directory for the `cache` subcommand when `--cache` is absent.
const DEFAULT_CACHE_DIR: &str = ".qsim-cache";

fn open_store(dir: &str, budget: u64) -> Result<MsvStore, CliError> {
    MsvStore::open(std::path::Path::new(dir), budget).map_err(|e| CliError(format!("{dir}: {e}")))
}

/// Minimal JSON string escaping for paths embedded in reports.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn cache_cmd(opts: &Options, action: CacheAction, out: &mut dyn Write) -> Result<(), CliError> {
    let dir = opts.cache.as_deref().unwrap_or(DEFAULT_CACHE_DIR);
    let store = open_store(dir, opts.cache_budget)?;
    match action {
        CacheAction::Stats => {
            let stats = store.stats();
            if opts.json {
                let layers: Vec<String> = stats
                    .by_layer
                    .iter()
                    .map(|l| {
                        format!(
                            "{{\"layer\": {}, \"entries\": {}, \"bytes\": {}, \"hits\": {}}}",
                            l.layer, l.entries, l.bytes, l.hits
                        )
                    })
                    .collect();
                writeln!(
                    out,
                    "{{\"dir\": \"{}\", \"entries\": {}, \"bytes\": {}, \"budget_bytes\": {}, \
                     \"hits\": {}, \"by_layer\": [{}]}}",
                    json_escape(dir),
                    stats.entries,
                    stats.bytes,
                    stats.budget_bytes,
                    stats.hits,
                    layers.join(", ")
                )
                .map_err(io_err)?;
            } else {
                let budget = if stats.budget_bytes == 0 {
                    "unbounded".to_owned()
                } else {
                    format!("{} B", stats.budget_bytes)
                };
                writeln!(out, "semantic prefix cache at {dir}").map_err(io_err)?;
                writeln!(
                    out,
                    "entries: {}   bytes: {}   budget: {budget}   recorded hits: {}",
                    stats.entries, stats.bytes, stats.hits
                )
                .map_err(io_err)?;
                for l in &stats.by_layer {
                    writeln!(
                        out,
                        "  prefix layer {:>4}: {} entries, {} B, {} hits",
                        l.layer, l.entries, l.bytes, l.hits
                    )
                    .map_err(io_err)?;
                }
            }
        }
        CacheAction::Gc => {
            let report = store.gc().map_err(|e| CliError(format!("{dir}: gc: {e}")))?;
            if opts.json {
                writeln!(
                    out,
                    "{{\"dir\": \"{}\", \"dead_entries\": {}, \"orphan_files\": {}, \
                     \"entries\": {}, \"bytes\": {}}}",
                    json_escape(dir),
                    report.dead_entries,
                    report.orphan_files,
                    report.entries,
                    report.bytes
                )
                .map_err(io_err)?;
            } else {
                writeln!(
                    out,
                    "gc {dir}: dropped {} dead entr{} and {} orphan snapshot(s); \
                     {} entries / {} B remain",
                    report.dead_entries,
                    if report.dead_entries == 1 { "y" } else { "ies" },
                    report.orphan_files,
                    report.entries,
                    report.bytes
                )
                .map_err(io_err)?;
            }
        }
        CacheAction::Clear => {
            let stats = store.stats();
            store.clear().map_err(|e| CliError(format!("{dir}: clear: {e}")))?;
            if opts.json {
                writeln!(
                    out,
                    "{{\"dir\": \"{}\", \"cleared_entries\": {}, \"cleared_bytes\": {}}}",
                    json_escape(dir),
                    stats.entries,
                    stats.bytes
                )
                .map_err(io_err)?;
            } else {
                writeln!(out, "cleared {} entries ({} B) from {dir}", stats.entries, stats.bytes)
                    .map_err(io_err)?;
            }
        }
    }
    Ok(())
}

/// Resolve the `top` input to the snapshot file: a directory means its
/// `live.json`, anything else is taken as the file itself.
fn live_json_path(input: &str) -> std::path::PathBuf {
    let path = std::path::PathBuf::from(input);
    if path.is_dir() {
        path.join("live.json")
    } else {
        path
    }
}

/// Human-readable byte count (binary units).
fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// A `[####----]`-style progress bar for `frac` in `[0, 1]`.
fn progress_bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0) * width as f64).round() as usize).min(width);
    format!("[{}{}]", "#".repeat(filled), "-".repeat(width - filled))
}

/// Unicode sparkline of recent sample values, scaled to their own max.
fn sparkline(values: &[u64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    values
        .iter()
        .map(|&v| LEVELS[((v as f64 / max as f64) * (LEVELS.len() - 1) as f64).round() as usize])
        .collect()
}

/// Render one `qsim top` dashboard frame. `pass_rates` holds recent
/// passes-per-poll deltas for the sparkline (empty on `--once`).
fn render_top_frame(view: &LiveView, pass_rates: &[u64]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "qsim top — {} · {} qubits · seed {} · elapsed {:.2}s\n\n",
        view.strategy,
        view.qubits,
        view.seed,
        view.elapsed_ns as f64 / 1e9,
    ));
    s.push_str(&format!(
        "trials   {} {}/{} ({:.1}%){}\n",
        progress_bar(view.progress(), 30),
        view.trials_done,
        view.trials_total,
        100.0 * view.progress(),
        if view.finished() { "  done" } else { "" },
    ));
    s.push_str(&format!(
        "passes   {} executed + {} credited = {} amplitude passes ({} ops, {} fused)\n",
        view.passes, view.credited_passes, view.amplitude_passes, view.ops, view.fused_ops,
    ));
    if !pass_rates.is_empty() {
        s.push_str(&format!("rate     {} passes/poll\n", sparkline(pass_rates)));
    }
    let lookups = view.cache_hits + view.cache_misses;
    if lookups > 0 {
        s.push_str(&format!(
            "cache    {} hits / {} lookups ({:.1}%)\n",
            view.cache_hits,
            lookups,
            100.0 * view.cache_hits as f64 / lookups as f64,
        ));
    }
    if view.store_hits + view.store_misses > 0 {
        s.push_str(&format!(
            "store    {} hits / {} misses · {} passes credited\n",
            view.store_hits, view.store_misses, view.credited_passes,
        ));
    }
    s.push_str(&format!(
        "msv      {} resident (peak {}) · depth {}\n",
        view.msv_resident, view.msv_peak, view.depth,
    ));
    s.push_str(&format!(
        "memory   {} resident (peak {}) · {} heartbeats\n",
        fmt_bytes(view.resident_bytes),
        fmt_bytes(view.peak_resident_bytes),
        view.heartbeats,
    ));
    s
}

/// `qsim top`: tail a `--live` snapshot directory (or `live.json` path) as
/// a terminal dashboard. `--once` renders a single frame and exits;
/// `--once --json` re-emits the validated snapshot for scripts and CI.
fn top(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let path = live_json_path(&opts.input);
    if opts.once {
        let view = LiveView::load(&path).map_err(CliError)?;
        let problems = view.cross_check();
        if !problems.is_empty() {
            return Err(CliError(format!(
                "live snapshot failed its cross-check:\n  {}",
                problems.join("\n  ")
            )));
        }
        if opts.json {
            let raw = std::fs::read_to_string(&path)
                .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
            writeln!(out, "{}", raw.trim()).map_err(io_err)?;
        } else {
            write!(out, "{}", render_top_frame(&view, &[])).map_err(io_err)?;
        }
        return Ok(());
    }
    // Watch mode: poll the snapshot, redraw, stop once the run finishes.
    // History of passes-per-poll feeds the rate sparkline.
    let mut rates: Vec<u64> = Vec::new();
    let mut last_passes: Option<u64> = None;
    loop {
        let view = LiveView::load(&path).map_err(CliError)?;
        if let Some(prev) = last_passes {
            rates.push(view.passes.saturating_sub(prev));
            if rates.len() > 40 {
                rates.remove(0);
            }
        }
        last_passes = Some(view.passes);
        // ANSI clear-screen + home, then the frame.
        write!(out, "\x1b[2J\x1b[H{}", render_top_frame(&view, &rates)).map_err(io_err)?;
        out.flush().map_err(io_err)?;
        if view.finished() {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(opts.live_interval_ms.max(50)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Options;

    fn bell_file() -> tempfile::TempQasm {
        tempfile::TempQasm::new(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q -> c;\n",
        )
    }

    /// Minimal self-cleaning temp file (no external crates).
    mod tempfile {
        use std::path::PathBuf;

        pub struct TempQasm {
            pub path: PathBuf,
        }

        impl TempQasm {
            pub fn new(contents: &str) -> Self {
                let path = std::env::temp_dir().join(format!(
                    "qsim-test-{}-{}.qasm",
                    std::process::id(),
                    std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .expect("clock after epoch")
                        .as_nanos()
                ));
                std::fs::write(&path, contents).expect("temp file writable");
                TempQasm { path }
            }

            pub fn path_str(&self) -> String {
                self.path.to_string_lossy().into_owned()
            }
        }

        impl Drop for TempQasm {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.path);
            }
        }
    }

    fn run_cli(parts: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        let opts = Options::parse(&args)?;
        let mut out = Vec::new();
        execute(&opts, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn info_reports_counts_and_layers() {
        let file = bell_file();
        let text = run_cli(&["info", &file.path_str()]).unwrap();
        assert!(text.contains("layers:"), "{text}");
        assert!(text.contains("measure:    2 qubits"), "{text}");
    }

    #[test]
    fn transpile_emits_qasm() {
        let file = bell_file();
        let text = run_cli(&["transpile", &file.path_str()]).unwrap();
        assert!(text.starts_with("OPENQASM 2.0;"), "{text}");
        assert!(text.contains("cx q["), "{text}");
        // The emitted program must parse back.
        assert!(qsim_qasm::parse(&text).is_ok());
    }

    #[test]
    fn analyze_reports_savings() {
        let file = bell_file();
        let text =
            run_cli(&["analyze", &file.path_str(), "--trials", "512", "--seed", "3"]).unwrap();
        assert!(text.contains("normalized computation"), "{text}");
        assert!(text.contains("maintained state vectors"), "{text}");
    }

    #[test]
    fn cached_run_repeats_bitwise_and_cache_commands_report() {
        let file = bell_file();
        let dir =
            std::env::temp_dir().join(format!("qsim-cli-cache-{}-{:p}", std::process::id(), &file));
        let dir_str = dir.to_string_lossy().into_owned();
        let invocation = [
            "run",
            &file.path_str(),
            "--trials",
            "512",
            "--noise",
            "uniform:1e-3,1e-2,1e-2",
            "--cache",
            &dir_str,
        ];
        let strip_timing =
            |text: String| -> String { text.lines().skip(1).collect::<Vec<_>>().join("\n") };
        let cold = strip_timing(run_cli(&invocation).unwrap());
        let warm = strip_timing(run_cli(&invocation).unwrap());
        assert_eq!(cold, warm, "cached rerun must reproduce the histogram exactly");
        assert!(cold.contains("11:"), "{cold}");

        let stats = run_cli(&["cache", "stats", "--cache", &dir_str]).unwrap();
        assert!(stats.contains("entries: 1"), "{stats}");
        assert!(stats.contains("recorded hits: 1"), "{stats}");
        let stats_json = run_cli(&["cache", "stats", "--cache", &dir_str, "--json"]).unwrap();
        assert!(stats_json.contains("\"entries\": 1"), "{stats_json}");
        let gc = run_cli(&["cache", "gc", "--cache", &dir_str]).unwrap();
        assert!(gc.contains("0 dead"), "{gc}");
        let cleared = run_cli(&["cache", "clear", "--cache", &dir_str]).unwrap();
        assert!(cleared.contains("cleared 1 entries"), "{cleared}");
        let stats = run_cli(&["cache", "stats", "--cache", &dir_str]).unwrap();
        assert!(stats.contains("entries: 0"), "{stats}");

        // Strategy combinations the cache does not cover fail loudly.
        let mut bad: Vec<&str> = invocation.to_vec();
        bad.push("--baseline");
        let err = run_cli(&bad).unwrap_err();
        assert!(err.to_string().contains("--cache applies"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_prints_histogram_dominated_by_bell_outcomes() {
        let file = bell_file();
        let text = run_cli(&[
            "run",
            &file.path_str(),
            "--trials",
            "2048",
            "--noise",
            "uniform:1e-3,1e-2,1e-2",
        ])
        .unwrap();
        assert!(text.contains("2048 trials"), "{text}");
        assert!(text.contains("00:"), "{text}");
        assert!(text.contains("11:"), "{text}");
    }

    #[test]
    fn baseline_budget_and_threads_paths_work() {
        let file = bell_file();
        for extra in [
            vec!["--baseline"],
            vec!["--budget", "1"],
            vec!["--threads", "2"],
            vec!["--baseline", "--threads", "0"],
        ] {
            let path = file.path_str();
            let mut parts = vec!["run", path.as_str(), "--trials", "256"];
            parts.extend(extra.iter().copied());
            let text = run_cli(&parts).unwrap_or_else(|e| panic!("{extra:?}: {e}"));
            assert!(text.contains("256 trials"), "{extra:?}: {text}");
        }
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = run_cli(&["info", "/nonexistent/nowhere.qasm"]).unwrap_err();
        assert!(err.to_string().contains("nowhere.qasm"));
    }

    #[test]
    fn parse_errors_carry_position() {
        let file = tempfile::TempQasm::new("qreg q[2];\nbogus_gate q[0];\n");
        let err = run_cli(&["info", &file.path_str()]).unwrap_err();
        assert!(err.to_string().contains("2:1"), "{err}");
    }

    #[test]
    fn yorktown_noise_rejects_wide_circuits() {
        let file = tempfile::TempQasm::new("qreg q[7];\ncreg c[7];\nh q;\nmeasure q -> c;\n");
        let err = run_cli(&["analyze", &file.path_str(), "--device", "grid:2x4", "--trials", "16"])
            .unwrap_err();
        assert!(err.to_string().contains("Yorktown model covers 5 qubits"), "{err}");
    }

    #[test]
    fn save_and_replay_trials_reproduce_the_run() {
        let circuit = bell_file();
        let trials_path = std::env::temp_dir().join(format!(
            "qsim-trials-{}-{}.txt",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock after epoch")
                .as_nanos()
        ));
        let trials_str = trials_path.to_string_lossy().into_owned();
        let first = run_cli(&[
            "run",
            &circuit.path_str(),
            "--trials",
            "400",
            "--seed",
            "9",
            "--save-trials",
            &trials_str,
        ])
        .unwrap();
        let replay = run_cli(&["run", &circuit.path_str(), "--load-trials", &trials_str]).unwrap();
        // Identical histograms (same trials, same per-trial seeds).
        let tail = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(tail(&first), tail(&replay));
        let _ = std::fs::remove_file(&trials_path);
    }

    #[test]
    fn tree_strategy_reproduces_the_reuse_histogram() {
        let circuit = bell_file();
        let base =
            run_cli(&["run", &circuit.path_str(), "--trials", "256", "--seed", "5"]).unwrap();
        let tree = run_cli(&[
            "run",
            &circuit.path_str(),
            "--trials",
            "256",
            "--seed",
            "5",
            "--strategy",
            "tree",
        ])
        .unwrap();
        // The stats line differs (frontier peak, batch sweeps, timing);
        // the histogram itself must be bitwise identical.
        let hist = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(hist(&base), hist(&tree), "batched execution must be observationally invisible");
        assert!(tree.contains("batch sweeps"), "{tree}");
    }

    #[test]
    fn tree_strategy_rejects_conflicting_flags() {
        let circuit = bell_file();
        for extra in
            [["--baseline"].as_slice(), &["--compressed"], &["--budget", "2"], &["--threads", "2"]]
        {
            let path = circuit.path_str();
            let mut parts = vec!["run", path.as_str(), "--trials", "16", "--strategy", "tree"];
            parts.extend(extra.iter().copied());
            let err = run_cli(&parts).unwrap_err();
            assert!(err.to_string().contains("--strategy tree"), "{extra:?}: {err}");
        }
    }

    #[test]
    fn profile_tree_passes_the_telemetry_cross_check() {
        // `profile` fails loudly when telemetry, ExecStats, and the
        // frontier-peak closed form disagree, so a clean run is the gate.
        let circuit = bell_file();
        let text = run_cli(&[
            "profile",
            &circuit.path_str(),
            "--trials",
            "200",
            "--seed",
            "13",
            "--strategy",
            "tree",
            "--json",
        ])
        .unwrap();
        assert!(text.contains("batch sweeps"), "{text}");
        assert!(text.contains("\"batch_sweeps\""), "{text}");
        assert!(text.contains("\"batch_width_max\""), "{text}");
    }

    #[test]
    fn calibration_file_noise_model_runs() {
        let circuit = bell_file();
        let calib = tempfile::TempQasm::new(
            "qubits 2\nsingle 0 1e-3\nsingle 1 2e-3\ndefault-pair 1e-2\nreadout 0 1e-2\nreadout 1 1e-2\n",
        );
        let noise = format!("file:{}", calib.path_str());
        let text = run_cli(&[
            "run",
            &circuit.path_str(),
            "--trials",
            "512",
            "--device",
            "none",
            "--noise",
            &noise,
        ])
        .unwrap();
        assert!(text.contains("512 trials"), "{text}");
        // Bad calibration carries line info through.
        let bad = tempfile::TempQasm::new("qubits 2\nwat 0\n");
        let noise = format!("file:{}", bad.path_str());
        let err = run_cli(&["analyze", &circuit.path_str(), "--device", "none", "--noise", &noise])
            .unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn compressed_and_alap_flags_run() {
        let file = bell_file();
        for extra in [vec!["--compressed"], vec!["--alap"], vec!["--compressed", "--alap"]] {
            let path = file.path_str();
            let mut parts = vec!["run", path.as_str(), "--trials", "128"];
            parts.extend(extra.iter().copied());
            let text = run_cli(&parts).unwrap_or_else(|e| panic!("{extra:?}: {e}"));
            assert!(text.contains("128 trials"), "{extra:?}: {text}");
        }
    }

    #[test]
    fn verify_reports_clean_plan() {
        let file = bell_file();
        let text =
            run_cli(&["verify", &file.path_str(), "--trials", "128", "--seed", "4"]).unwrap();
        assert!(text.contains("plan verified"), "{text}");
        assert!(text.contains("no diagnostics"), "{text}");
    }

    #[test]
    fn verify_json_emits_empty_diagnostics_array() {
        let file = bell_file();
        let text = run_cli(&["verify", &file.path_str(), "--trials", "64", "--json"]).unwrap();
        assert_eq!(text.trim(), "[]");
    }

    #[test]
    fn advise_ranks_every_strategy() {
        let file = bell_file();
        let text =
            run_cli(&["advise", &file.path_str(), "--trials", "128", "--seed", "4"]).unwrap();
        for name in ["sequential", "fused", "reuse", "compressed", "tree", "frame-tracking"] {
            assert!(text.contains(name), "missing {name}:\n{text}");
        }
        assert!(text.contains("recommended:"), "{text}");
        assert!(text.contains("segments:"), "{text}");
        assert!(text.contains("frames:"), "{text}");
    }

    #[test]
    fn advise_json_carries_advice_and_diagnostics() {
        let file = bell_file();
        let text = run_cli(&["advise", &file.path_str(), "--trials", "64", "--json"]).unwrap();
        assert!(text.starts_with("{\"advice\":"), "{text}");
        assert!(text.contains("\"predictions\":"), "{text}");
        assert!(text.contains("\"recommended\":\""), "{text}");
        assert!(text.contains("\"diagnostics\":"), "{text}");
    }

    #[test]
    fn advise_warns_when_a_declared_strategy_is_suboptimal() {
        // Bell is all-Clifford, so frame tracking dominates, and reuse
        // beats the fused baseline: declaring --baseline draws both the
        // suboptimal-strategy and trackable-set warnings.
        let file = bell_file();
        let text =
            run_cli(&["advise", &file.path_str(), "--trials", "256", "--seed", "11", "--baseline"])
                .unwrap();
        assert!(text.contains("A204"), "expected suboptimal-strategy warning:\n{text}");
        assert!(text.contains("A205"), "expected frame-trackable-set warning:\n{text}");
    }

    #[test]
    fn verify_covers_budgets_and_alap() {
        let file = bell_file();
        for extra in [vec!["--budget", "1"], vec!["--budget", "2"], vec!["--alap"]] {
            let path = file.path_str();
            let mut parts = vec!["verify", path.as_str(), "--trials", "128"];
            parts.extend(extra.iter().copied());
            let text = run_cli(&parts).unwrap_or_else(|e| panic!("{extra:?}: {e}"));
            assert!(text.contains("plan verified"), "{extra:?}: {text}");
        }
    }

    /// The headline guarantee: every shipped benchmark compiles to a plan
    /// the verifier proves clean, at 64 trials.
    #[test]
    fn verify_all_shipped_benchmarks_clean() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../benchmarks");
        let sweep = |dir: &str, extra: &[&str]| {
            let mut entries: Vec<_> = std::fs::read_dir(format!("{root}/{dir}"))
                .unwrap_or_else(|e| panic!("{root}/{dir}: {e}"))
                .map(|e| e.expect("dir entry").path())
                .collect();
            entries.sort();
            assert!(!entries.is_empty(), "no benchmarks under {dir}");
            for path in entries {
                let path_str = path.to_string_lossy().into_owned();
                let mut parts = vec!["verify", path_str.as_str(), "--trials", "64"];
                parts.extend(extra.iter().copied());
                let text = run_cli(&parts).unwrap_or_else(|e| panic!("{dir}/{path_str}: {e}"));
                assert!(text.contains("no diagnostics"), "{path_str}: {text}");
            }
        };
        // Yorktown suite: already device-native, default Yorktown noise.
        sweep("yorktown", &["--no-transpile"]);
        // Logical suite: all-to-all, uniform noise (some exceed 5 qubits).
        sweep("logical", &["--device", "none", "--noise", "uniform:1e-3,1e-2,1e-2"]);
    }

    fn temp_path(tag: &str, ext: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "qsim-{tag}-{}-{}.{ext}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock after epoch")
                .as_nanos()
        ))
    }

    #[test]
    fn profile_prints_stats_and_prometheus_metrics() {
        let file = bell_file();
        let text =
            run_cli(&["profile", &file.path_str(), "--trials", "256", "--seed", "5"]).unwrap();
        // Stats via the shared Display impl, then the metrics page.
        assert!(text.contains("256 trials:"), "{text}");
        assert!(text.contains("amplitude passes"), "{text}");
        assert!(text.contains("qsim_counter{name=\"ops\"}"), "{text}");
        assert!(text.contains("qsim_msv_peak_residency"), "{text}");
    }

    #[test]
    fn profile_json_emits_machine_readable_metrics() {
        let file = bell_file();
        let text = run_cli(&["profile", &file.path_str(), "--trials", "128", "--json"]).unwrap();
        assert!(text.contains("\"counters\""), "{text}");
        assert!(text.contains("\"ops\""), "{text}");
    }

    #[test]
    fn profile_cross_checks_every_strategy() {
        // The cross-check inside `profile` errors on any drift between
        // telemetry, ExecStats, and the static analyzer — so a clean exit
        // over every strategy is the exactness guarantee, end to end.
        let file = bell_file();
        for extra in [
            vec![],
            vec!["--baseline"],
            vec!["--budget", "1"],
            vec!["--compressed"],
            vec!["--threads", "2"],
            vec!["--baseline", "--threads", "2"],
        ] {
            let path = file.path_str();
            let mut parts = vec!["profile", path.as_str(), "--trials", "256"];
            parts.extend(extra.iter().copied());
            let text = run_cli(&parts).unwrap_or_else(|e| panic!("{extra:?}: {e}"));
            assert!(text.contains("256 trials:"), "{extra:?}: {text}");
        }
    }

    #[test]
    fn trace_flag_writes_a_schema_valid_jsonl_trace() {
        let file = bell_file();
        let trace = temp_path("trace", "jsonl");
        let trace_str = trace.to_string_lossy().into_owned();
        let text =
            run_cli(&["run", &file.path_str(), "--trials", "64", "--trace", &trace_str]).unwrap();
        assert!(text.contains("64 trials:"), "{text}");
        let contents = std::fs::read_to_string(&trace).expect("trace file written");
        qsim_telemetry::schema::validate_jsonl(&contents)
            .unwrap_or_else(|e| panic!("trace fails its own schema: {e}"));
        assert!(contents.lines().count() > 64, "suspiciously short trace:\n{contents}");
        let _ = std::fs::remove_file(&trace);
    }

    #[test]
    fn profile_folded_output_feeds_flamegraphs() {
        let file = bell_file();
        let folded = temp_path("folded", "txt");
        let folded_str = folded.to_string_lossy().into_owned();
        run_cli(&["profile", &file.path_str(), "--trials", "64", "--folded", &folded_str]).unwrap();
        let contents = std::fs::read_to_string(&folded).expect("folded file written");
        // Semicolon-separated frames, space, numeric sample count.
        let line = contents.lines().next().expect("non-empty folded output");
        let (stack, count) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!stack.is_empty());
        assert!(count.parse::<u64>().is_ok(), "{line}");
        let _ = std::fs::remove_file(&folded);
    }

    #[test]
    fn report_analyzes_a_recorded_trace() {
        let file = bell_file();
        let trace = temp_path("report-trace", "jsonl");
        let trace_str = trace.to_string_lossy().into_owned();
        run_cli(&["run", &file.path_str(), "--trials", "64", "--seed", "3", "--trace", &trace_str])
            .unwrap();
        // TTY report: all sections render and the cross-check holds.
        let tty = run_cli(&["report", &trace_str]).unwrap();
        for fragment in
            ["== trace report ==", "strategy=reuse", "cache waterfall", "cross-check: ok"]
        {
            assert!(tty.contains(fragment), "missing {fragment:?} in:\n{tty}");
        }
        // JSON report parses and carries the exact counters.
        let json = run_cli(&["report", &trace_str, "--json"]).unwrap();
        let v = qsim_observatory::Json::parse(json.trim()).unwrap();
        assert_eq!(
            v.get("cross_check").unwrap().get("ok"),
            Some(&qsim_observatory::Json::Bool(true))
        );
        assert_eq!(v.get("counters").unwrap().get("trials").unwrap().as_num(), Some(64.0));
        // HTML report is written and self-contained.
        let html_path = temp_path("report", "html");
        let html_str = html_path.to_string_lossy().into_owned();
        run_cli(&["report", &trace_str, "--html", &html_str]).unwrap();
        let html = std::fs::read_to_string(&html_path).expect("html written");
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        assert!(!html.contains("http://") && !html.contains("https://"));
        // Comparing a trace against itself: everything unchanged.
        let diff = run_cli(&["report", &trace_str, "--against", &trace_str]).unwrap();
        assert!(diff.contains("unchanged"), "{diff}");
        assert!(!diff.contains("regressed"), "{diff}");
        let _ = std::fs::remove_file(&trace);
        let _ = std::fs::remove_file(&html_path);
    }

    #[test]
    fn live_flag_publishes_reconciled_snapshots_and_top_reads_them() {
        let file = bell_file();
        let dir =
            std::env::temp_dir().join(format!("qsim-live-cli-{}-{:p}", std::process::id(), &file));
        let dir_str = dir.to_string_lossy().into_owned();
        // --live-interval 0 publishes on every heartbeat; run's own
        // finalize_live already reconciles the snapshot or errors.
        let text = run_cli(&[
            "run",
            &file.path_str(),
            "--trials",
            "128",
            "--live",
            &dir_str,
            "--live-interval",
            "0",
        ])
        .unwrap();
        assert!(text.contains("128 trials:"), "{text}");
        // The published snapshot parses, cross-checks, and is final.
        let view = qsim_observatory::LiveView::load(&dir.join("live.json")).unwrap();
        assert!(view.finished());
        assert_eq!(view.trials_done, 128);
        assert_eq!(view.strategy, "reuse");
        assert!(view.cache_hits + view.cache_misses == 128, "one lookup per trial");
        // The Prometheus exposition exists alongside.
        let prom = std::fs::read_to_string(dir.join("live.prom")).unwrap();
        assert!(prom.contains("qsim_live_trials_done{strategy=\"reuse\"} 128"), "{prom}");

        // `top --once` renders a dashboard frame from the same file.
        let frame = run_cli(&["top", &dir_str, "--once"]).unwrap();
        assert!(frame.contains("qsim top — reuse"), "{frame}");
        assert!(frame.contains("128/128 (100.0%)  done"), "{frame}");
        assert!(frame.contains("heartbeats"), "{frame}");
        // `top --once --json` re-emits the validated snapshot verbatim.
        let json = run_cli(&["top", &dir_str, "--once", "--json"]).unwrap();
        let reparsed = qsim_observatory::LiveView::parse(&json).unwrap();
        assert_eq!(reparsed, view);
        // Pointing at the file directly works too.
        let direct = dir.join("live.json");
        let direct_str = direct.to_string_lossy().into_owned();
        assert!(run_cli(&["top", &direct_str, "--once"]).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profile_with_live_covers_every_strategy() {
        // finalize_live errors on any drift between the published snapshot
        // and ExecStats, so a clean pass over the strategy matrix is the
        // live plane's end-to-end exactness check.
        let file = bell_file();
        for extra in [
            vec![],
            vec!["--baseline"],
            vec!["--budget", "1"],
            vec!["--compressed"],
            vec!["--threads", "2"],
            vec!["--baseline", "--threads", "2"],
        ] {
            let dir = std::env::temp_dir().join(format!(
                "qsim-live-matrix-{}-{:p}-{}",
                std::process::id(),
                &file,
                extra.join("_").replace('-', "")
            ));
            let dir_str = dir.to_string_lossy().into_owned();
            let path = file.path_str();
            let mut parts = vec![
                "profile",
                path.as_str(),
                "--trials",
                "128",
                "--live",
                &dir_str,
                "--live-interval",
                "0",
            ];
            parts.extend(extra.iter().copied());
            let text = run_cli(&parts).unwrap_or_else(|e| panic!("{extra:?}: {e}"));
            assert!(text.contains("128 trials:"), "{extra:?}: {text}");
            let view = qsim_observatory::LiveView::load(&dir.join("live.json"))
                .unwrap_or_else(|e| panic!("{extra:?}: {e}"));
            assert!(view.finished(), "{extra:?}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn top_rejects_missing_and_incoherent_snapshots() {
        let err = run_cli(&["top", "/nonexistent/live.json", "--once"]).unwrap_err();
        assert!(err.to_string().contains("live.json"), "{err}");
        // A snapshot violating an invariant fails the --once cross-check.
        let path = temp_path("top-bad", "json");
        let bad = concat!(
            "{\"version\":1,\"strategy\":\"reuse\",\"qubits\":2,\"seed\":1,",
            "\"elapsed_ns\":5,\"heartbeats\":9,\"trials_done\":9,\"trials_total\":4,",
            "\"depth\":0,\"passes\":0,\"ops\":0,\"fused_ops\":0,\"amplitude_passes\":0,",
            "\"credited_passes\":0,\"store_hits\":0,\"store_misses\":0,\"cache_hits\":0,",
            "\"cache_misses\":0,\"msv_resident\":0,\"msv_peak\":0,\"resident_bytes\":0,",
            "\"peak_resident_bytes\":0}"
        );
        std::fs::write(&path, bad).unwrap();
        let path_str = path.to_string_lossy().into_owned();
        let err = run_cli(&["top", &path_str, "--once"]).unwrap_err();
        assert!(err.to_string().contains("trials_done"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn top_render_helpers_are_stable() {
        assert_eq!(progress_bar(0.0, 10), "[----------]");
        assert_eq!(progress_bar(0.5, 10), "[#####-----]");
        assert_eq!(progress_bar(1.0, 10), "[##########]");
        assert_eq!(progress_bar(7.0, 10), "[##########]", "clamped");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0 MiB");
        assert_eq!(sparkline(&[]), "");
        let line = sparkline(&[0, 1, 2, 4]);
        assert_eq!(line.chars().count(), 4);
        assert!(line.ends_with('█'), "{line}");
    }

    #[test]
    fn history_record_and_check_gate_regressions() {
        let history = temp_path("history", "jsonl");
        let history_str = history.to_string_lossy().into_owned();
        let bench = |speedup: f64, run_ms: f64| {
            tempfile::TempQasm::new(&format!(
                "{{\"benchmark\": \"selftest\", \"seed\": 7, \"rows\": [{{\"name\": \"rb\", \"reuse_speedup\": {speedup}, \"run_ms\": {run_ms}}}]}}"
            ))
        };
        // Three clean jittered runs, then a clean fourth: passes.
        for (s, t) in [(1.30, 100.0), (1.32, 98.0), (1.29, 101.5)] {
            let doc = bench(s, t);
            let text = run_cli(&["history", "record", &doc.path_str(), "--history", &history_str])
                .unwrap();
            assert!(text.contains("recorded"), "{text}");
        }
        let clean = bench(1.31, 100.5);
        run_cli(&["history", "record", &clean.path_str(), "--history", &history_str]).unwrap();
        let text =
            run_cli(&["history", "check", "--history", &history_str, "--threshold", "5%"]).unwrap();
        assert!(text.contains("history check: ok"), "{text}");
        // Inject a 2× slowdown: flagged, warn-only by default…
        let slow = bench(1.30, 200.0);
        run_cli(&["history", "record", &slow.path_str(), "--history", &history_str]).unwrap();
        let text =
            run_cli(&["history", "check", "--history", &history_str, "--threshold", "5%"]).unwrap();
        assert!(text.contains("run_ms"), "{text}");
        assert!(text.contains("warn-only"), "{text}");
        // …and fatal with --fail.
        let err = run_cli(&["history", "check", "--history", &history_str, "--fail"]).unwrap_err();
        assert!(err.to_string().contains("regression"), "{err}");
        // show lists every record.
        let text = run_cli(&["history", "show", "--history", &history_str]).unwrap();
        assert!(text.contains("5 record(s)"), "{text}");
        assert!(text.contains("selftest"), "{text}");
        let _ = std::fs::remove_file(&history);
    }

    #[test]
    fn report_renders_bench_documents_too() {
        let doc = tempfile::TempQasm::new(
            "{\"benchmark\": \"mini\", \"seed\": 1, \"rows\": [{\"name\": \"rb\", \"ops\": 23}]}",
        );
        let text = run_cli(&["report", &doc.path_str()]).unwrap();
        assert!(text.contains("rows.rb.ops = 23"), "{text}");
        // --against diffs shared leaves.
        let text = run_cli(&["report", &doc.path_str(), "--against", &doc.path_str()]).unwrap();
        assert!(text.contains("unchanged"), "{text}");
        // --html is trace-only.
        let err = run_cli(&["report", &doc.path_str(), "--html", "/tmp/x.html"]).unwrap_err();
        assert!(err.to_string().contains("JSONL trace"), "{err}");
    }

    #[test]
    fn no_transpile_skips_lowering() {
        let file =
            tempfile::TempQasm::new("qreg q[2];\ncreg c[2];\nswap q[0],q[1];\nmeasure q -> c;\n");
        // With lowering, swap decomposes into CNOTs.
        let lowered = run_cli(&["transpile", &file.path_str()]).unwrap();
        assert!(!lowered.contains("swap"), "{lowered}");
        // Without, the swap survives (and the noise model later rejects it,
        // which is the documented contract).
        let raw = run_cli(&["transpile", &file.path_str(), "--no-transpile"]).unwrap();
        assert!(raw.contains("swap"), "{raw}");
    }
}
