#![warn(missing_docs)]
//! Library half of the `qsim` command-line tool: argument parsing and
//! command implementations, kept binary-free so they are unit-testable.
//!
//! ```console
//! $ qsim info circuit.qasm
//! $ qsim transpile circuit.qasm --device yorktown
//! $ qsim analyze circuit.qasm --trials 8192 --noise yorktown
//! $ qsim run circuit.qasm --trials 4096 --noise uniform:1e-3,1e-2,1e-2 --threads 0
//! ```

mod args;
mod commands;

pub use args::{CliError, Command, DeviceSpec, NoiseSpec, Options};
pub use commands::execute;
