//! Property-based tests of the redundancy-elimination invariants.

use proptest::prelude::*;
use qsim_circuit::{Circuit, LayeredCircuit};
use qsim_noise::{Injection, Pauli, Trial};
use redsim::analysis::{analyze_generation_order, analyze_sorted};
use redsim::exec::{BaselineExecutor, ReuseExecutor};
use redsim::order::{compare_trials, reorder, reorder_recursive};

/// A small 3-qubit circuit with both 1q and 2q gates, depth ≥ 4.
fn test_circuit() -> (Circuit, LayeredCircuit) {
    let mut qc = Circuit::new("prop", 3, 3);
    qc.h(0).t(1).cx(0, 1).h(2).cx(1, 2).u(0.3, 0.1, -0.2, 0).cx(2, 0).s(1).measure_all();
    let layered = qc.layered().unwrap();
    (qc, layered)
}

prop_compose! {
    /// A random injection valid for the test circuit's sites.
    fn arb_injection()(
        choice in 0usize..5,
        layer_seed in 0usize..100,
        pauli in 0u8..3,
        pair_code in 1u8..16,
    ) -> Injection {
        // Sites of test_circuit, layered:
        //   L0: h q0, t q1, h q2 | L1: cx(0,1) | L2: cx(1,2), u q0
        //   L3: cx(2,0), s q1
        let p = Pauli::from_code(pauli);
        let decode = |c: u8| if c == 0 { None } else { Some(Pauli::from_code(c - 1)) };
        match choice {
            0 => Injection::single(layer_seed % 4, 0, p),
            1 => Injection::single(layer_seed % 4, 1, p),
            2 => Injection::single(layer_seed % 4, 2, p),
            3 => Injection::pair(1 + layer_seed % 3, (0, 1), decode(pair_code % 4), decode(pair_code / 4)),
            _ => Injection::pair(2 + layer_seed % 2, (1, 2), decode(pair_code % 4), decode(pair_code / 4)),
        }
    }
}

/// A random trial: dedup injections per position to satisfy the one-error-
/// per-position invariant.
fn arb_trial() -> impl Strategy<Value = Trial> {
    (proptest::collection::vec(arb_injection(), 0..6), any::<u8>(), any::<u64>()).prop_map(
        |(mut injections, flips, seed)| {
            injections.sort_unstable();
            injections.dedup_by(|a, b| a.layer() == b.layer() && a.site() == b.site());
            Trial::new(injections, u64::from(flips) & 0b111, seed)
        },
    )
}

fn arb_trials() -> impl Strategy<Value = Vec<Trial>> {
    proptest::collection::vec(arb_trial(), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reorder_is_a_permutation_sorted_under_the_comparator(trials in arb_trials()) {
        let mut sorted = trials.clone();
        reorder(&mut sorted);
        prop_assert_eq!(sorted.len(), trials.len());
        for pair in sorted.windows(2) {
            prop_assert_ne!(compare_trials(&pair[0], &pair[1]), std::cmp::Ordering::Greater);
        }
        // Same multiset.
        let key = |ts: &[Trial]| {
            let mut v: Vec<String> = ts.iter().map(|t| format!("{t}")).collect();
            v.sort();
            v
        };
        prop_assert_eq!(key(&sorted), key(&trials));
    }

    #[test]
    fn recursive_reorder_matches_sort(trials in arb_trials()) {
        let mut sorted = trials.clone();
        reorder(&mut sorted);
        let recursive = reorder_recursive(trials);
        let keys = |ts: &[Trial]| -> Vec<Vec<Injection>> {
            ts.iter().map(|t| t.injections().to_vec()).collect()
        };
        prop_assert_eq!(keys(&sorted), keys(&recursive));
    }

    #[test]
    fn analyzer_matches_both_executors_exactly(trials in arb_trials()) {
        let (_, layered) = test_circuit();
        let mut sorted = trials.clone();
        reorder(&mut sorted);
        let report = analyze_sorted(&layered, &sorted).unwrap();
        let reuse = ReuseExecutor::new(&layered).run(&trials).unwrap();
        let baseline = BaselineExecutor::new(&layered).run(&trials).unwrap();
        prop_assert_eq!(reuse.stats.ops, report.optimized_ops);
        prop_assert_eq!(reuse.stats.peak_msv, report.msv_peak);
        prop_assert_eq!(baseline.stats.ops, report.baseline_ops);
    }

    #[test]
    fn executors_agree_bitwise(trials in arb_trials()) {
        let (_, layered) = test_circuit();
        let reuse = ReuseExecutor::new(&layered).run(&trials).unwrap();
        let baseline = BaselineExecutor::new(&layered).run(&trials).unwrap();
        prop_assert_eq!(reuse.outcomes, baseline.outcomes);
    }

    #[test]
    fn optimized_never_exceeds_baseline(trials in arb_trials()) {
        let (_, layered) = test_circuit();
        let mut sorted = trials.clone();
        reorder(&mut sorted);
        let report = analyze_sorted(&layered, &sorted).unwrap();
        prop_assert!(report.optimized_ops <= report.baseline_ops);
        // Reordered caching is at least as good as generation-order caching.
        let naive = analyze_generation_order(&layered, &trials).unwrap();
        prop_assert!(report.optimized_ops <= naive.optimized_ops);
        prop_assert!(naive.optimized_ops <= naive.baseline_ops);
    }

    #[test]
    fn budgeted_execution_is_exact_for_every_budget(trials in arb_trials(), budget in 1usize..6) {
        let (_, layered) = test_circuit();
        let baseline = BaselineExecutor::new(&layered).run(&trials).unwrap();
        let budgeted = ReuseExecutor::new(&layered).run_with_budget(&trials, budget).unwrap();
        prop_assert_eq!(&budgeted.outcomes, &baseline.outcomes);
        prop_assert!(budgeted.stats.peak_msv <= budget);
        prop_assert!(budgeted.stats.ops <= baseline.stats.ops);
        // Dry-run analyzer agrees exactly.
        let mut sorted = trials.clone();
        reorder(&mut sorted);
        let dry = redsim::analysis::analyze_sorted_with_budget(&layered, &sorted, budget).unwrap();
        prop_assert_eq!(budgeted.stats.ops, dry.optimized_ops);
        prop_assert_eq!(budgeted.stats.peak_msv, dry.msv_peak);
    }

    #[test]
    fn compressed_execution_is_outcome_exact(trials in arb_trials()) {
        let (_, layered) = test_circuit();
        let baseline = BaselineExecutor::new(&layered).run(&trials).unwrap();
        let (compressed, stats) =
            redsim::compressed::run_reordered_compressed(&layered, &trials).unwrap();
        prop_assert_eq!(&compressed.outcomes, &baseline.outcomes);
        // Same op accounting as the dense reuse executor.
        let dense = ReuseExecutor::new(&layered).run(&trials).unwrap();
        prop_assert_eq!(compressed.stats.ops, dense.stats.ops);
        prop_assert_eq!(compressed.stats.peak_msv, dense.stats.peak_msv);
        // Compressed storage never exceeds what the same number of dense
        // frontiers would cost (the root frame is held even with no trials).
        let dense_unit = qsim_statevec::StoredState::dense_bytes(layered.n_qubits());
        prop_assert!(
            stats.peak_stored_bytes <= compressed.stats.peak_msv.max(1) * dense_unit
        );
    }

    #[test]
    fn parallel_execution_is_exact(trials in arb_trials(), threads in 1usize..5) {
        let (_, layered) = test_circuit();
        let baseline = BaselineExecutor::new(&layered).run(&trials).unwrap();
        let par_base = redsim::parallel::run_baseline_parallel(&layered, &trials, threads).unwrap();
        prop_assert_eq!(&par_base.outcomes, &baseline.outcomes);
        let par_reuse = redsim::parallel::run_reordered_parallel(&layered, &trials, threads).unwrap();
        prop_assert_eq!(&par_reuse.outcomes, &baseline.outcomes);
    }

    #[test]
    fn execution_order_does_not_change_results(trials in arb_trials(), rotate in 0usize..7) {
        // The reuse executor returns outcomes in input order, so permuting
        // the input permutes the outcomes accordingly and nothing else.
        if trials.is_empty() {
            return Ok(());
        }
        let (_, layered) = test_circuit();
        let k = rotate % trials.len();
        let mut rotated = trials.clone();
        rotated.rotate_left(k);
        let a = ReuseExecutor::new(&layered).run(&trials).unwrap();
        let b = ReuseExecutor::new(&layered).run(&rotated).unwrap();
        for (i, outcome) in a.outcomes.iter().enumerate() {
            let j = (i + trials.len() - k) % trials.len();
            prop_assert_eq!(outcome, &b.outcomes[j]);
        }
        // Identical cost regardless of presentation order.
        prop_assert_eq!(a.stats, b.stats);
    }
}

/// Deterministic end-to-end: Monte-Carlo distribution converges to the exact
/// density-matrix channel distribution (ground truth from the alternative
/// simulation approach of the paper's Related Work).
#[test]
fn monte_carlo_converges_to_density_matrix_ground_truth() {
    use qsim_noise::{NoiseModel, TrialGenerator};
    use qsim_statevec::DensityMatrix;
    use redsim::Histogram;

    // Noisy Bell pair with strong depolarizing + readout noise.
    let mut qc = Circuit::new("bell", 2, 2);
    qc.h(0).cx(0, 1).measure_all();
    let layered = qc.layered().unwrap();
    let (p1, p2, pm) = (0.08, 0.15, 0.06);
    let model = NoiseModel::uniform(2, p1, p2, pm);

    // Exact channel: depolarize after each gate, readout confusion at the end.
    let mut rho = DensityMatrix::zero_state(2).unwrap();
    rho.apply_1q(&qsim_statevec::Matrix2::h(), 0).unwrap();
    rho.depolarize_1q(0, p1).unwrap();
    rho.apply_cx(0, 1).unwrap();
    rho.depolarize_2q(0, 1, p2).unwrap();
    let exact = rho.readout_distribution(&[pm, pm]).unwrap();

    // Monte-Carlo with the redundancy-eliminated executor.
    let trials = TrialGenerator::new(&layered, &model).unwrap().generate(60_000, 1234);
    let result = ReuseExecutor::new(&layered).run(trials.trials()).unwrap();
    let hist = Histogram::from_outcomes(2, &result.outcomes);
    let tv = hist.tv_distance(&exact);
    assert!(tv < 0.01, "total-variation distance {tv} too large");
}
