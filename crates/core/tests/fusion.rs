//! Property-style integration tests for the trial-set-aware fusion layer:
//! over every catalog circuit and several noise seeds,
//!
//! 1. the fused baseline and fused reuse executors agree **bitwise**,
//! 2. fused final states match the unfused layer-by-layer reference with
//!    fidelity ≥ 1 − 1e-10 on every probed trial, and
//! 3. fusion never merges across an injection cut-point (every injection
//!    layer of the trial set ends a segment).

use qsim_circuit::{catalog, Circuit, FusedProgram, LayeredCircuit};
use qsim_noise::{injection_cut_layers, NoiseModel, Trial, TrialGenerator};
use qsim_statevec::StateVector;
use redsim::exec::{BaselineExecutor, ReuseExecutor};

fn catalog_suite() -> Vec<Circuit> {
    vec![
        catalog::rb(),
        catalog::rb_sequence(20, 3),
        catalog::grover_3q(1),
        catalog::wstate_3q(),
        catalog::seven_x1_mod15(),
        catalog::bv(5, 0b1011),
        catalog::qft(5),
        catalog::ghz(5),
        catalog::quantum_volume(5, 3, 4),
        catalog::hidden_shift(4, 0b101),
        catalog::adder_2bit(1, 2),
        catalog::qpe(3, 1),
    ]
}

/// Layer a catalog circuit, going through the logical decomposition pass
/// (as the real pipeline would) when the noise model cannot handle its
/// gates directly (e.g. arity-3 ccx).
fn prepare(circuit: &Circuit) -> LayeredCircuit {
    let probe_model = NoiseModel::uniform(circuit.n_qubits(), 1e-3, 1e-3, 0.0);
    if let Ok(layered) = circuit.layered() {
        if TrialGenerator::new(&layered, &probe_model).is_ok() {
            return layered;
        }
    }
    qsim_circuit::transpile::transpile(
        circuit,
        &qsim_circuit::transpile::TranspileOptions::logical(),
    )
    .unwrap()
    .circuit
    .layered()
    .unwrap()
}

/// Final state of one trial via the unfused layer-by-layer path.
fn final_state_unfused(layered: &LayeredCircuit, trial: &Trial) -> StateVector {
    let mut state = StateVector::zero_state(layered.n_qubits());
    let injections = trial.injections();
    let mut next = 0usize;
    for layer in 0..layered.n_layers() {
        layered.apply_layer(layer, &mut state).unwrap();
        while next < injections.len() && injections[next].layer() == layer {
            injections[next].apply_to(&mut state).unwrap();
            next += 1;
        }
    }
    state
}

/// Final state of one trial via whole fused segments.
fn final_state_fused(
    layered: &LayeredCircuit,
    program: &FusedProgram,
    trial: &Trial,
) -> StateVector {
    let mut state = StateVector::zero_state(layered.n_qubits());
    let mut done = -1i64;
    let injections = trial.injections();
    let mut next = 0usize;
    let last_layer = layered.n_layers() as i64 - 1;
    while done < last_layer || next < injections.len() {
        let target =
            if next < injections.len() { injections[next].layer() as i64 } else { last_layer };
        program.apply_through(&mut state, &mut done, target).unwrap();
        while next < injections.len() && injections[next].layer() as i64 == done {
            injections[next].apply_to(&mut state).unwrap();
            next += 1;
        }
    }
    state
}

#[test]
fn fusion_properties_hold_across_the_catalog() {
    for circuit in catalog_suite() {
        let layered = prepare(&circuit);
        let model = NoiseModel::uniform(circuit.n_qubits(), 2e-2, 8e-2, 2e-2);
        for seed in [1u64, 2, 3] {
            let set = TrialGenerator::new(&layered, &model).unwrap().generate(150, seed);
            let trials = set.trials();
            let cuts = injection_cut_layers(trials);
            let program = FusedProgram::new(&layered, &cuts);

            // (3) Every cut layer ends a segment, and no segment spans one.
            for &cut in &cuts {
                assert!(
                    program.is_cut_aligned(cut),
                    "{} seed {seed}: cut layer {cut} does not end a segment",
                    circuit.name()
                );
            }
            for seg in program.segments() {
                for &cut in &cuts {
                    assert!(
                        !(seg.start_layer() <= cut && cut < seg.end_layer()),
                        "{} seed {seed}: segment {}..={} swallows cut {cut}",
                        circuit.name(),
                        seg.start_layer(),
                        seg.end_layer()
                    );
                }
            }
            // Fusion is lossless in the paper metric.
            assert_eq!(program.total_source_gates(), layered.total_gates());

            // (1) Fused baseline ≡ fused reuse, bitwise.
            let baseline = BaselineExecutor::new(&layered).run(trials).unwrap();
            let reuse = ReuseExecutor::new(&layered).run(trials).unwrap();
            assert_eq!(
                baseline.outcomes,
                reuse.outcomes,
                "{} seed {seed}: baseline/reuse outcomes diverged",
                circuit.name()
            );
            assert_eq!(baseline.stats.ops, reuse.stats.ops.max(baseline.stats.ops));

            // (2) Fused states track the unfused reference numerically on a
            // probe subset: the deepest trial plus a spread of others.
            let deepest = trials
                .iter()
                .enumerate()
                .max_by_key(|(_, t)| t.n_injections())
                .map(|(i, _)| i)
                .unwrap();
            let mut probe: Vec<usize> = (0..trials.len()).step_by(29).collect();
            probe.push(deepest);
            for index in probe {
                let trial = &trials[index];
                let fused = final_state_fused(&layered, &program, trial);
                let unfused = final_state_unfused(&layered, trial);
                let fidelity = fused.fidelity(&unfused).unwrap();
                assert!(
                    fidelity >= 1.0 - 1e-10,
                    "{} seed {seed} trial {index}: fidelity {fidelity} below 1-1e-10",
                    circuit.name()
                );
            }
        }
    }
}

#[test]
fn transpiled_circuits_fuse_correctly_too() {
    // The executors normally see transpiled circuits (device basis +
    // coupling map); make sure fusion holds there as well.
    for circuit in [catalog::qft(5), catalog::bv(5, 0b1101)] {
        let compiled = qsim_circuit::transpile::transpile(
            &circuit,
            &qsim_circuit::transpile::TranspileOptions::for_device(
                qsim_circuit::CouplingMap::yorktown(),
            ),
        )
        .unwrap();
        let layered = compiled.circuit.layered().unwrap();
        let model = NoiseModel::ibm_yorktown();
        let set = TrialGenerator::new(&layered, &model).unwrap().generate(200, 7);
        let baseline = BaselineExecutor::new(&layered).run(set.trials()).unwrap();
        let reuse = ReuseExecutor::new(&layered).run(set.trials()).unwrap();
        assert_eq!(baseline.outcomes, reuse.outcomes, "{}", circuit.name());

        let program = FusedProgram::new(&layered, &injection_cut_layers(set.trials()));
        for index in [0usize, 1, 50, 199] {
            let trial = &set.trials()[index];
            let fused = final_state_fused(&layered, &program, trial);
            let unfused = final_state_unfused(&layered, trial);
            assert!(fused.fidelity(&unfused).unwrap() >= 1.0 - 1e-10);
        }
    }
}
