//! Cross-run semantic prefix cache integration (`redsim-msvstore`).
//!
//! The reuse executor already shares the noiseless prefix *within* one
//! trial set: every trial's computation below the first injection cut runs
//! once per process. This module extends that sharing **across
//! processes**: before materializing the prefix, the run asks the
//! persistent store for a snapshot keyed by the exact fused float program
//! of the prefix (plus noise model and seed policy); after a miss it
//! publishes the frontier it computed.
//!
//! The exactness contract is the whole point:
//!
//! * **Hit**: the restored state is bitwise the state the run would have
//!   computed (equal keys ⇒ identical kernel sequence ⇒ identical f64
//!   results), so every downstream per-trial float operation — and thus
//!   every measurement outcome — is unchanged. The skipped prefix work is
//!   credited back into [`ExecStats`], so accounting is also identical.
//! * **Miss**: the run proceeds exactly as the uncached executor; the only
//!   addition is one state clone when the root frontier first parks at
//!   the publishable layer, after all telemetry for that advance fired.

use qsim_circuit::LayeredCircuit;
use qsim_noise::{NoiseModel, Trial};
use qsim_statevec::{MeasureOutcome, StateVector};
use qsim_telemetry::{names, Recorder};
use redsim_msvstore::{MsvStore, SemanticKey, DEFAULT_SEED_POLICY};

use crate::exec::{fuse_for_trials_traced, ExecStats, PrefixCache, ReuseExecutor, RunResult};
use crate::SimError;

/// What the semantic prefix cache did for one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheOutcome {
    /// The semantic key consulted (hex), or `None` when the run could not
    /// engage the cache (empty trial set or zero-layer circuit).
    pub key: Option<String>,
    /// The cacheable prefix layer (inclusive).
    pub prefix_layer: usize,
    /// Whether a stored snapshot seeded the run.
    pub hit: bool,
    /// Whether this run published a new snapshot.
    pub stored: bool,
    /// Snapshot bytes read on a hit.
    pub bytes_read: u64,
    /// Snapshot bytes written on a publishing miss.
    pub bytes_written: u64,
    /// Entries evicted by the publish.
    pub evicted: u64,
    /// Source-gate work the hit skipped (still counted in
    /// [`ExecStats::ops`]).
    pub credited_ops: u64,
    /// Amplitude-pass work the hit skipped (still counted in
    /// [`ExecStats::amplitude_passes`]).
    pub credited_passes: u64,
}

/// The layer the cacheable prefix extends through: the minimum first
/// injection layer over the set — everything below it is computed
/// identically by every trial — or the whole circuit when every trial is
/// error-free.
pub fn cacheable_prefix_layer(trials: &[Trial], n_layers: usize) -> usize {
    trials
        .iter()
        .filter_map(|t| t.injections().first())
        .map(|inj| inj.layer())
        .min()
        .unwrap_or(n_layers - 1)
}

/// Reordered execution through the persistent prefix store: consult before
/// computing, publish after a miss. Outcomes and [`ExecStats`] are bitwise
/// identical to [`ReuseExecutor::run`] on both paths. Store I/O is
/// best-effort — an unwritable store degrades to an unpublished run, never
/// a failed one.
///
/// # Errors
///
/// As [`ReuseExecutor::run`].
pub fn run_reordered_cached_traced<R: Recorder + ?Sized>(
    layered: &LayeredCircuit,
    model: &NoiseModel,
    trials: &[Trial],
    store: &MsvStore,
    recorder: &R,
) -> Result<(RunResult, CacheOutcome), SimError> {
    let executor = ReuseExecutor::new(layered);
    if trials.is_empty() || layered.n_layers() == 0 {
        let result = executor.run_traced(trials, recorder)?;
        return Ok((result, CacheOutcome::default()));
    }
    let prefix_layer = cacheable_prefix_layer(trials, layered.n_layers());
    let key = SemanticKey::compute(layered, prefix_layer, model, DEFAULT_SEED_POLICY);
    let program = fuse_for_trials_traced(layered, trials, recorder);
    let (credit_ops, credit_passes) = program.segment_costs_through(prefix_layer as i64);

    let mut outcome =
        CacheOutcome { key: Some(key.hex()), prefix_layer, ..CacheOutcome::default() };
    let restored = store.get(&key).and_then(|hit| {
        StateVector::from_amplitudes(&hit.amps).ok().map(|state| (state, hit.bytes_read))
    });
    if recorder.enabled() {
        recorder.counter(names::MSVSTORE_PREFIX_LAYER, prefix_layer as u64);
    }

    let mut outcomes: Vec<Option<MeasureOutcome>> = vec![None; trials.len()];
    let stats: ExecStats;
    match restored {
        Some((state, bytes_read)) => {
            outcome.hit = true;
            outcome.bytes_read = bytes_read;
            outcome.credited_ops = credit_ops;
            outcome.credited_passes = credit_passes;
            if recorder.enabled() {
                recorder.counter(names::MSVSTORE_HIT, 1);
                recorder.counter(names::MSVSTORE_BYTES_READ, bytes_read);
                recorder.counter(names::MSVSTORE_CREDITED_OPS, credit_ops);
                recorder.counter(names::MSVSTORE_CREDITED_PASSES, credit_passes);
            }
            stats = executor.run_streaming_prefix_traced(
                &program,
                trials,
                usize::MAX,
                PrefixCache::Seed {
                    layer: prefix_layer,
                    state,
                    ops: credit_ops,
                    passes: credit_passes,
                },
                |index, out| {
                    outcomes[index] = Some(out);
                },
                recorder,
            )?;
        }
        None => {
            if recorder.enabled() {
                recorder.counter(names::MSVSTORE_MISS, 1);
            }
            let mut captured: Option<StateVector> = None;
            stats = executor.run_streaming_prefix_traced(
                &program,
                trials,
                usize::MAX,
                PrefixCache::Capture { layer: prefix_layer, out: &mut captured },
                |index, out| {
                    outcomes[index] = Some(out);
                },
                recorder,
            )?;
            if let Some(state) = captured {
                if let Ok(put) = store.put(&key, state.amplitudes()) {
                    outcome.stored = put.stored;
                    outcome.bytes_written = put.bytes_written;
                    outcome.evicted = put.evicted;
                    if recorder.enabled() && put.stored {
                        recorder.counter(names::MSVSTORE_STORE, 1);
                        recorder.counter(names::MSVSTORE_BYTES_WRITTEN, put.bytes_written);
                        if put.evicted > 0 {
                            recorder.counter(names::MSVSTORE_EVICT, put.evicted);
                        }
                    }
                }
            }
        }
    }
    let result = RunResult {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every trial produced an outcome"))
            .collect(),
        stats,
    };
    Ok((result, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{scaled_rates, uniform_workload};
    use crate::Simulation;
    use qsim_circuit::catalog;
    use qsim_telemetry::AggregatingRecorder;

    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("semcache-test-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn workload() -> (LayeredCircuit, qsim_noise::TrialSet, NoiseModel) {
        let circuit = catalog::qft(4);
        let (layered, set) = uniform_workload(&circuit, scaled_rates(2.0), 200, 7);
        let model = NoiseModel::uniform(4, 2e-3, 2e-2, 2e-2);
        (layered, set, model)
    }

    #[test]
    fn cold_then_warm_matches_uncached_bitwise() {
        let tmp = TempDir::new("matrix");
        let store = MsvStore::open(&tmp.0, 0).unwrap();
        let (layered, set, model) = workload();
        let uncached = ReuseExecutor::new(&layered).run(set.trials()).unwrap();

        let (cold, cold_outcome) = run_reordered_cached_traced(
            &layered,
            &model,
            set.trials(),
            &store,
            &qsim_telemetry::NullRecorder,
        )
        .unwrap();
        assert!(!cold_outcome.hit);
        assert!(cold_outcome.stored);
        assert_eq!(cold.outcomes, uncached.outcomes, "miss path is bit-identical");
        assert_eq!(cold.stats, uncached.stats, "miss path accounting is identical");

        let (warm, warm_outcome) = run_reordered_cached_traced(
            &layered,
            &model,
            set.trials(),
            &store,
            &qsim_telemetry::NullRecorder,
        )
        .unwrap();
        assert!(warm_outcome.hit);
        assert!(!warm_outcome.stored);
        assert!(warm_outcome.credited_passes > 0);
        assert_eq!(warm.outcomes, uncached.outcomes, "hit path is bit-identical");
        assert_eq!(warm.stats, uncached.stats, "hit path accounting is identical");
        assert_eq!(cold_outcome.key, warm_outcome.key);
    }

    #[test]
    fn counters_report_hit_and_miss() {
        let tmp = TempDir::new("counters");
        let store = MsvStore::open(&tmp.0, 0).unwrap();
        let (layered, set, model) = workload();

        let recorder = AggregatingRecorder::new();
        run_reordered_cached_traced(&layered, &model, set.trials(), &store, &recorder).unwrap();
        let cold = recorder.report();
        assert_eq!(cold.counter(names::MSVSTORE_MISS), 1);
        assert_eq!(cold.counter(names::MSVSTORE_HIT), 0);
        assert_eq!(cold.counter(names::MSVSTORE_STORE), 1);
        assert!(cold.counter(names::MSVSTORE_BYTES_WRITTEN) > 0);

        let recorder = AggregatingRecorder::new();
        run_reordered_cached_traced(&layered, &model, set.trials(), &store, &recorder).unwrap();
        let warm = recorder.report();
        assert_eq!(warm.counter(names::MSVSTORE_HIT), 1);
        assert_eq!(warm.counter(names::MSVSTORE_MISS), 0);
        assert!(warm.counter(names::MSVSTORE_CREDITED_PASSES) > 0);
        assert!(warm.counter(names::MSVSTORE_BYTES_READ) > 0);
        // Exactness of the credit: kernel passes seen by telemetry plus
        // the credited prefix equal the executor's own accounting.
        let credited = warm.counter(names::MSVSTORE_CREDITED_PASSES);
        assert_eq!(
            warm.total_kernel_count() + credited,
            warm.counter("amplitude_passes"),
            "credit must close the telemetry gap exactly"
        );
    }

    #[test]
    fn facade_round_trip_with_histograms() {
        let tmp = TempDir::new("facade");
        let store = MsvStore::open(&tmp.0, 0).unwrap();
        let mut sim = Simulation::from_circuit(
            &catalog::bv(4, 0b101),
            NoiseModel::uniform(4, 5e-3, 5e-2, 2e-2),
        )
        .unwrap();
        sim.generate_trials(300, 5).unwrap();
        let plain = sim.run_reordered().unwrap();
        let (cold, c1) = sim.run_reordered_cached(&store).unwrap();
        let (warm, c2) = sim.run_reordered_cached(&store).unwrap();
        assert!(!c1.hit && c2.hit);
        let hist = |r: &RunResult| sim.histogram(r).iter().collect::<Vec<_>>();
        assert_eq!(hist(&plain), hist(&cold));
        assert_eq!(hist(&plain), hist(&warm));
    }

    #[test]
    fn error_free_sets_cache_the_whole_circuit() {
        let tmp = TempDir::new("errorfree");
        let store = MsvStore::open(&tmp.0, 0).unwrap();
        let circuit = catalog::ghz(4);
        let layered = circuit.layered().unwrap();
        let model = NoiseModel::uniform(4, 0.0, 0.0, 0.0);
        let trials: Vec<Trial> = (0..8).map(|seed| Trial::new(vec![], 0, seed)).collect();
        assert_eq!(cacheable_prefix_layer(&trials, layered.n_layers()), layered.n_layers() - 1);
        let uncached = ReuseExecutor::new(&layered).run(&trials).unwrap();
        let (cold, c1) = run_reordered_cached_traced(
            &layered,
            &model,
            &trials,
            &store,
            &qsim_telemetry::NullRecorder,
        )
        .unwrap();
        let (warm, c2) = run_reordered_cached_traced(
            &layered,
            &model,
            &trials,
            &store,
            &qsim_telemetry::NullRecorder,
        )
        .unwrap();
        assert!(c1.stored && c2.hit);
        assert_eq!(cold.outcomes, uncached.outcomes);
        assert_eq!(warm.outcomes, uncached.outcomes);
        assert_eq!(warm.stats, uncached.stats);
    }

    #[test]
    fn empty_trial_set_bypasses_the_store() {
        let tmp = TempDir::new("empty");
        let store = MsvStore::open(&tmp.0, 0).unwrap();
        let (layered, _, model) = workload();
        let (result, outcome) = run_reordered_cached_traced(
            &layered,
            &model,
            &[],
            &store,
            &qsim_telemetry::NullRecorder,
        )
        .unwrap();
        assert!(result.outcomes.is_empty());
        assert_eq!(outcome.key, None);
        assert_eq!(store.stats().entries, 0);
    }
}
