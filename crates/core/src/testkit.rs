//! Shared deterministic fixtures for the repository's test suites.
//!
//! The strategy/telemetry/observatory matrix tests and the executor crate
//! tests all need the same few ingredients — a seeded trial-set workload
//! over a catalog circuit, the Table-I suite transpiled to the Yorktown
//! device, the shipped QASM benchmarks with their noise models, and
//! reproducible "random" states and circuits. Each suite used to grow its
//! own ad-hoc copy; this module is the single seeded source. Everything
//! here is deterministic (xorshift, fixed seeds threaded through) so the
//! bitwise-identity contracts the tests state stay meaningful.

use std::path::Path;

use qsim_circuit::transpile::{transpile, TranspileOptions};
use qsim_circuit::{catalog, Circuit, CouplingMap, LayeredCircuit};
use qsim_noise::{Injection, NoiseModel, Trial, TrialGenerator, TrialSet};
use qsim_statevec::{Pauli, StateVector, C64};

/// Deterministic xorshift64* generator — reproducible across platforms,
/// zero dependencies. Used wherever a test needs "random" data.
#[derive(Clone, Debug)]
pub struct XorShift64(u64);

impl XorShift64 {
    /// Seeded generator (seed 0 is remapped; xorshift has no zero state).
    pub fn new(seed: u64) -> Self {
        XorShift64(if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed })
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform float in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `0..n` (`n > 0`).
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// The executor tests' canonical scale→rates mapping: `scale` multiplies
/// the base per-layer rates `(1e-2, 5e-2, 2e-2)`, each clamped to 1.
pub fn scaled_rates(scale: f64) -> (f64, f64, f64) {
    ((1e-2 * scale).min(1.0), (5e-2 * scale).min(1.0), (2e-2 * scale).min(1.0))
}

/// Layer `circuit` and generate a seeded trial set under a uniform noise
/// model with the given `(one-qubit, two-qubit, measurement)` error rates.
pub fn uniform_workload(
    circuit: &Circuit,
    rates: (f64, f64, f64),
    trials: usize,
    seed: u64,
) -> (LayeredCircuit, TrialSet) {
    let layered = circuit.layered().expect("catalog circuit layers");
    let model = NoiseModel::uniform(circuit.n_qubits(), rates.0, rates.1, rates.2);
    let set = TrialGenerator::new(&layered, &model).expect("native circuit").generate(trials, seed);
    (layered, set)
}

/// One point of a VQA parameter sweep: the ansatz evaluated at this
/// sweep angle, plus its deterministic noisy trial set.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Display name, `theta00`, `theta01`, …, in sweep order.
    pub name: String,
    /// The sweep parameter driving the final rotation layer.
    pub theta: f64,
    /// The layered ansatz at this angle.
    pub layered: LayeredCircuit,
    /// The trial set to execute at this point.
    pub trials: TrialSet,
}

/// A deterministic VQA parameter sweep: `n_points` evaluations of
/// [`catalog::vqa_ansatz`] at evenly spaced angles, each with
/// `trials_per_point` noisy trials whose injections all land at the final
/// gate layer (three in four trials; the rest carry readout flips only).
/// Because every injection sits at the last layer, the entire
/// pre-measurement state is the shared prefix of each point's trial set —
/// re-running any point replays work a semantic prefix cache can serve
/// wholesale. All randomness derives from `seed`, so two calls with equal
/// arguments produce gate-for-gate and trial-for-trial identical
/// workloads (the cross-run determinism the cache keys rely on).
pub fn vqa_sweep(
    n_qubits: usize,
    n_blocks: usize,
    n_points: usize,
    trials_per_point: usize,
    seed: u64,
) -> (NoiseModel, Vec<SweepPoint>) {
    let model = NoiseModel::uniform(n_qubits, 1e-3, 1e-2, 1e-2);
    let mut rng = XorShift64::new(seed);
    let mask = (1u64 << n_qubits) - 1;
    let points = (0..n_points)
        .map(|p| {
            let theta = 2.0 * std::f64::consts::PI * (p as f64 + 0.5) / n_points as f64;
            let circuit = catalog::vqa_ansatz(n_qubits, n_blocks, theta);
            let layered = circuit.layered().expect("ansatz layers");
            let tail = layered.n_layers() - 1;
            let trials = (0..trials_per_point)
                .map(|t| {
                    let trial_seed = rng.next_u64();
                    if t % 4 == 3 {
                        Trial::new(vec![], rng.next_u64() & mask, trial_seed)
                    } else {
                        let qubit = rng.index(n_qubits);
                        let pauli = [Pauli::X, Pauli::Y, Pauli::Z][rng.index(3)];
                        Trial::new(vec![Injection::single(tail, qubit, pauli)], 0, trial_seed)
                    }
                })
                .collect();
            SweepPoint {
                name: format!("theta{p:02}"),
                theta,
                layered,
                trials: TrialSet::new(n_qubits, tail + 1, trials),
            }
        })
        .collect();
    (model, points)
}

/// One named prefix-trie shape for the batched tree executor's
/// differential harness: a layered circuit plus a trial set whose
/// injection structure forces that shape.
#[derive(Clone, Debug)]
pub struct TreeWorkload {
    /// Shape label: `deep`, `balanced`, `shallow`, `skewed`,
    /// `single-trial`, or `diverge-0`.
    pub name: &'static str,
    /// The circuit the trials run over.
    pub layered: LayeredCircuit,
    /// The trial set realizing the shape.
    pub trials: TrialSet,
}

/// The canonical execution-tree shapes the tree-executor suites sweep:
/// three generated sets whose noise scale controls how early and how wide
/// the prefix trie branches (`deep` at 0.2× the base rates, `balanced` at
/// 1×, `shallow` at 8×), a hand-built `skewed` set of chains of varying
/// depth sharing one spine, and the two degenerate shapes — a
/// `single-trial` set (the frontier never exceeds one state) and
/// `diverge-0`, where every trial branches off the root at layer 0.
/// Deterministic in `(trials, seed)`; every call produces bitwise-equal
/// trial sets.
pub fn tree_workloads(trials: usize, seed: u64) -> Vec<TreeWorkload> {
    assert!(trials >= 4, "the shapes need at least 4 trials, got {trials}");
    let mut out = Vec::new();
    for (name, scale) in [("deep", 0.2), ("balanced", 1.0), ("shallow", 8.0)] {
        let (layered, set) = uniform_workload(&catalog::qft(4), scaled_rates(scale), trials, seed);
        out.push(TreeWorkload { name, layered, trials: set });
    }

    let layered = catalog::grover(3, 0b101, 1).layered().expect("catalog circuit layers");
    let (n_qubits, n_layers) = (layered.n_qubits(), layered.n_layers());
    let mut rng = XorShift64::new(seed ^ 0x72EE_5EED);
    let mask = (1u64 << n_qubits) - 1;
    let paulis = [Pauli::X, Pauli::Y, Pauli::Z];
    let step = (n_layers / 4).max(1);

    // Skewed: chains of depth 0..=3 hanging off a shared spine — trial i
    // carries the first `i % 4` links, so siblings at every depth coexist
    // with terminals.
    let skewed: Vec<Trial> = (0..trials)
        .map(|i| {
            let links = (0..i % 4)
                .map(|d| Injection::single((d * step).min(n_layers - 1), d % n_qubits, Pauli::X))
                .collect();
            Trial::new(links, rng.next_u64() & mask, rng.next_u64())
        })
        .collect();
    out.push(TreeWorkload {
        name: "skewed",
        layered: layered.clone(),
        trials: TrialSet::new(n_qubits, n_layers, skewed),
    });

    // Degenerate: one trial (the frontier is a single state end to end).
    let single = vec![Trial::new(
        vec![
            Injection::single(0, 0, Pauli::Y),
            Injection::single(n_layers - 1, 1 % n_qubits, Pauli::Z),
        ],
        rng.next_u64() & mask,
        rng.next_u64(),
    )];
    out.push(TreeWorkload {
        name: "single-trial",
        layered: layered.clone(),
        trials: TrialSet::new(n_qubits, n_layers, single),
    });

    // Degenerate: every trial diverges from the root at layer 0 — the
    // widest, flattest tree the trial count allows.
    let diverge: Vec<Trial> = (0..trials)
        .map(|i| {
            let inj = Injection::single(0, i % n_qubits, paulis[(i / n_qubits) % 3]);
            Trial::new(vec![inj], rng.next_u64() & mask, rng.next_u64())
        })
        .collect();
    out.push(TreeWorkload {
        name: "diverge-0",
        layered,
        trials: TrialSet::new(n_qubits, n_layers, diverge),
    });
    out
}

/// A reproducible fully-entangled `n_qubits` state: xorshift amplitudes
/// (real and imaginary parts in `[-1, 1)`), normalized. Every amplitude is
/// non-zero with probability 1, so kernels that only touch half the state
/// cannot pass by accident.
pub fn random_state(n_qubits: usize, seed: u64) -> StateVector {
    let mut rng = XorShift64::new(seed ^ (n_qubits as u64) << 32);
    let amps: Vec<C64> = (0..1usize << n_qubits)
        .map(|_| C64::new(2.0 * rng.next_f64() - 1.0, 2.0 * rng.next_f64() - 1.0))
        .collect();
    let mut state = StateVector::from_amplitudes(&amps).expect("power-of-two length");
    state.normalize();
    state
}

/// A seeded random circuit of `n_gates` gates drawn from a roster covering
/// every noise-native kernel class the fusion engine produces (phase,
/// diagonal, permutation, dense, controlled-phase, CX, SWAP), ending in a
/// full measurement round.
pub fn random_circuit(n_qubits: usize, n_gates: usize, seed: u64) -> Circuit {
    assert!(n_qubits >= 2, "random circuits need at least two qubits");
    let mut rng = XorShift64::new(seed);
    let mut qc = Circuit::new(format!("rand{n_qubits}s{seed}"), n_qubits, n_qubits);
    for _ in 0..n_gates {
        let q = rng.index(n_qubits);
        let p = (q + 1 + rng.index(n_qubits - 1)) % n_qubits;
        let theta = 2.0 * std::f64::consts::PI * rng.next_f64();
        match rng.index(11) {
            0 => {
                qc.h(q);
            }
            1 => {
                qc.x(q);
            }
            2 => {
                qc.y(q);
            }
            3 => {
                qc.z(q);
            }
            4 => {
                qc.t(q);
            }
            5 => {
                qc.rz(theta, q);
            }
            6 => {
                qc.rx(theta, q);
            }
            7 => {
                qc.cx(q, p);
            }
            8 => {
                qc.cz(q, p);
            }
            9 => {
                qc.cphase(theta, q, p);
            }
            _ => {
                qc.swap(q, p);
            }
        };
    }
    qc.measure_all();
    qc
}

/// The Table-I logical suite transpiled to the IBM Yorktown device:
/// `(logical name, device-level layered circuit)` pairs. Pair with
/// [`NoiseModel::ibm_yorktown`] for device-realistic trials.
pub fn yorktown_suite() -> Vec<(String, LayeredCircuit)> {
    let options = TranspileOptions::for_device(CouplingMap::yorktown());
    catalog::realistic_suite()
        .into_iter()
        .map(|logical| {
            let compiled = transpile(&logical, &options).expect("suite compiles");
            let layered = compiled.circuit.layered().expect("compiled circuit layers");
            (logical.name().to_owned(), layered)
        })
        .collect()
}

fn qasm_suite(dir: &Path) -> Vec<(String, Circuit)> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .map(|e| e.expect("dir entry").path())
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no benchmarks under {}", dir.display());
    paths
        .into_iter()
        .map(|path| {
            let circuit =
                qsim_qasm::parse_file(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            (circuit.name().to_owned(), circuit)
        })
        .collect()
}

/// The shipped device-native Yorktown QASM benchmarks under
/// `benchmarks_root/yorktown`, each with the Yorktown noise model.
pub fn yorktown_benchmarks(benchmarks_root: &Path) -> Vec<(String, LayeredCircuit, NoiseModel)> {
    let model = NoiseModel::ibm_yorktown();
    qasm_suite(&benchmarks_root.join("yorktown"))
        .into_iter()
        .map(|(name, circuit)| {
            let layered = circuit.layered().expect("native benchmark layers");
            (name, layered, model.clone())
        })
        .collect()
}

/// Every shipped QASM benchmark under `benchmarks_root` with its noise
/// model: the device-native `yorktown` suite as-is under the Yorktown
/// model, and the `logical` suite lowered (Toffolis etc. — all-to-all, no
/// routing) under a width-matched uniform model.
pub fn shipped_benchmarks(benchmarks_root: &Path) -> Vec<(String, LayeredCircuit, NoiseModel)> {
    let mut cases: Vec<(String, LayeredCircuit, NoiseModel)> = yorktown_benchmarks(benchmarks_root)
        .into_iter()
        .map(|(name, layered, model)| (format!("yorktown/{name}"), layered, model))
        .collect();
    let lowering = TranspileOptions {
        coupling: None,
        fuse_single_qubit: true,
        cancel_cx: true,
        commute_rotations: true,
    };
    for (name, circuit) in qasm_suite(&benchmarks_root.join("logical")) {
        let lowered = transpile(&circuit, &lowering).expect("lowering").circuit;
        let layered = lowered.layered().expect("lowered benchmark layers");
        let model = NoiseModel::uniform(layered.n_qubits(), 1e-3, 1e-2, 1e-2);
        cases.push((format!("logical/{name}"), layered, model));
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_in_range() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut zero = XorShift64::new(0);
        assert_ne!(zero.next_u64(), 0, "zero seed must be remapped");
        for _ in 0..100 {
            let f = a.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(a.index(5) < 5);
        }
    }

    #[test]
    fn random_state_is_normalized_dense_and_reproducible() {
        for n in [1usize, 3, 5] {
            let s = random_state(n, 42);
            let norm: f64 = s.amplitudes().iter().map(|a| a.norm_sqr()).sum();
            assert!((norm - 1.0).abs() < 1e-12, "{n} qubits: norm {norm}");
            assert!(
                s.amplitudes().iter().all(|a| a.re != 0.0 || a.im != 0.0),
                "{n} qubits: zero amplitude"
            );
            assert_eq!(s.amplitudes(), random_state(n, 42).amplitudes(), "not reproducible");
        }
    }

    #[test]
    fn random_circuits_layer_and_simulate() {
        for seed in [1u64, 2, 3] {
            let qc = random_circuit(4, 30, seed);
            assert_eq!(qc, random_circuit(4, 30, seed), "not reproducible");
            let layered = qc.layered().expect("layers");
            assert!(layered.n_layers() > 0);
        }
    }

    #[test]
    fn uniform_workload_matches_its_ingredients() {
        let (layered, set) = uniform_workload(&catalog::qft(4), scaled_rates(2.0), 50, 11);
        assert_eq!(layered.n_qubits(), 4);
        assert_eq!(set.trials().len(), 50);
        assert_eq!(scaled_rates(2.0), (2e-2, 1e-1, 4e-2));
        assert_eq!(scaled_rates(1e9), (1.0, 1.0, 1.0), "rates must clamp");
    }

    #[test]
    fn vqa_sweep_is_deterministic_with_tail_concentrated_errors() {
        let (model, points) = vqa_sweep(4, 3, 5, 8, 17);
        assert_eq!(points.len(), 5);
        assert_eq!(model.n_qubits(), 4);
        let depth = points[0].layered.n_layers();
        for point in &points {
            assert_eq!(point.layered.n_layers(), depth, "sweep points share geometry");
            assert_eq!(point.trials.trials().len(), 8);
            for trial in point.trials.trials() {
                for inj in trial.injections() {
                    assert_eq!(inj.layer(), depth - 1, "errors land at the tail");
                }
            }
            assert!(
                point.trials.trials().iter().any(|t| t.injections().is_empty()),
                "some trials are readout-only"
            );
        }
        // Same seed → bitwise-identical workload; the cache keys depend on it.
        let (_, again) = vqa_sweep(4, 3, 5, 8, 17);
        for (a, b) in points.iter().zip(&again) {
            assert_eq!(a.theta.to_bits(), b.theta.to_bits());
            assert_eq!(a.trials.trials(), b.trials.trials());
        }
        assert_ne!(points[0].theta.to_bits(), points[1].theta.to_bits());
    }

    #[test]
    fn tree_workloads_cover_the_documented_shapes() {
        let shapes = tree_workloads(24, 7);
        let names: Vec<&str> = shapes.iter().map(|w| w.name).collect();
        assert_eq!(names, ["deep", "balanced", "shallow", "skewed", "single-trial", "diverge-0"]);
        for w in &shapes {
            let expected = if w.name == "single-trial" { 1 } else { 24 };
            assert_eq!(w.trials.trials().len(), expected, "{}", w.name);
            assert_eq!(w.trials.n_qubits(), w.layered.n_qubits(), "{}", w.name);
            assert_eq!(w.trials.n_layers(), w.layered.n_layers(), "{}", w.name);
            for trial in w.trials.trials() {
                for inj in trial.injections() {
                    assert!(inj.layer() < w.layered.n_layers(), "{}: layer in range", w.name);
                }
            }
        }
        // The shallow shape must branch earlier/wider than the deep one.
        let distinct = |w: &TreeWorkload| {
            let mut lists: Vec<_> = w.trials.trials().iter().map(Trial::injections).collect();
            lists.sort_unstable();
            lists.dedup();
            lists.len()
        };
        assert!(distinct(&shapes[2]) > distinct(&shapes[0]), "shallow branches wider than deep");
        assert!(
            shapes[5]
                .trials
                .trials()
                .iter()
                .all(|t| t.injections().len() == 1 && t.injections()[0].layer() == 0),
            "diverge-0 branches at layer 0 only"
        );
        // Deterministic: same arguments, bitwise-equal trial sets.
        for (a, b) in shapes.iter().zip(&tree_workloads(24, 7)) {
            assert_eq!(a.trials.trials(), b.trials.trials(), "{}", a.name);
        }
    }

    #[test]
    fn yorktown_suite_matches_the_paper_roster() {
        let suite = yorktown_suite();
        assert_eq!(suite.len(), 12);
        assert!(suite.iter().all(|(_, layered)| layered.n_layers() > 0));
    }
}
