#![warn(missing_docs)]
//! Redundancy-eliminating noisy quantum-circuit simulation — the core
//! contribution of *Eliminating Redundant Computation in Noisy Quantum
//! Computing Simulation* (Li, Ding, Xie — DAC 2020).
//!
//! Monte-Carlo noisy simulation runs the same circuit for thousands of
//! error-injection trials. Trials that share their first *k* injected
//! errors share every intermediate state up to the *k*-th error. This crate
//! implements the paper's scheme end to end:
//!
//! 1. [`order`] — the trial-reorder algorithm (the paper's Algorithm 1) and
//!    its equivalence with one lexicographic sort under a
//!    missing-injection-sorts-last key.
//! 2. [`analysis`] — a static cost model computing, **without touching any
//!    amplitudes**, the number of basic operations and the peak number of
//!    Maintained State Vectors (MSVs) of the optimized execution. This is
//!    the engine behind the paper's platform-independent metrics (§V) and
//!    makes the 10⁶-trial / 40-qubit scalability study tractable.
//! 3. [`exec`] — real executors over `qsim-statevec`:
//!    [`exec::BaselineExecutor`] (every trial from scratch — the paper's
//!    baseline) and [`exec::ReuseExecutor`] (prefix-state caching with eager
//!    dropping). Both produce **bitwise identical** measurement outcomes,
//!    realising the paper's "mathematically equivalent" guarantee, and both
//!    report operation counts that the static analyzer predicts exactly.
//! 4. [`Simulation`] — a builder-style façade tying circuit, noise model,
//!    trial generation, analysis, and execution together.
//!
//! Every execution strategy also has a `*_traced` variant taking a
//! [`qsim_telemetry::Recorder`]: structured runtime telemetry (per-kernel
//! timings, MSV lifecycle with live residency, prefix-cache hit rates)
//! whose totals mirror [`ExecStats`] **exactly** — the observation plane
//! never drifts from the accounting plane. Passing
//! [`qsim_telemetry::NullRecorder`] compiles the instrumentation out.
//!
//! # Quickstart
//!
//! ```
//! use qsim_circuit::catalog;
//! use qsim_noise::NoiseModel;
//! use redsim::Simulation;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = catalog::bv(4, 0b111);
//! let mut sim = Simulation::from_circuit(&circuit, NoiseModel::uniform(4, 1e-2, 1e-1, 1e-2))?;
//! sim.generate_trials(256, 42)?;
//! let report = sim.analyze()?;
//! assert!(report.optimized_ops < report.baseline_ops);
//!
//! let baseline = sim.run_baseline()?;
//! let optimized = sim.run_reordered()?;
//! assert_eq!(baseline.outcomes, optimized.outcomes); // bitwise identical
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod compressed;
pub mod estimate;
pub mod exec;
mod histogram;
pub mod order;
pub mod parallel;
pub mod reference;
pub mod semcache;
mod sim_error;
mod simulation;
pub mod testkit;
pub mod tree;

pub use analysis::CostReport;
pub use exec::{ExecStats, PrefixCache, RunResult};
pub use histogram::Histogram;
pub use order::{compare_trials, lcp, reorder, reorder_recursive};
pub use semcache::CacheOutcome;
pub use sim_error::SimError;
pub use simulation::Simulation;
pub use tree::TreeExecutor;
