//! A storage-compressed variant of the reuse executor.
//!
//! The paper keeps the MSV count low because each cached frontier costs a
//! full `2ⁿ` amplitude vector; its related work (compressed simulation,
//! QuIDD/decision-diagram state storage) attacks the *per-state* cost
//! instead. This module combines the two: the same reordered prefix-caching
//! traversal, but frontiers at rest are held as
//! [`qsim_statevec::StoredState`] (exact zero-elided sparse form when
//! profitable). Structured circuits spend long prefixes in nearly-basis
//! states, where a cached frontier shrinks from `2ⁿ` amplitudes to a
//! handful of entries.
//!
//! Operation counts and measurement outcomes are identical to
//! [`crate::exec::ReuseExecutor`]; only the at-rest representation differs.
//! Like the dense executors, the traversal runs the trial set's shared
//! [`qsim_circuit::FusedProgram`], so outcomes stay bitwise comparable
//! across every execution strategy.

use qsim_circuit::{FusedProgram, LayeredCircuit};
use qsim_noise::Trial;
use qsim_statevec::{MeasureOutcome, StateVector, StoredState};
use qsim_telemetry::{Heartbeat, KernelClass, MsvEvent, NullRecorder, Recorder};

use crate::exec::{ExecStats, RunResult};
use crate::order::{compare_trials, lcp};
use crate::SimError;

/// Memory accounting of one compressed run.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CompressionStats {
    /// Peak bytes held by cached frontiers in compressed form.
    pub peak_stored_bytes: usize,
    /// What the same peak would cost dense (`peak_msv × 2ⁿ × 16`).
    pub peak_dense_bytes: usize,
    /// Frontier stores performed.
    pub frames_stored: u64,
    /// How many of those chose the sparse representation.
    pub sparse_frames: u64,
    /// Bytes written across *all* frontier stores, compressed.
    pub total_stored_bytes: u64,
    /// Bytes the same stores would have written dense.
    pub total_dense_bytes: u64,
}

impl CompressionStats {
    /// Compression ratio `peak_stored / peak_dense` (1.0 when nothing was
    /// cached or nothing compressed).
    pub fn peak_ratio(&self) -> f64 {
        if self.peak_dense_bytes == 0 {
            1.0
        } else {
            self.peak_stored_bytes as f64 / self.peak_dense_bytes as f64
        }
    }

    /// Mean at-rest compression across every frontier store,
    /// `total_stored / total_dense` (1.0 when nothing was stored). Peak
    /// instants in mid-circuit regions are often all-dense even when the
    /// bulk of stores compress well; this is the time-averaged view.
    pub fn mean_ratio(&self) -> f64 {
        if self.total_dense_bytes == 0 {
            1.0
        } else {
            self.total_stored_bytes as f64 / self.total_dense_bytes as f64
        }
    }
}

struct Frame {
    depth: usize,
    done: i64,
    stored: StoredState,
}

/// Bytes held by the cached frontiers in their at-rest (compressed) form
/// — the compressed executor's resident-memory gauge for heartbeats.
fn stored_resident_bytes(stack: &[Frame]) -> u64 {
    stack.iter().map(|f| f.stored.stored_bytes() as u64).sum()
}

/// Advance through fused segments, observing per-kernel timings when the
/// recorder is live (mirrors the dense executors' instrumentation,
/// including the batched fallback for recorders that decline per-kernel
/// timing).
fn advance_traced<R: Recorder + ?Sized>(
    program: &FusedProgram,
    state: &mut StateVector,
    done: &mut i64,
    through: i64,
    recorder: &R,
    phase: &'static str,
) -> Result<(u64, u64), SimError> {
    if !recorder.enabled() {
        return Ok(program.apply_through(state, done, through)?);
    }
    if !recorder.kernel_timing() {
        let start = recorder.now_ns();
        let counts = program.apply_through(state, done, through)?;
        let ns = recorder.now_ns().saturating_sub(start);
        if counts.1 > 0 {
            recorder.kernel(phase, KernelClass::Unfused, through.max(0) as u64, counts.1, ns);
        }
        return Ok(counts);
    }
    Ok(program.apply_through_observed(state, done, through, &mut |op, layer, ns| {
        let class = KernelClass::from_name(op.kernel_name()).unwrap_or(KernelClass::Unfused);
        recorder.kernel(phase, class, layer as u64, 1, ns);
    })?)
}

/// Run the reordered, prefix-cached execution with compressed at-rest
/// frontiers. Returns the usual [`RunResult`] (outcomes in input order,
/// ops/MSV identical to the dense executor) plus [`CompressionStats`].
///
/// # Errors
///
/// Returns [`SimError`] for trials whose injections do not fit the circuit.
pub fn run_reordered_compressed(
    layered: &LayeredCircuit,
    trials: &[Trial],
) -> Result<(RunResult, CompressionStats), SimError> {
    run_reordered_compressed_traced(layered, trials, &NullRecorder)
}

/// [`run_reordered_compressed`] with instrumentation streamed into
/// `recorder`: per-kernel timings (phases `"compressed/shared"`,
/// `"compressed/remainder"`), MSV lifecycle and prefix-cache events
/// matching the dense reuse executor, `compress.*` counters mirroring
/// [`CompressionStats`], and a `"run/compressed"` span. With a
/// [`NullRecorder`] this is exactly [`run_reordered_compressed`].
///
/// # Errors
///
/// As [`run_reordered_compressed`].
pub fn run_reordered_compressed_traced<R: Recorder + ?Sized>(
    layered: &LayeredCircuit,
    trials: &[Trial],
    recorder: &R,
) -> Result<(RunResult, CompressionStats), SimError> {
    let n_layers = layered.n_layers();
    for trial in trials {
        if let Some(inj) = trial.injections().last() {
            if inj.layer() >= n_layers {
                return Err(SimError::LayerOutOfRange { layer: inj.layer(), n_layers });
            }
        }
    }
    #[cfg(feature = "paranoid")]
    crate::exec::paranoid_verify(layered, trials, usize::MAX)?;
    let span_start = recorder.now_ns();
    let last_layer = n_layers as i64 - 1;
    let program = crate::exec::fuse_for_trials_traced(layered, trials, recorder);
    let dense_bytes = StoredState::dense_bytes(layered.n_qubits());
    let mut order: Vec<usize> = (0..trials.len()).collect();
    order.sort_by(|&a, &b| compare_trials(&trials[a], &trials[b]));

    let mut outcomes: Vec<Option<MeasureOutcome>> = vec![None; trials.len()];
    let mut ops: u64 = 0;
    let mut fused_ops: u64 = 0;
    let mut passes: u64 = 0;
    let mut peak_msv = usize::from(!trials.is_empty());
    let mut comp = CompressionStats::default();
    let store = |comp: &mut CompressionStats, state: StateVector| -> StoredState {
        let stored = StoredState::compress_owned(state);
        comp.frames_stored += 1;
        if stored.is_sparse() {
            comp.sparse_frames += 1;
        }
        comp.total_stored_bytes += stored.stored_bytes() as u64;
        comp.total_dense_bytes += dense_bytes as u64;
        stored
    };

    let mut stack: Vec<Frame> = vec![Frame {
        depth: 0,
        done: -1,
        stored: store(&mut comp, StateVector::zero_state(layered.n_qubits())),
    }];
    let track_bytes = |comp: &mut CompressionStats, stack: &[Frame], msv_peak: usize| {
        let bytes: usize = stack.iter().map(|f| f.stored.stored_bytes()).sum();
        comp.peak_stored_bytes = comp.peak_stored_bytes.max(bytes);
        comp.peak_dense_bytes = comp.peak_dense_bytes.max(msv_peak * dense_bytes);
    };
    track_bytes(&mut comp, &stack, peak_msv);
    if recorder.enabled() && !trials.is_empty() {
        recorder.msv(MsvEvent::Create, 0, 1);
    }

    for (pos, &orig) in order.iter().enumerate() {
        let cur = &trials[orig];
        let injections = cur.injections();
        let keep = match order.get(pos + 1) {
            Some(&next) => lcp(cur, &trials[next]),
            None => 0,
        };
        let mut d = stack.last().expect("stack holds the root").depth;
        if recorder.enabled() {
            recorder.cache(d, pos > 0);
            if pos > 0 {
                recorder.msv(MsvEvent::Reuse, d, stack.len());
            }
        }
        loop {
            if d == injections.len() {
                // Terminal: finish the circuit on the node frontier.
                let top = stack.last_mut().expect("nonempty stack");
                let mut state = top.stored.to_state();
                let (src, f) = advance_traced(
                    &program,
                    &mut state,
                    &mut top.done,
                    last_layer,
                    recorder,
                    "compressed/shared",
                )?;
                ops += src;
                fused_ops += f;
                passes += f;
                outcomes[orig] = Some(crate::exec::measure(layered, &state, cur));
                top.stored = store(&mut comp, state);
                while stack.last().is_some_and(|f| f.depth > keep) {
                    let frame = stack.pop().expect("checked nonempty");
                    if recorder.enabled() {
                        recorder.msv(MsvEvent::Drop, frame.depth, stack.len());
                    }
                }
                track_bytes(&mut comp, &stack, peak_msv);
                if recorder.enabled() {
                    recorder.heartbeat(Heartbeat {
                        completed: 1,
                        depth: d as u64,
                        resident_bytes: stored_resident_bytes(&stack),
                    });
                }
                break;
            }
            let target = injections[d].layer() as i64;
            {
                let top = stack.last_mut().expect("nonempty stack");
                if top.done < target {
                    let mut state = top.stored.to_state();
                    let (src, f) = advance_traced(
                        &program,
                        &mut state,
                        &mut top.done,
                        target,
                        recorder,
                        "compressed/shared",
                    )?;
                    ops += src;
                    fused_ops += f;
                    passes += f;
                    top.stored = store(&mut comp, state);
                }
            }
            if d < keep {
                let mut child = stack.last().expect("nonempty stack").stored.to_state();
                crate::exec::inject_traced(
                    &injections[d],
                    &mut child,
                    recorder,
                    "compressed/branch",
                )?;
                ops += 1;
                passes += 1;
                stack.push(Frame { depth: d + 1, done: target, stored: store(&mut comp, child) });
                peak_msv = peak_msv.max(stack.len());
                if recorder.enabled() {
                    recorder.msv(MsvEvent::Fork, d + 1, stack.len());
                }
                track_bytes(&mut comp, &stack, peak_msv);
                d += 1;
            } else {
                let mut working = if d <= keep {
                    stack.last().expect("nonempty stack").stored.to_state()
                } else {
                    let frame = stack.pop().expect("nonempty stack");
                    if recorder.enabled() {
                        recorder.msv(MsvEvent::Drop, frame.depth, stack.len());
                    }
                    while stack.last().is_some_and(|f| f.depth > keep) {
                        let dropped = stack.pop().expect("checked nonempty");
                        if recorder.enabled() {
                            recorder.msv(MsvEvent::Drop, dropped.depth, stack.len());
                        }
                    }
                    frame.stored.into_state()
                };
                let mut done = target;
                crate::exec::inject_traced(
                    &injections[d],
                    &mut working,
                    recorder,
                    "compressed/remainder",
                )?;
                ops += 1;
                passes += 1;
                for inj in &injections[d + 1..] {
                    let (src, f) = advance_traced(
                        &program,
                        &mut working,
                        &mut done,
                        inj.layer() as i64,
                        recorder,
                        "compressed/remainder",
                    )?;
                    ops += src;
                    fused_ops += f;
                    passes += f;
                    crate::exec::inject_traced(
                        inj,
                        &mut working,
                        recorder,
                        "compressed/remainder",
                    )?;
                    ops += 1;
                    passes += 1;
                }
                let (src, f) = advance_traced(
                    &program,
                    &mut working,
                    &mut done,
                    last_layer,
                    recorder,
                    "compressed/remainder",
                )?;
                ops += src;
                fused_ops += f;
                passes += f;
                outcomes[orig] = Some(crate::exec::measure(layered, &working, cur));
                track_bytes(&mut comp, &stack, peak_msv);
                if recorder.enabled() {
                    recorder.heartbeat(Heartbeat {
                        completed: 1,
                        depth: d as u64,
                        resident_bytes: stored_resident_bytes(&stack),
                    });
                }
                break;
            }
        }
    }

    let stats = ExecStats {
        ops,
        fused_ops,
        amplitude_passes: passes,
        peak_msv: if trials.is_empty() { 0 } else { peak_msv },
        n_trials: trials.len(),
        ..ExecStats::default()
    };
    if recorder.enabled() {
        crate::exec::record_stats_counters(recorder, &stats);
        recorder.counter("compress.frames_stored", comp.frames_stored);
        recorder.counter("compress.sparse_frames", comp.sparse_frames);
        recorder.counter("compress.stored_bytes", comp.total_stored_bytes);
        recorder.counter("compress.dense_bytes", comp.total_dense_bytes);
        recorder.span("run/compressed", span_start, recorder.now_ns());
    }
    Ok((
        RunResult {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every trial produced an outcome"))
                .collect(),
            stats,
        },
        comp,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::exec::BaselineExecutor;
    use crate::testkit::uniform_workload;
    use qsim_circuit::catalog;

    fn run_case(circuit: &qsim_circuit::Circuit, rate_scale: f64, n: usize) {
        let rates = ((1e-2 * rate_scale).min(1.0), (5e-2 * rate_scale).min(1.0), 1e-2);
        let (layered, set) = uniform_workload(circuit, rates, n, 3);
        let baseline = BaselineExecutor::new(&layered).run(set.trials()).unwrap();
        let (result, comp) = run_reordered_compressed(&layered, set.trials()).unwrap();
        assert_eq!(result.outcomes, baseline.outcomes, "{}", circuit.name());
        let report = analyze(&layered, &set).unwrap();
        assert_eq!(result.stats.ops, report.optimized_ops, "{}", circuit.name());
        assert_eq!(result.stats.peak_msv, report.msv_peak, "{}", circuit.name());
        assert!(comp.peak_stored_bytes <= comp.peak_dense_bytes);
        assert!(comp.frames_stored > 0);
    }

    #[test]
    fn compressed_run_is_outcome_and_ops_exact() {
        run_case(&catalog::bv(4, 0b101), 1.0, 300);
        run_case(&catalog::qft(4), 2.0, 300);
        run_case(&catalog::seven_x1_mod15(), 1.0, 200);
    }

    #[test]
    fn structured_circuits_compress_their_frontiers() {
        // BV frontiers before the final Hadamards are near-basis states.
        let (layered, set) = uniform_workload(&catalog::bv(5, 0b1111), (1e-2, 5e-2, 0.0), 500, 9);
        let (_, comp) = run_reordered_compressed(&layered, set.trials()).unwrap();
        assert!(comp.sparse_frames > 0, "no frontier ever compressed");
        // BV's mid-circuit |±…±⟩ frontiers are fully dense, so the peak
        // *instant* cannot compress; the at-rest stores (terminal near-basis
        // states) are where the memory win lives.
        assert!(comp.peak_ratio() <= 1.0);
        assert!(comp.mean_ratio() < 1.0, "mean ratio {} shows no memory win", comp.mean_ratio());
    }

    #[test]
    fn dense_random_circuits_fall_back_to_dense_storage() {
        let (layered, set) =
            uniform_workload(&catalog::quantum_volume(5, 3, 4), (1e-2, 5e-2, 0.0), 200, 2);
        let (result, comp) = run_reordered_compressed(&layered, set.trials()).unwrap();
        // QV states are dense almost immediately: ratio ≈ 1 but never worse.
        assert!(comp.peak_ratio() <= 1.0);
        assert_eq!(result.outcomes.len(), 200);
    }

    #[test]
    fn compressed_telemetry_mirrors_stats_exactly() {
        use qsim_telemetry::AggregatingRecorder;
        let (layered, set) = uniform_workload(&catalog::qft(4), (2e-2, 8e-2, 1e-2), 300, 17);
        let recorder = AggregatingRecorder::new();
        let (result, comp) =
            run_reordered_compressed_traced(&layered, set.trials(), &recorder).unwrap();
        let report = recorder.report();
        assert_eq!(report.counter("ops"), result.stats.ops);
        assert_eq!(report.counter("fused_ops"), result.stats.fused_ops);
        assert_eq!(report.counter("amplitude_passes"), result.stats.amplitude_passes);
        assert_eq!(report.peak_residency(), result.stats.peak_msv);
        assert_eq!(report.total_kernel_count(), result.stats.amplitude_passes);
        assert_eq!(report.counter("compress.frames_stored"), comp.frames_stored);
        assert_eq!(report.counter("compress.sparse_frames"), comp.sparse_frames);
        assert!(report.spans.contains_key("run/compressed"));
        // The traced run is bitwise identical to the untraced one.
        let (plain, plain_comp) = run_reordered_compressed(&layered, set.trials()).unwrap();
        assert_eq!(plain, result);
        assert_eq!(plain_comp, comp);
    }

    #[test]
    fn empty_trials_compressed() {
        let layered = catalog::rb().layered().unwrap();
        let (result, comp) = run_reordered_compressed(&layered, &[]).unwrap();
        assert!(result.outcomes.is_empty());
        assert_eq!(comp.frames_stored, 1); // the root store
    }
}
