//! Multi-threaded execution — the "system level" axis the paper declares
//! its algorithm-level optimization compatible with (§II: "Our acceleration
//! is from algorithm-level and is compatible with these system-level
//! approaches").
//!
//! * [`run_baseline_parallel`] — trials are independent, so the baseline
//!   parallelizes embarrassingly.
//! * [`run_reordered_parallel`] — the sorted trial order is split into
//!   contiguous chunks, each executed with prefix-state caching by one
//!   thread. Only the chunk's first trial loses its cross-chunk sharing, so
//!   the total operation count exceeds the single-threaded optimum by at
//!   most `threads − 1` full trial costs — while outcomes remain **bitwise
//!   identical** to the baseline (every trial still executes its exact
//!   operation sequence).

use qsim_circuit::LayeredCircuit;
use qsim_noise::Trial;
use qsim_statevec::MeasureOutcome;

use crate::exec::{BaselineExecutor, ExecStats, ReuseExecutor, RunResult};
use crate::order::compare_trials;
use crate::SimError;

/// Resolve a thread-count request: 0 means "use available parallelism".
fn resolve_threads(requested: usize, n_items: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = if requested == 0 { hw } else { requested };
    threads.clamp(1, n_items.max(1))
}

/// Execute trials with the baseline strategy across `n_threads` threads
/// (`0` = all available cores). Outcomes are in input order and bitwise
/// identical to the sequential baseline.
///
/// # Errors
///
/// Returns the first [`SimError`] any worker hits.
pub fn run_baseline_parallel(
    layered: &LayeredCircuit,
    trials: &[Trial],
    n_threads: usize,
) -> Result<RunResult, SimError> {
    let threads = resolve_threads(n_threads, trials.len());
    if threads <= 1 || trials.is_empty() {
        return BaselineExecutor::new(layered).run(trials);
    }
    let chunk_size = trials.len().div_ceil(threads);
    let results: Vec<Result<RunResult, SimError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = trials
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || BaselineExecutor::new(layered).run(chunk)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let mut outcomes = Vec::with_capacity(trials.len());
    let mut stats = ExecStats { ops: 0, peak_msv: 0, n_trials: trials.len() };
    for result in results {
        let part = result?;
        outcomes.extend(part.outcomes);
        stats.ops += part.stats.ops;
    }
    Ok(RunResult { outcomes, stats })
}

/// Execute trials with reordering + prefix caching across `n_threads`
/// threads (`0` = all available cores). The global sorted order is split
/// into contiguous chunks; each worker caches prefixes within its chunk.
/// Outcomes are in input order and bitwise identical to the baseline.
///
/// # Errors
///
/// Returns the first [`SimError`] any worker hits.
pub fn run_reordered_parallel(
    layered: &LayeredCircuit,
    trials: &[Trial],
    n_threads: usize,
) -> Result<RunResult, SimError> {
    let threads = resolve_threads(n_threads, trials.len());
    if threads <= 1 || trials.is_empty() {
        return ReuseExecutor::new(layered).run(trials);
    }
    // Global sort once, then hand contiguous sorted slices to workers. Each
    // worker receives (original_index, trial) pairs so it can report
    // outcomes against the caller's order.
    let mut order: Vec<usize> = (0..trials.len()).collect();
    order.sort_by(|&a, &b| compare_trials(&trials[a], &trials[b]));
    let chunk_size = order.len().div_ceil(threads);

    type ChunkResult = Result<(Vec<(usize, MeasureOutcome)>, ExecStats), SimError>;
    let results: Vec<ChunkResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = order
            .chunks(chunk_size)
            .map(|idx_chunk| {
                scope.spawn(move || -> ChunkResult {
                    // The chunk is already sorted; ReuseExecutor re-sorts
                    // internally (stable, already-ordered input = no-op
                    // permutation) and returns outcomes in chunk order.
                    let chunk_trials: Vec<Trial> =
                        idx_chunk.iter().map(|&i| trials[i].clone()).collect();
                    let part = ReuseExecutor::new(layered).run(&chunk_trials)?;
                    Ok((
                        idx_chunk.iter().copied().zip(part.outcomes).collect(),
                        part.stats,
                    ))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    let mut outcomes: Vec<Option<MeasureOutcome>> = vec![None; trials.len()];
    let mut stats = ExecStats { ops: 0, peak_msv: 0, n_trials: trials.len() };
    for result in results {
        let (pairs, part_stats) = result?;
        for (index, outcome) in pairs {
            outcomes[index] = Some(outcome);
        }
        stats.ops += part_stats.ops;
        // Workers hold their caches concurrently: peak memory is the sum.
        stats.peak_msv += part_stats.peak_msv;
    }
    Ok(RunResult {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every trial executed"))
            .collect(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::BaselineExecutor;
    use qsim_circuit::catalog;
    use qsim_noise::{NoiseModel, TrialGenerator, TrialSet};

    fn workload(n: usize) -> (LayeredCircuit, TrialSet) {
        let layered = catalog::qft(4).layered().unwrap();
        let model = NoiseModel::uniform(4, 2e-2, 8e-2, 2e-2);
        let set = TrialGenerator::new(&layered, &model).unwrap().generate(n, 5);
        (layered, set)
    }

    #[test]
    fn parallel_baseline_matches_sequential_bitwise() {
        let (layered, set) = workload(500);
        let sequential = BaselineExecutor::new(&layered).run(set.trials()).unwrap();
        for threads in [1usize, 2, 4, 7] {
            let parallel = run_baseline_parallel(&layered, set.trials(), threads).unwrap();
            assert_eq!(parallel.outcomes, sequential.outcomes, "{threads} threads");
            assert_eq!(parallel.stats.ops, sequential.stats.ops);
        }
    }

    #[test]
    fn parallel_reuse_matches_baseline_bitwise() {
        let (layered, set) = workload(500);
        let baseline = BaselineExecutor::new(&layered).run(set.trials()).unwrap();
        let sequential = ReuseExecutor::new(&layered).run(set.trials()).unwrap();
        for threads in [1usize, 2, 4, 7] {
            let parallel = run_reordered_parallel(&layered, set.trials(), threads).unwrap();
            assert_eq!(parallel.outcomes, baseline.outcomes, "{threads} threads");
            // Chunking costs at most (threads−1) extra full-trial prefixes.
            assert!(parallel.stats.ops >= sequential.stats.ops);
            let bound = sequential.stats.ops
                + (threads as u64) * (layered.total_gates() as u64 + 64);
            assert!(
                parallel.stats.ops <= bound,
                "{threads} threads: {} > bound {bound}",
                parallel.stats.ops
            );
        }
    }

    #[test]
    fn one_thread_is_exactly_sequential() {
        let (layered, set) = workload(120);
        let sequential = ReuseExecutor::new(&layered).run(set.trials()).unwrap();
        let parallel = run_reordered_parallel(&layered, set.trials(), 1).unwrap();
        assert_eq!(parallel.stats, sequential.stats);
        assert_eq!(parallel.outcomes, sequential.outcomes);
    }

    #[test]
    fn zero_threads_means_auto_and_still_correct() {
        let (layered, set) = workload(64);
        let baseline = BaselineExecutor::new(&layered).run(set.trials()).unwrap();
        let parallel = run_reordered_parallel(&layered, set.trials(), 0).unwrap();
        assert_eq!(parallel.outcomes, baseline.outcomes);
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        let (layered, set) = workload(3);
        let parallel = run_baseline_parallel(&layered, set.trials(), 64).unwrap();
        assert_eq!(parallel.outcomes.len(), 3);
        let parallel = run_reordered_parallel(&layered, set.trials(), 64).unwrap();
        assert_eq!(parallel.outcomes.len(), 3);
    }

    #[test]
    fn empty_trials_parallel() {
        let (layered, _) = workload(1);
        let result = run_reordered_parallel(&layered, &[], 4).unwrap();
        assert!(result.outcomes.is_empty());
        assert_eq!(result.stats.ops, 0);
    }
}
