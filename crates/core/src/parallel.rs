//! Multi-threaded execution — the "system level" axis the paper declares
//! its algorithm-level optimization compatible with (§II: "Our acceleration
//! is from algorithm-level and is compatible with these system-level
//! approaches").
//!
//! * [`run_baseline_parallel`] — trials are independent, so the baseline
//!   parallelizes embarrassingly.
//! * [`run_reordered_parallel`] — the sorted trial order is split into
//!   contiguous chunks, each executed with prefix-state caching by one
//!   thread. Only the chunk's first trial loses its cross-chunk sharing, so
//!   the total operation count exceeds the single-threaded optimum by at
//!   most `threads − 1` full trial costs — while outcomes remain **bitwise
//!   identical** to the baseline (every trial still executes its exact
//!   operation sequence).
//!
//! Chunk boundaries are *cost-balanced*, not count-balanced: with prefix
//! caching, a trial's marginal cost is the work past its shared prefix, so
//! equal trial counts can give one worker a chunk of near-free deep-sharing
//! trials and another a chunk of full-length loners. Boundaries are placed
//! on the cumulative estimated marginal cost instead (see
//! [`estimate_marginal_cost`]).
//!
//! All workers execute one [`qsim_circuit::FusedProgram`] compiled from the
//! **full** trial set. Fusion geometry depends on the cut-point union, so a
//! per-chunk program would change the floating-point sequence and break
//! bitwise agreement with the sequential executors; a shared program keeps
//! every strategy exactly comparable.

use qsim_circuit::LayeredCircuit;
use qsim_noise::Trial;
use qsim_statevec::MeasureOutcome;
use qsim_telemetry::{NullRecorder, Recorder};

use crate::exec::{fuse_for_trials_traced, BaselineExecutor, ExecStats, ReuseExecutor, RunResult};
use crate::order::{compare_trials, lcp};
use crate::SimError;

/// Resolve a thread-count request: 0 means "use available parallelism".
fn resolve_threads(requested: usize, n_items: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = if requested == 0 { hw } else { requested };
    threads.clamp(1, n_items.max(1))
}

/// Estimated marginal cost (in basic operations) of executing `cur` right
/// after `prev` with prefix caching: the gates past the deepest shared
/// frontier plus `cur`'s own error injections, plus one for measurement.
/// `prev = None` prices a cold start (a chunk's first trial).
pub fn estimate_marginal_cost(layered: &LayeredCircuit, prev: Option<&Trial>, cur: &Trial) -> u64 {
    let d = prev.map_or(0, |p| lcp(p, cur));
    let shared_gates =
        if d > 0 { layered.gates_through(cur.injections()[d - 1].layer()) as u64 } else { 0 };
    let total = layered.total_gates() as u64;
    total - shared_gates + (cur.n_injections() - d) as u64 + 1
}

/// Split `0..costs.len()` into at most `threads` contiguous chunks whose
/// cumulative costs are as even as a greedy left-to-right walk can make
/// them. Returns chunk start indices (first is always 0); every chunk is
/// nonempty.
fn balanced_boundaries(costs: &[u64], threads: usize) -> Vec<usize> {
    let total: u64 = costs.iter().sum::<u64>().max(1);
    let mut bounds = vec![0usize];
    let mut acc: u64 = 0;
    for (i, &c) in costs.iter().enumerate() {
        acc += c;
        let chunk = bounds.len() as u64;
        if bounds.len() < threads
            && i + 1 < costs.len()
            && acc.saturating_mul(threads as u64) >= total.saturating_mul(chunk)
        {
            bounds.push(i + 1);
        }
    }
    bounds
}

/// Execute trials with the baseline strategy across `n_threads` threads
/// (`0` = all available cores). Outcomes are in input order and bitwise
/// identical to the sequential baseline (all workers share the full set's
/// fused program).
///
/// # Errors
///
/// Returns the first [`SimError`] any worker hits.
pub fn run_baseline_parallel(
    layered: &LayeredCircuit,
    trials: &[Trial],
    n_threads: usize,
) -> Result<RunResult, SimError> {
    run_baseline_parallel_traced(layered, trials, n_threads, &NullRecorder)
}

/// [`run_baseline_parallel`] with instrumentation: every worker streams
/// into the same shared `recorder` (the [`Recorder`] contract is
/// `&self` + `Sync`), so counters and kernel timings are additive across
/// workers; the coordinator brackets the whole run in a
/// `"run/parallel-baseline"` span.
///
/// # Errors
///
/// As [`run_baseline_parallel`].
pub fn run_baseline_parallel_traced<R: Recorder + ?Sized>(
    layered: &LayeredCircuit,
    trials: &[Trial],
    n_threads: usize,
    recorder: &R,
) -> Result<RunResult, SimError> {
    let threads = resolve_threads(n_threads, trials.len());
    if threads <= 1 || trials.is_empty() {
        return BaselineExecutor::new(layered).run_traced(trials, recorder);
    }
    // Verify the whole-set plan up front; workers re-verify their chunks as
    // sub-plans through the executors they call into.
    #[cfg(feature = "paranoid")]
    crate::exec::paranoid_verify(layered, trials, usize::MAX)?;
    let span_start = recorder.now_ns();
    let program = fuse_for_trials_traced(layered, trials, recorder);
    let chunk_size = trials.len().div_ceil(threads);
    let results: Vec<Result<RunResult, SimError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = trials
            .chunks(chunk_size)
            .map(|chunk| {
                let program = &program;
                scope.spawn(move || {
                    BaselineExecutor::new(layered).run_with_program_traced(program, chunk, recorder)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let mut outcomes = Vec::with_capacity(trials.len());
    let mut stats = ExecStats { n_trials: trials.len(), ..ExecStats::default() };
    for result in results {
        let part = result?;
        outcomes.extend(part.outcomes);
        stats.ops += part.stats.ops;
        stats.fused_ops += part.stats.fused_ops;
        stats.amplitude_passes += part.stats.amplitude_passes;
    }
    if recorder.enabled() {
        recorder.span("run/parallel-baseline", span_start, recorder.now_ns());
    }
    Ok(RunResult { outcomes, stats })
}

/// Execute trials with reordering + prefix caching across `n_threads`
/// threads (`0` = all available cores). The global sorted order is split
/// into cost-balanced contiguous chunks; each worker caches prefixes within
/// its chunk, running the shared full-set fused program. Outcomes are in
/// input order and bitwise identical to the baseline.
///
/// # Errors
///
/// Returns the first [`SimError`] any worker hits.
pub fn run_reordered_parallel(
    layered: &LayeredCircuit,
    trials: &[Trial],
    n_threads: usize,
) -> Result<RunResult, SimError> {
    run_reordered_parallel_traced(layered, trials, n_threads, &NullRecorder)
}

/// [`run_reordered_parallel`] with instrumentation: every worker streams
/// into the same shared `recorder`, so counters and kernel timings are
/// additive across workers. MSV events interleave from concurrent workers,
/// which makes the recorder's *observed* peak residency the true global
/// concurrent peak — at most the summed per-worker peak that
/// [`ExecStats::peak_msv`] reports (the workers' caches coexist, but rarely
/// all at their individual peaks simultaneously). The coordinator brackets
/// the whole run in a `"run/parallel-reuse"` span.
///
/// # Errors
///
/// As [`run_reordered_parallel`].
pub fn run_reordered_parallel_traced<R: Recorder + ?Sized>(
    layered: &LayeredCircuit,
    trials: &[Trial],
    n_threads: usize,
    recorder: &R,
) -> Result<RunResult, SimError> {
    let threads = resolve_threads(n_threads, trials.len());
    if threads <= 1 || trials.is_empty() {
        return ReuseExecutor::new(layered).run_traced(trials, recorder);
    }
    // Verify the whole-set plan up front; workers re-verify their chunks as
    // sub-plans through the executors they call into.
    #[cfg(feature = "paranoid")]
    crate::exec::paranoid_verify(layered, trials, usize::MAX)?;
    let span_start = recorder.now_ns();
    // Global sort once, then hand contiguous sorted slices to workers. Each
    // worker receives (original_index, trial) pairs so it can report
    // outcomes against the caller's order.
    let mut order: Vec<usize> = (0..trials.len()).collect();
    order.sort_by(|&a, &b| compare_trials(&trials[a], &trials[b]));
    let program = fuse_for_trials_traced(layered, trials, recorder);
    let costs: Vec<u64> = order
        .iter()
        .enumerate()
        .map(|(pos, &orig)| {
            let prev = pos.checked_sub(1).map(|p| &trials[order[p]]);
            estimate_marginal_cost(layered, prev, &trials[orig])
        })
        .collect();
    let bounds = balanced_boundaries(&costs, threads);

    type ChunkResult = Result<(Vec<(usize, MeasureOutcome)>, ExecStats), SimError>;
    let results: Vec<ChunkResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .enumerate()
            .map(|(k, &start)| {
                let end = bounds.get(k + 1).copied().unwrap_or(order.len());
                let idx_chunk = &order[start..end];
                let program = &program;
                scope.spawn(move || -> ChunkResult {
                    // The chunk is already sorted; ReuseExecutor re-sorts
                    // internally (stable, already-ordered input = no-op
                    // permutation) and returns outcomes in chunk order.
                    let chunk_trials: Vec<Trial> =
                        idx_chunk.iter().map(|&i| trials[i].clone()).collect();
                    let mut outcomes: Vec<Option<MeasureOutcome>> = vec![None; chunk_trials.len()];
                    let stats = ReuseExecutor::new(layered).run_streaming_with_traced(
                        program,
                        &chunk_trials,
                        usize::MAX,
                        |index, outcome| outcomes[index] = Some(outcome),
                        recorder,
                    )?;
                    let pairs = idx_chunk
                        .iter()
                        .copied()
                        .zip(outcomes.into_iter().map(|o| o.expect("every trial executed")))
                        .collect();
                    Ok((pairs, stats))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    let mut outcomes: Vec<Option<MeasureOutcome>> = vec![None; trials.len()];
    let mut stats = ExecStats { n_trials: trials.len(), ..ExecStats::default() };
    for result in results {
        let (pairs, part_stats) = result?;
        for (index, outcome) in pairs {
            outcomes[index] = Some(outcome);
        }
        stats.ops += part_stats.ops;
        stats.fused_ops += part_stats.fused_ops;
        stats.amplitude_passes += part_stats.amplitude_passes;
        // Workers hold their caches concurrently: peak memory is the sum.
        stats.peak_msv += part_stats.peak_msv;
    }
    if recorder.enabled() {
        recorder.span("run/parallel-reuse", span_start, recorder.now_ns());
    }
    Ok(RunResult {
        outcomes: outcomes.into_iter().map(|o| o.expect("every trial executed")).collect(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::BaselineExecutor;
    use crate::testkit::uniform_workload;
    use qsim_circuit::catalog;
    use qsim_noise::TrialSet;

    fn workload(n: usize) -> (LayeredCircuit, TrialSet) {
        uniform_workload(&catalog::qft(4), (2e-2, 8e-2, 2e-2), n, 5)
    }

    #[test]
    fn parallel_baseline_matches_sequential_bitwise() {
        let (layered, set) = workload(500);
        let sequential = BaselineExecutor::new(&layered).run(set.trials()).unwrap();
        for threads in [1usize, 2, 4, 7] {
            let parallel = run_baseline_parallel(&layered, set.trials(), threads).unwrap();
            assert_eq!(parallel.outcomes, sequential.outcomes, "{threads} threads");
            assert_eq!(parallel.stats.ops, sequential.stats.ops);
            assert_eq!(parallel.stats.amplitude_passes, sequential.stats.amplitude_passes);
        }
    }

    #[test]
    fn parallel_reuse_matches_baseline_bitwise() {
        let (layered, set) = workload(500);
        let baseline = BaselineExecutor::new(&layered).run(set.trials()).unwrap();
        let sequential = ReuseExecutor::new(&layered).run(set.trials()).unwrap();
        for threads in [1usize, 2, 4, 7] {
            let parallel = run_reordered_parallel(&layered, set.trials(), threads).unwrap();
            assert_eq!(parallel.outcomes, baseline.outcomes, "{threads} threads");
            // Chunking costs at most (threads−1) extra full-trial prefixes.
            assert!(parallel.stats.ops >= sequential.stats.ops);
            let bound =
                sequential.stats.ops + (threads as u64) * (layered.total_gates() as u64 + 64);
            assert!(
                parallel.stats.ops <= bound,
                "{threads} threads: {} > bound {bound}",
                parallel.stats.ops
            );
        }
    }

    #[test]
    fn one_thread_is_exactly_sequential() {
        let (layered, set) = workload(120);
        let sequential = ReuseExecutor::new(&layered).run(set.trials()).unwrap();
        let parallel = run_reordered_parallel(&layered, set.trials(), 1).unwrap();
        assert_eq!(parallel.stats, sequential.stats);
        assert_eq!(parallel.outcomes, sequential.outcomes);
    }

    #[test]
    fn zero_threads_means_auto_and_still_correct() {
        let (layered, set) = workload(64);
        let baseline = BaselineExecutor::new(&layered).run(set.trials()).unwrap();
        let parallel = run_reordered_parallel(&layered, set.trials(), 0).unwrap();
        assert_eq!(parallel.outcomes, baseline.outcomes);
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        let (layered, set) = workload(3);
        let parallel = run_baseline_parallel(&layered, set.trials(), 64).unwrap();
        assert_eq!(parallel.outcomes.len(), 3);
        let parallel = run_reordered_parallel(&layered, set.trials(), 64).unwrap();
        assert_eq!(parallel.outcomes.len(), 3);
    }

    #[test]
    fn empty_trials_parallel() {
        let (layered, _) = workload(1);
        let result = run_reordered_parallel(&layered, &[], 4).unwrap();
        assert!(result.outcomes.is_empty());
        assert_eq!(result.stats.ops, 0);
    }

    #[test]
    fn cost_balancing_beats_count_balancing_on_skewed_orders() {
        // A sorted trial order front-loads deep-sharing (cheap) trials and
        // back-loads loners; cost balancing should give the cheap half more
        // trials than the expensive half.
        let (layered, set) = workload(600);
        let trials = set.trials();
        let mut order: Vec<usize> = (0..trials.len()).collect();
        order.sort_by(|&a, &b| compare_trials(&trials[a], &trials[b]));
        let costs: Vec<u64> = order
            .iter()
            .enumerate()
            .map(|(pos, &orig)| {
                let prev = pos.checked_sub(1).map(|p| &trials[order[p]]);
                estimate_marginal_cost(&layered, prev, &trials[orig])
            })
            .collect();
        let bounds = balanced_boundaries(&costs, 4);
        assert!(!bounds.is_empty() && bounds[0] == 0);
        assert!(bounds.len() <= 4);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "chunks must be nonempty: {bounds:?}");
        // Per-chunk cost spread stays within 2× of the ideal split.
        let total: u64 = costs.iter().sum();
        let ideal = total as f64 / bounds.len() as f64;
        for (k, &start) in bounds.iter().enumerate() {
            let end = bounds.get(k + 1).copied().unwrap_or(costs.len());
            let chunk_cost: u64 = costs[start..end].iter().sum();
            assert!(
                (chunk_cost as f64) < 2.0 * ideal + costs[start] as f64,
                "chunk {k} cost {chunk_cost} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn shared_recorder_counters_are_additive_across_workers() {
        use qsim_telemetry::AggregatingRecorder;
        let (layered, set) = workload(400);
        for threads in [2usize, 4] {
            let recorder = AggregatingRecorder::new();
            let result =
                run_reordered_parallel_traced(&layered, set.trials(), threads, &recorder).unwrap();
            let report = recorder.report();
            assert_eq!(report.counter("ops"), result.stats.ops, "{threads} threads");
            assert_eq!(report.counter("fused_ops"), result.stats.fused_ops);
            assert_eq!(report.counter("amplitude_passes"), result.stats.amplitude_passes);
            assert_eq!(report.counter("trials"), result.stats.n_trials as u64);
            // The recorder sees the true concurrent residency peak; summing
            // per-worker peaks (ExecStats) can only overestimate it.
            assert!(report.peak_residency() <= result.stats.peak_msv);
            assert!(report.peak_residency() >= 1);
            assert!(report.spans.contains_key("run/parallel-reuse"));
        }
        let recorder = AggregatingRecorder::new();
        let result = run_baseline_parallel_traced(&layered, set.trials(), 3, &recorder).unwrap();
        let report = recorder.report();
        assert_eq!(report.counter("ops"), result.stats.ops);
        assert_eq!(report.peak_residency(), 0);
        assert!(report.spans.contains_key("run/parallel-baseline"));
    }

    #[test]
    fn marginal_cost_estimates_are_sane() {
        let (layered, _) = workload(1);
        let total = layered.total_gates() as u64;
        let clean = Trial::error_free(0);
        // Cold start pays the full circuit.
        assert_eq!(estimate_marginal_cost(&layered, None, &clean), total + 1);
        // A repeat of the same injection-free trial still re-runs nothing
        // but measurement... which the estimate prices as a full pass since
        // lcp of empty trials is 0 injections deep.
        let cost = estimate_marginal_cost(&layered, Some(&clean), &clean);
        assert!(cost <= total + 1);
    }
}
