use std::collections::BTreeMap;
use std::fmt;

use qsim_statevec::MeasureOutcome;

/// A histogram over classical measurement outcomes — the aggregate the
/// Monte-Carlo simulation reports ("the final results are averaged to show
/// a distribution of the output on the modeled device", paper §III.B.2).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
    n_bits: usize,
}

impl Histogram {
    /// An empty histogram over `n_bits` classical bits.
    pub fn new(n_bits: usize) -> Self {
        Histogram { counts: BTreeMap::new(), total: 0, n_bits }
    }

    /// Build from a batch of outcomes.
    ///
    /// # Panics
    ///
    /// Panics if outcomes disagree on width.
    pub fn from_outcomes(n_bits: usize, outcomes: &[MeasureOutcome]) -> Self {
        let mut h = Histogram::new(n_bits);
        for o in outcomes {
            h.record(o);
        }
        h
    }

    /// Record one outcome.
    ///
    /// # Panics
    ///
    /// Panics if the outcome width differs from the histogram's.
    pub fn record(&mut self, outcome: &MeasureOutcome) {
        assert_eq!(outcome.n_qubits(), self.n_bits, "outcome width mismatch");
        // Saturating: a 10⁹-trial streaming run must degrade gracefully,
        // never wrap (matches the telemetry counters' overflow policy).
        let slot = self.counts.entry(outcome.to_index() as u64).or_insert(0);
        *slot = slot.saturating_add(1);
        self.total = self.total.saturating_add(1);
    }

    /// Number of recorded outcomes.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Width in classical bits.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Count for a bit pattern.
    pub fn count(&self, pattern: u64) -> u64 {
        self.counts.get(&pattern).copied().unwrap_or(0)
    }

    /// Empirical probability of a bit pattern.
    pub fn probability(&self, pattern: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(pattern) as f64 / self.total as f64
        }
    }

    /// `(pattern, count)` pairs sorted by pattern.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Total-variation distance to an exact distribution indexed by
    /// pattern (`reference.len()` must be `2^n_bits`). Used to check
    /// Monte-Carlo convergence against the density-matrix ground truth.
    ///
    /// # Panics
    ///
    /// Panics if `reference` has the wrong length.
    pub fn tv_distance(&self, reference: &[f64]) -> f64 {
        assert_eq!(reference.len(), 1usize << self.n_bits, "reference distribution width");
        let mut tv = 0.0;
        for (pattern, &p_ref) in reference.iter().enumerate() {
            tv += (self.probability(pattern as u64) - p_ref).abs();
        }
        tv / 2.0
    }

    /// Total-variation distance between two empirical histograms of the
    /// same width.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn tv_to(&self, other: &Histogram) -> f64 {
        assert_eq!(self.n_bits, other.n_bits, "histogram width mismatch");
        let patterns: std::collections::BTreeSet<u64> =
            self.counts.keys().chain(other.counts.keys()).copied().collect();
        patterns
            .into_iter()
            .map(|p| (self.probability(p) - other.probability(p)).abs())
            .sum::<f64>()
            / 2.0
    }

    /// Estimated expectation value `⟨Z⟩` of one classical bit:
    /// `P(bit = 0) − P(bit = 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= n_bits`.
    pub fn expectation_z(&self, bit: usize) -> f64 {
        assert!(bit < self.n_bits, "bit {bit} out of range for {} bits", self.n_bits);
        if self.total == 0 {
            return 0.0;
        }
        let ones: u64 =
            self.counts.iter().filter(|(&p, _)| p >> bit & 1 == 1).map(|(_, &c)| c).sum();
        1.0 - 2.0 * ones as f64 / self.total as f64
    }

    /// Estimated expectation of the parity `Z⊗Z⊗…` over a set of bits
    /// (the standard stabilizer-style observable).
    ///
    /// # Panics
    ///
    /// Panics if any bit is out of range.
    pub fn expectation_parity(&self, bits: &[usize]) -> f64 {
        for &bit in bits {
            assert!(bit < self.n_bits, "bit {bit} out of range for {} bits", self.n_bits);
        }
        if self.total == 0 {
            return 0.0;
        }
        let mut acc = 0.0f64;
        for (&pattern, &count) in &self.counts {
            let parity: u32 = bits.iter().map(|&b| (pattern >> b & 1) as u32).sum();
            let sign = if parity.is_multiple_of(2) { 1.0 } else { -1.0 };
            acc += sign * count as f64;
        }
        acc / self.total as f64
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} outcomes over {} bits:", self.total, self.n_bits)?;
        for (pattern, count) in self.iter() {
            writeln!(
                f,
                "  {:0width$b}: {} ({:.3})",
                pattern,
                count,
                count as f64 / self.total.max(1) as f64,
                width = self.n_bits
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(index: usize, bits: usize) -> MeasureOutcome {
        MeasureOutcome::from_index(index, bits)
    }

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::new(2);
        h.record(&outcome(0, 2));
        h.record(&outcome(3, 2));
        h.record(&outcome(3, 2));
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.count(1), 0);
        assert!((h.probability(3) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn from_outcomes_batches() {
        let outcomes: Vec<MeasureOutcome> = (0..8).map(|i| outcome(i % 4, 2)).collect();
        let h = Histogram::from_outcomes(2, &outcomes);
        assert_eq!(h.total(), 8);
        for p in 0..4u64 {
            assert_eq!(h.count(p), 2);
        }
    }

    #[test]
    fn tv_distance_zero_for_matching_distribution() {
        let outcomes: Vec<MeasureOutcome> = (0..4).map(|i| outcome(i, 2)).collect();
        let h = Histogram::from_outcomes(2, &outcomes);
        assert!(h.tv_distance(&[0.25; 4]) < 1e-12);
        assert!((h.tv_distance(&[1.0, 0.0, 0.0, 0.0]) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_mixed_widths() {
        let mut h = Histogram::new(2);
        h.record(&outcome(0, 3));
    }

    #[test]
    fn display_lists_patterns() {
        let h = Histogram::from_outcomes(2, &[outcome(2, 2)]);
        let text = h.to_string();
        assert!(text.contains("10: 1"));
    }

    #[test]
    fn empty_histogram_probabilities() {
        let h = Histogram::new(3);
        assert_eq!(h.probability(0), 0.0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.expectation_z(0), 0.0);
        assert_eq!(h.expectation_parity(&[0, 1]), 0.0);
    }

    #[test]
    fn expectation_z_signs_and_magnitudes() {
        // 3× pattern 01, 1× pattern 10 over 2 bits.
        let outcomes: Vec<MeasureOutcome> =
            [1usize, 1, 1, 2].iter().map(|&i| outcome(i, 2)).collect();
        let h = Histogram::from_outcomes(2, &outcomes);
        // Bit 0: three ones, one zero → ⟨Z⟩ = (1 − 3)/4 = −0.5.
        assert!((h.expectation_z(0) + 0.5).abs() < 1e-12);
        // Bit 1: one one, three zeros → ⟨Z⟩ = (3 − 1)/4 = +0.5.
        assert!((h.expectation_z(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parity_expectation_over_ghz_like_counts() {
        // 50/50 between 00 and 11: single-bit ⟨Z⟩ = 0 but ZZ parity = +1.
        let outcomes: Vec<MeasureOutcome> =
            [0usize, 3, 0, 3].iter().map(|&i| outcome(i, 2)).collect();
        let h = Histogram::from_outcomes(2, &outcomes);
        assert_eq!(h.expectation_z(0), 0.0);
        assert_eq!(h.expectation_parity(&[0, 1]), 1.0);
        assert_eq!(h.expectation_parity(&[]), 1.0);
    }

    #[test]
    fn tv_between_histograms() {
        let a = Histogram::from_outcomes(2, &[outcome(0, 2), outcome(0, 2)]);
        let b = Histogram::from_outcomes(2, &[outcome(3, 2), outcome(3, 2)]);
        assert!((a.tv_to(&b) - 1.0).abs() < 1e-12);
        assert!(a.tv_to(&a) < 1e-12);
        let c = Histogram::from_outcomes(2, &[outcome(0, 2), outcome(3, 2)]);
        assert!((a.tv_to(&c) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn expectation_z_checks_bit_range() {
        let h = Histogram::new(2);
        let _ = h.expectation_z(5);
    }

    #[test]
    fn empty_run_yields_empty_histogram_with_sane_queries() {
        // A zero-trial simulation streams nothing into the histogram;
        // every read-side query must still be well-defined.
        let h = Histogram::new(4);
        assert_eq!(h.total(), 0);
        assert_eq!(h.n_bits(), 4);
        assert_eq!(h.iter().count(), 0);
        assert_eq!(h.count(7), 0);
        assert!(h.tv_distance(&[1.0 / 16.0; 16]) <= 1.0);
        assert!(h.to_string().contains("0 outcomes"));
        assert_eq!(h, Histogram::from_outcomes(4, &[]));
    }

    #[test]
    fn single_trial_run_is_a_point_mass() {
        let h = Histogram::from_outcomes(3, &[outcome(5, 3)]);
        assert_eq!(h.total(), 1);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.probability(5), 1.0);
        assert_eq!(h.probability(4), 0.0);
        assert_eq!(h.iter().collect::<Vec<_>>(), vec![(5, 1)]);
        // ⟨Z⟩ on a set bit is −1, on a clear bit +1.
        assert_eq!(h.expectation_z(0), -1.0);
        assert_eq!(h.expectation_z(1), 1.0);
        let mut reference = [0.0f64; 8];
        reference[5] = 1.0;
        assert!(h.tv_distance(&reference) < 1e-12);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut h = Histogram::new(1);
        h.total = u64::MAX - 1;
        h.counts.insert(0, u64::MAX);
        h.record(&outcome(0, 1));
        h.record(&outcome(0, 1));
        assert_eq!(h.total(), u64::MAX);
        assert_eq!(h.count(0), u64::MAX);
        // Probabilities stay within [0, 1] even at saturation.
        assert!(h.probability(0) <= 1.0);
    }
}
