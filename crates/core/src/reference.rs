//! Exact reference distributions via density-matrix channel simulation.
//!
//! The paper contrasts Monte-Carlo state-vector simulation with the exact
//! density-matrix approach (§II): the latter captures the noise channel in
//! one run but squares the memory cost. Here the density matrix serves as a
//! **test oracle**: [`exact_distribution`] walks the same layered circuit
//! under the same [`NoiseModel`] — gate unitaries, per-gate depolarizing
//! channels, idle channels, readout confusion — and returns the exact
//! outcome distribution the Monte-Carlo histogram must converge to.
//!
//! Limited to ~12 qubits (the `4ⁿ` wall is precisely the paper's argument
//! for state-vector simulation).

use qsim_circuit::{Gate, LayeredCircuit};
use qsim_noise::NoiseModel;
use qsim_statevec::DensityMatrix;

use crate::SimError;

/// The exact distribution over the classical register for `layered` under
/// `model` (indexed by classical bit pattern).
///
/// # Errors
///
/// Returns [`SimError`] for register/model mismatches, non-native gates, or
/// circuits too wide for the density-matrix representation.
pub fn exact_distribution(
    layered: &LayeredCircuit,
    model: &NoiseModel,
) -> Result<Vec<f64>, SimError> {
    if model.n_qubits() < layered.n_qubits() {
        return Err(SimError::Noise(qsim_noise::NoiseError::WidthMismatch {
            model: model.n_qubits(),
            circuit: layered.n_qubits(),
        }));
    }
    let n = layered.n_qubits();
    let mut rho = DensityMatrix::zero_state(n)?;
    for layer_index in 0..layered.n_layers() {
        let mut busy = vec![false; n];
        for op in layered.layer(layer_index) {
            for &q in &op.qubits {
                busy[q] = true;
            }
            match op.qubits.len() {
                1 => {
                    let q = op.qubits[0];
                    let matrix = op.gate.matrix1().ok_or_else(|| {
                        SimError::Circuit(format!("gate {} has no matrix", op.gate))
                    })?;
                    rho.apply_1q(&matrix, q)?;
                    let w = model.single_weights(q);
                    if w.total() > 0.0 {
                        rho.pauli_channel_1q(q, w.x, w.y, w.z)?;
                    }
                }
                2 if op.gate == Gate::Cx => {
                    let (c, t) = (op.qubits[0], op.qubits[1]);
                    rho.apply_cx(c, t)?;
                    let rate = model.two_rate(c, t);
                    if rate > 0.0 {
                        rho.depolarize_2q(c, t, rate)?;
                    }
                }
                _ => {
                    return Err(SimError::Noise(qsim_noise::NoiseError::NonNativeGate {
                        gate: op.gate.to_string(),
                    }));
                }
            }
        }
        if model.has_idle_errors() {
            for (q, &is_busy) in busy.iter().enumerate() {
                if is_busy {
                    continue;
                }
                if let Some(w) = model.idle_weights(q) {
                    if w.total() > 0.0 {
                        rho.pauli_channel_1q(q, w.x, w.y, w.z)?;
                    }
                }
            }
        }
    }
    // Readout confusion on measured qubits only.
    let flip_probs: Vec<f64> = (0..n)
        .map(|q| {
            if layered.measurements().iter().any(|&(mq, _)| mq == q) {
                model.readout_rate(q)
            } else {
                0.0
            }
        })
        .collect();
    let qubit_dist = rho.readout_distribution(&flip_probs)?;
    // Marginalize onto the classical register through the measurement map.
    let mut out = vec![0.0f64; 1 << layered.n_cbits()];
    for (idx, p) in qubit_dist.into_iter().enumerate() {
        let mut pattern = 0usize;
        for &(q, c) in layered.measurements() {
            if idx >> q & 1 == 1 {
                pattern |= 1 << c;
            }
        }
        out[pattern] += p;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ReuseExecutor;
    use crate::Histogram;
    use qsim_circuit::{catalog, Circuit};
    use qsim_noise::{PauliWeights, TrialGenerator};

    fn monte_carlo_tv(
        layered: &LayeredCircuit,
        model: &NoiseModel,
        trials: usize,
        seed: u64,
    ) -> f64 {
        let exact = exact_distribution(layered, model).expect("oracle runs");
        let set = TrialGenerator::new(layered, model).expect("native").generate(trials, seed);
        let result = ReuseExecutor::new(layered).run(set.trials()).expect("executes");
        Histogram::from_outcomes(layered.n_cbits(), &result.outcomes).tv_distance(&exact)
    }

    #[test]
    fn zero_noise_oracle_equals_born_rule() {
        let layered = catalog::bv(4, 0b101).layered().unwrap();
        let model = NoiseModel::uniform(4, 0.0, 0.0, 0.0);
        let dist = exact_distribution(&layered, &model).unwrap();
        assert!((dist[0b101] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_converges_on_compiled_benchmarks() {
        use qsim_circuit::transpile::{transpile, TranspileOptions};
        use qsim_circuit::CouplingMap;
        let options = TranspileOptions::for_device(CouplingMap::yorktown());
        for logical in [catalog::bv(4, 0b111), catalog::wstate_3q()] {
            let compiled = transpile(&logical, &options).unwrap();
            let layered = compiled.circuit.layered().unwrap();
            let model = NoiseModel::ibm_yorktown();
            let tv = monte_carlo_tv(&layered, &model, 60_000, 5);
            assert!(tv < 0.015, "{}: TV {tv}", logical.name());
        }
    }

    #[test]
    fn oracle_covers_asymmetric_and_idle_channels() {
        let mut qc = Circuit::new("mix", 2, 2);
        qc.h(0).h(0).cx(0, 1).h(1).measure_all();
        let layered = qc.layered().unwrap();
        let mut model = NoiseModel::uniform(2, 0.0, 0.06, 0.03);
        model.set_single_weights(0, PauliWeights::new(0.02, 0.0, 0.08).unwrap()).unwrap();
        model.set_single_weights(1, PauliWeights::bit_flip(0.05)).unwrap();
        model.set_idle_weights_all(PauliWeights::dephasing(0.04));
        let tv = monte_carlo_tv(&layered, &model, 80_000, 11);
        assert!(tv < 0.01, "TV {tv}");
    }

    #[test]
    fn oracle_rejects_non_native_gates() {
        let mut qc = Circuit::new("swap", 2, 2);
        qc.swap(0, 1).measure_all();
        let layered = qc.layered().unwrap();
        let model = NoiseModel::uniform(2, 0.0, 0.0, 0.0);
        assert!(matches!(
            exact_distribution(&layered, &model),
            Err(SimError::Noise(qsim_noise::NoiseError::NonNativeGate { .. }))
        ));
    }

    #[test]
    fn oracle_rejects_narrow_models() {
        let layered = catalog::bv(4, 0b1).layered().unwrap();
        let model = NoiseModel::uniform(2, 0.0, 0.0, 0.0);
        assert!(exact_distribution(&layered, &model).is_err());
    }

    #[test]
    fn unmeasured_qubits_suffer_no_readout_error() {
        // Only qubit 0 is measured; a huge readout error on qubit 1 must
        // not affect anything.
        let mut qc = Circuit::new("partial", 2, 1);
        qc.x(0).measure(0, 0);
        let layered = qc.layered().unwrap();
        let mut model = NoiseModel::uniform(2, 0.0, 0.0, 0.0);
        model.set_readout_rate(1, 0.9).unwrap();
        model.set_readout_rate(0, 0.25).unwrap();
        let dist = exact_distribution(&layered, &model).unwrap();
        assert!((dist[1] - 0.75).abs() < 1e-9);
        assert!((dist[0] - 0.25).abs() < 1e-9);
    }
}
