use qsim_circuit::{Circuit, LayeredCircuit};
use qsim_noise::{NoiseModel, TrialGenerator, TrialSet};

use crate::analysis::{self, CostReport};
use crate::exec::{BaselineExecutor, ReuseExecutor, RunResult};
use crate::histogram::Histogram;
use crate::SimError;

/// End-to-end façade: circuit + noise model + trial set, with analysis and
/// both execution strategies.
///
/// ```
/// use qsim_circuit::catalog;
/// use qsim_noise::NoiseModel;
/// use redsim::Simulation;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sim = Simulation::from_circuit(
///     &catalog::seven_x1_mod15(),
///     NoiseModel::uniform(4, 1e-3, 1e-2, 1e-2),
/// )?;
/// sim.generate_trials(512, 0)?;
/// let report = sim.analyze()?;
/// assert!(report.savings() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Simulation {
    layered: LayeredCircuit,
    model: NoiseModel,
    trials: Option<TrialSet>,
}

impl Simulation {
    /// Bind a layered circuit to a noise model.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Noise`] if the model does not cover the circuit
    /// (width, non-native gates).
    pub fn new(layered: LayeredCircuit, model: NoiseModel) -> Result<Self, SimError> {
        // Validate compatibility eagerly by constructing a generator once.
        TrialGenerator::new(&layered, &model)?;
        Ok(Simulation { layered, model, trials: None })
    }

    /// Layer a circuit and bind it to a noise model.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Circuit`] for layering failures and
    /// [`SimError::Noise`] for model mismatches.
    pub fn from_circuit(circuit: &Circuit, model: NoiseModel) -> Result<Self, SimError> {
        let layered = circuit.layered().map_err(|e| SimError::Circuit(e.to_string()))?;
        Simulation::new(layered, model)
    }

    /// The layered circuit.
    pub fn layered(&self) -> &LayeredCircuit {
        &self.layered
    }

    /// The noise model.
    pub fn model(&self) -> &NoiseModel {
        &self.model
    }

    /// The current trial set, if generated.
    pub fn trials(&self) -> Option<&TrialSet> {
        self.trials.as_ref()
    }

    /// Generate `n` trials with the direct per-position sampler.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Noise`] on model/circuit mismatch.
    pub fn generate_trials(&mut self, n: usize, seed: u64) -> Result<&TrialSet, SimError> {
        let generator = TrialGenerator::new(&self.layered, &self.model)?;
        self.trials = Some(generator.generate(n, seed));
        Ok(self.trials.as_ref().expect("just generated"))
    }

    /// Generate `n` trials with the binomial fast path (for very large `n`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Noise`] on model/circuit mismatch.
    pub fn generate_trials_fast(&mut self, n: usize, seed: u64) -> Result<&TrialSet, SimError> {
        let generator = TrialGenerator::new(&self.layered, &self.model)?;
        self.trials = Some(generator.generate_fast(n, seed));
        Ok(self.trials.as_ref().expect("just generated"))
    }

    /// Adopt an externally built trial set.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TrialMismatch`] for foreign geometry.
    pub fn set_trials(&mut self, trials: TrialSet) -> Result<(), SimError> {
        if trials.n_qubits() != self.layered.n_qubits()
            || trials.n_layers() != self.layered.n_layers()
        {
            return Err(SimError::TrialMismatch {
                trials: (trials.n_qubits(), trials.n_layers()),
                circuit: (self.layered.n_qubits(), self.layered.n_layers()),
            });
        }
        self.trials = Some(trials);
        Ok(())
    }

    /// Static cost analysis of the reordered execution (no amplitudes
    /// touched).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoTrials`] before trial generation.
    pub fn analyze(&self) -> Result<CostReport, SimError> {
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        analysis::analyze(&self.layered, trials)
    }

    /// Static cost analysis of prefix caching *without* reordering (the
    /// ablation of the paper's §IV.B motivation).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoTrials`] before trial generation.
    pub fn analyze_generation_order(&self) -> Result<CostReport, SimError> {
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        analysis::analyze_generation_order(&self.layered, trials.trials())
    }

    /// Execute all trials with the baseline strategy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoTrials`] before trial generation, or execution
    /// failures.
    pub fn run_baseline(&self) -> Result<RunResult, SimError> {
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        BaselineExecutor::new(&self.layered).run(trials.trials())
    }

    /// [`Simulation::run_baseline`] with instrumentation streamed into
    /// `recorder` (see [`BaselineExecutor::run_traced`]).
    ///
    /// # Errors
    ///
    /// As [`Simulation::run_baseline`].
    pub fn run_baseline_traced<R: qsim_telemetry::Recorder + ?Sized>(
        &self,
        recorder: &R,
    ) -> Result<RunResult, SimError> {
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        BaselineExecutor::new(&self.layered).run_traced(trials.trials(), recorder)
    }

    /// Execute all trials with trial reordering and prefix-state caching.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoTrials`] before trial generation, or execution
    /// failures.
    pub fn run_reordered(&self) -> Result<RunResult, SimError> {
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        ReuseExecutor::new(&self.layered).run(trials.trials())
    }

    /// [`Simulation::run_reordered`] with instrumentation streamed into
    /// `recorder` (see [`ReuseExecutor::run_traced`]).
    ///
    /// # Errors
    ///
    /// As [`Simulation::run_reordered`].
    pub fn run_reordered_traced<R: qsim_telemetry::Recorder + ?Sized>(
        &self,
        recorder: &R,
    ) -> Result<RunResult, SimError> {
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        ReuseExecutor::new(&self.layered).run_traced(trials.trials(), recorder)
    }

    /// Execute with reordering under a hard cap of `budget` stored state
    /// vectors (see [`crate::exec::ReuseExecutor::run_with_budget`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoTrials`] before trial generation, or execution
    /// failures.
    pub fn run_reordered_with_budget(&self, budget: usize) -> Result<RunResult, SimError> {
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        ReuseExecutor::new(&self.layered).run_with_budget(trials.trials(), budget)
    }

    /// [`Simulation::run_reordered_with_budget`] with instrumentation (see
    /// [`ReuseExecutor::run_traced`]).
    ///
    /// # Errors
    ///
    /// As [`Simulation::run_reordered_with_budget`].
    pub fn run_reordered_with_budget_traced<R: qsim_telemetry::Recorder + ?Sized>(
        &self,
        budget: usize,
        recorder: &R,
    ) -> Result<RunResult, SimError> {
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        ReuseExecutor::new(&self.layered).run_with_budget_traced(trials.trials(), budget, recorder)
    }

    /// Static analysis under a stored-state budget.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoTrials`] before trial generation.
    pub fn analyze_with_budget(&self, budget: usize) -> Result<CostReport, SimError> {
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        let mut sorted = trials.trials().to_vec();
        crate::order::reorder(&mut sorted);
        analysis::analyze_sorted_with_budget(&self.layered, &sorted, budget)
    }

    /// Execute with reordering and compressed at-rest frontiers (see
    /// [`crate::compressed`]); outcomes remain identical to the baseline.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoTrials`] before trial generation, or execution
    /// failures.
    pub fn run_reordered_compressed(
        &self,
    ) -> Result<(RunResult, crate::compressed::CompressionStats), SimError> {
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        crate::compressed::run_reordered_compressed(&self.layered, trials.trials())
    }

    /// [`Simulation::run_reordered_compressed`] with instrumentation (see
    /// [`crate::compressed::run_reordered_compressed_traced`]).
    ///
    /// # Errors
    ///
    /// As [`Simulation::run_reordered_compressed`].
    pub fn run_reordered_compressed_traced<R: qsim_telemetry::Recorder + ?Sized>(
        &self,
        recorder: &R,
    ) -> Result<(RunResult, crate::compressed::CompressionStats), SimError> {
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        crate::compressed::run_reordered_compressed_traced(&self.layered, trials.trials(), recorder)
    }

    /// Execute all trials with the batched tree executor (see
    /// [`crate::tree::TreeExecutor`]): the reuse trie made explicit, with
    /// every fused op swept across the whole sibling frontier. Outcomes
    /// and pass accounting are bitwise identical to
    /// [`Simulation::run_reordered`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoTrials`] before trial generation, or execution
    /// failures.
    pub fn run_tree(&self) -> Result<RunResult, SimError> {
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        crate::tree::TreeExecutor::new(&self.layered).run(trials.trials())
    }

    /// [`Simulation::run_tree`] with instrumentation streamed into
    /// `recorder` (see [`crate::tree::TreeExecutor::run_traced`]).
    ///
    /// # Errors
    ///
    /// As [`Simulation::run_tree`].
    pub fn run_tree_traced<R: qsim_telemetry::Recorder + ?Sized>(
        &self,
        recorder: &R,
    ) -> Result<RunResult, SimError> {
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        crate::tree::TreeExecutor::new(&self.layered).run_traced(trials.trials(), recorder)
    }

    /// [`Simulation::run_reordered`] through the persistent cross-run
    /// prefix store (see [`crate::semcache`]): consult the store before
    /// materializing the shared prefix, publish the frontier after a
    /// miss. Outcomes and [`crate::exec::ExecStats`] are bitwise identical
    /// to [`Simulation::run_reordered`] whether the lookup hits or
    /// misses.
    ///
    /// # Errors
    ///
    /// As [`Simulation::run_reordered`]; store I/O problems degrade to an
    /// uncached run, they never fail it.
    pub fn run_reordered_cached(
        &self,
        store: &redsim_msvstore::MsvStore,
    ) -> Result<(RunResult, crate::semcache::CacheOutcome), SimError> {
        self.run_reordered_cached_traced(store, &qsim_telemetry::NullRecorder)
    }

    /// [`Simulation::run_reordered_cached`] with instrumentation: the
    /// usual reuse-executor telemetry plus the `msvstore.*` counters
    /// (hit/miss/store/evict, bytes moved, and the pass/op credit that
    /// keeps trace cross-checks exact on hit runs).
    ///
    /// # Errors
    ///
    /// As [`Simulation::run_reordered_cached`].
    pub fn run_reordered_cached_traced<R: qsim_telemetry::Recorder + ?Sized>(
        &self,
        store: &redsim_msvstore::MsvStore,
        recorder: &R,
    ) -> Result<(RunResult, crate::semcache::CacheOutcome), SimError> {
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        crate::semcache::run_reordered_cached_traced(
            &self.layered,
            &self.model,
            trials.trials(),
            store,
            recorder,
        )
    }

    /// Compile the plan once, ask the static advisor for the cheapest
    /// *executable* strategy (see [`qsim_analyzer::advise`]), and run it.
    /// Returns the result together with the winning prediction so callers
    /// can cross-check measured [`crate::exec::ExecStats`] against it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoTrials`] before trial generation, or execution
    /// failures from the selected strategy.
    #[cfg(feature = "advisor")]
    pub fn run_advised(&self) -> Result<(RunResult, qsim_analyzer::StrategyPrediction), SimError> {
        self.run_advised_traced(&qsim_telemetry::NullRecorder)
    }

    /// [`Simulation::run_advised`] with instrumentation: records the
    /// advisor's verdict as `advisor.predicted_passes`,
    /// `advisor.predicted_ops`, `advisor.predicted_msv`, and an
    /// `advisor.selected.<strategy>` counter before handing the run to the
    /// selected executor (which streams its usual telemetry on top).
    ///
    /// # Errors
    ///
    /// As [`Simulation::run_advised`].
    #[cfg(feature = "advisor")]
    pub fn run_advised_traced<R: qsim_telemetry::Recorder + ?Sized>(
        &self,
        recorder: &R,
    ) -> Result<(RunResult, qsim_analyzer::StrategyPrediction), SimError> {
        use qsim_analyzer::Strategy;
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        let chosen = self.advise_choice(trials, recorder);
        let result = match chosen.strategy {
            Strategy::Sequential => {
                BaselineExecutor::new(&self.layered).run_unfused(trials.trials())?
            }
            Strategy::Fused => {
                BaselineExecutor::new(&self.layered).run_traced(trials.trials(), recorder)?
            }
            Strategy::Reuse => {
                ReuseExecutor::new(&self.layered).run_traced(trials.trials(), recorder)?
            }
            Strategy::Compressed => {
                crate::compressed::run_reordered_compressed_traced(
                    &self.layered,
                    trials.trials(),
                    recorder,
                )?
                .0
            }
            Strategy::Tree => crate::tree::TreeExecutor::new(&self.layered)
                .run_traced(trials.trials(), recorder)?,
            Strategy::FrameTracking => {
                unreachable!("best_executable never returns a frame-tracking prediction")
            }
        };
        Ok((result, chosen))
    }

    /// [`Simulation::run_advised_traced`] consulting the persistent
    /// prefix store when — and only when — the advisor selects the reuse
    /// strategy; every other strategy has no seedable root frontier and
    /// runs uncached (`None` in the returned triple).
    ///
    /// # Errors
    ///
    /// As [`Simulation::run_advised`].
    #[cfg(feature = "advisor")]
    pub fn run_advised_cached_traced<R: qsim_telemetry::Recorder + ?Sized>(
        &self,
        store: &redsim_msvstore::MsvStore,
        recorder: &R,
    ) -> Result<
        (RunResult, qsim_analyzer::StrategyPrediction, Option<crate::semcache::CacheOutcome>),
        SimError,
    > {
        use qsim_analyzer::Strategy;
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        let chosen = self.advise_choice(trials, recorder);
        if chosen.strategy == Strategy::Reuse {
            let (result, cache) = crate::semcache::run_reordered_cached_traced(
                &self.layered,
                &self.model,
                trials.trials(),
                store,
                recorder,
            )?;
            return Ok((result, chosen, Some(cache)));
        }
        let result = match chosen.strategy {
            Strategy::Sequential => {
                BaselineExecutor::new(&self.layered).run_unfused(trials.trials())?
            }
            Strategy::Fused => {
                BaselineExecutor::new(&self.layered).run_traced(trials.trials(), recorder)?
            }
            Strategy::Compressed => {
                crate::compressed::run_reordered_compressed_traced(
                    &self.layered,
                    trials.trials(),
                    recorder,
                )?
                .0
            }
            Strategy::Tree => crate::tree::TreeExecutor::new(&self.layered)
                .run_traced(trials.trials(), recorder)?,
            Strategy::Reuse | Strategy::FrameTracking => {
                unreachable!("reuse handled above; frame-tracking is never executable")
            }
        };
        Ok((result, chosen, None))
    }

    /// Compile the execution plan, record the advisor's verdict counters,
    /// and return the winning executable prediction.
    #[cfg(feature = "advisor")]
    fn advise_choice<R: qsim_telemetry::Recorder + ?Sized>(
        &self,
        trials: &TrialSet,
        recorder: &R,
    ) -> qsim_analyzer::StrategyPrediction {
        use qsim_analyzer::Strategy;
        let plan = qsim_analyzer::ExecutionPlan::compile_traced(
            &self.layered,
            trials,
            usize::MAX,
            recorder,
        );
        let advice = qsim_analyzer::advise(&plan);
        let chosen = *advice.best_executable();
        if recorder.enabled() {
            recorder.counter("advisor.predicted_passes", chosen.amplitude_passes);
            recorder.counter("advisor.predicted_ops", chosen.ops);
            recorder.counter("advisor.predicted_msv", chosen.msv_peak as u64);
            recorder.counter(
                match chosen.strategy {
                    Strategy::Sequential => "advisor.selected.sequential",
                    Strategy::Fused => "advisor.selected.fused",
                    Strategy::Reuse => "advisor.selected.reuse",
                    Strategy::Compressed => "advisor.selected.compressed",
                    Strategy::Tree => "advisor.selected.tree",
                    Strategy::FrameTracking => "advisor.selected.frame-tracking",
                },
                1,
            );
        }
        chosen
    }

    /// Analytic first-order prediction of the savings for `n_trials`
    /// Monte-Carlo trials (see [`crate::estimate`]); no trials generated.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Noise`] on model/circuit mismatch.
    pub fn estimate(&self, n_trials: usize) -> Result<crate::estimate::SavingsEstimate, SimError> {
        let generator = TrialGenerator::new(&self.layered, &self.model)?;
        Ok(crate::estimate::estimate_first_order(&self.layered, &generator, n_trials))
    }

    /// The exact outcome distribution from the density-matrix oracle (see
    /// [`crate::reference`]); small registers only.
    ///
    /// # Errors
    ///
    /// Propagates oracle failures (non-native gates, oversized registers).
    pub fn exact_distribution(&self) -> Result<Vec<f64>, SimError> {
        crate::reference::exact_distribution(&self.layered, &self.model)
    }

    /// Multi-threaded baseline execution (`0` threads = all cores).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoTrials`] before trial generation, or execution
    /// failures.
    pub fn run_baseline_parallel(&self, n_threads: usize) -> Result<RunResult, SimError> {
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        crate::parallel::run_baseline_parallel(&self.layered, trials.trials(), n_threads)
    }

    /// Multi-threaded reordered execution (`0` threads = all cores).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoTrials`] before trial generation, or execution
    /// failures.
    pub fn run_reordered_parallel(&self, n_threads: usize) -> Result<RunResult, SimError> {
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        crate::parallel::run_reordered_parallel(&self.layered, trials.trials(), n_threads)
    }

    /// [`Simulation::run_baseline_parallel`] with a shared recorder across
    /// workers (see [`crate::parallel::run_baseline_parallel_traced`]).
    ///
    /// # Errors
    ///
    /// As [`Simulation::run_baseline_parallel`].
    pub fn run_baseline_parallel_traced<R: qsim_telemetry::Recorder + ?Sized>(
        &self,
        n_threads: usize,
        recorder: &R,
    ) -> Result<RunResult, SimError> {
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        crate::parallel::run_baseline_parallel_traced(
            &self.layered,
            trials.trials(),
            n_threads,
            recorder,
        )
    }

    /// [`Simulation::run_reordered_parallel`] with a shared recorder across
    /// workers (see [`crate::parallel::run_reordered_parallel_traced`]).
    ///
    /// # Errors
    ///
    /// As [`Simulation::run_reordered_parallel`].
    pub fn run_reordered_parallel_traced<R: qsim_telemetry::Recorder + ?Sized>(
        &self,
        n_threads: usize,
        recorder: &R,
    ) -> Result<RunResult, SimError> {
        let trials = self.trials.as_ref().ok_or(SimError::NoTrials)?;
        crate::parallel::run_reordered_parallel_traced(
            &self.layered,
            trials.trials(),
            n_threads,
            recorder,
        )
    }

    /// Aggregate a run's outcomes into a histogram over the classical
    /// register.
    pub fn histogram(&self, result: &RunResult) -> Histogram {
        Histogram::from_outcomes(self.layered.n_cbits(), &result.outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::catalog;

    fn sim() -> Simulation {
        Simulation::from_circuit(&catalog::bv(4, 0b111), NoiseModel::uniform(4, 5e-3, 5e-2, 2e-2))
            .unwrap()
    }

    #[test]
    fn requires_trials_before_analysis_or_execution() {
        let s = sim();
        assert!(matches!(s.analyze(), Err(SimError::NoTrials)));
        assert!(matches!(s.run_baseline(), Err(SimError::NoTrials)));
        assert!(matches!(s.run_reordered(), Err(SimError::NoTrials)));
    }

    #[test]
    fn end_to_end_equivalence_and_savings() {
        let mut s = sim();
        s.generate_trials(400, 3).unwrap();
        let report = s.analyze().unwrap();
        assert!(report.savings() > 0.3, "saving {}", report.savings());
        let baseline = s.run_baseline().unwrap();
        let reordered = s.run_reordered().unwrap();
        assert_eq!(baseline.outcomes, reordered.outcomes);
        assert_eq!(reordered.stats.ops, report.optimized_ops);
        assert_eq!(baseline.stats.ops, report.baseline_ops);
        let h = s.histogram(&reordered);
        assert_eq!(h.total(), 400);
        // Most outcomes should still be the hidden string at these rates.
        assert!(h.probability(0b111) > 0.5);
    }

    #[test]
    fn fast_generation_also_runs() {
        let mut s = sim();
        s.generate_trials_fast(300, 9).unwrap();
        let report = s.analyze().unwrap();
        assert_eq!(report.n_trials, 300);
        let result = s.run_reordered().unwrap();
        assert_eq!(result.stats.ops, report.optimized_ops);
    }

    #[test]
    fn set_trials_validates_geometry() {
        let mut s = sim();
        let foreign = TrialSet::new(9, 9, vec![]);
        assert!(matches!(s.set_trials(foreign), Err(SimError::TrialMismatch { .. })));
        let mut other = sim();
        other.generate_trials(10, 0).unwrap();
        let set = other.trials().unwrap().clone();
        s.set_trials(set).unwrap();
        assert_eq!(s.trials().unwrap().len(), 10);
    }

    #[test]
    fn rejects_untranspiled_circuit_eagerly() {
        let mut qc = Circuit::new("ccx", 3, 3);
        qc.ccx(0, 1, 2).measure_all();
        let err =
            Simulation::from_circuit(&qc, NoiseModel::uniform(3, 1e-3, 1e-2, 0.0)).unwrap_err();
        assert!(matches!(err, SimError::Noise(_)));
    }

    #[test]
    fn facade_budget_and_parallel_paths_agree() {
        let mut s = sim();
        s.generate_trials(300, 21).unwrap();
        let baseline = s.run_baseline().unwrap();
        let budgeted = s.run_reordered_with_budget(2).unwrap();
        assert_eq!(budgeted.outcomes, baseline.outcomes);
        assert!(budgeted.stats.peak_msv <= 2);
        assert_eq!(s.analyze_with_budget(2).unwrap().optimized_ops, budgeted.stats.ops);
        let par = s.run_reordered_parallel(3).unwrap();
        assert_eq!(par.outcomes, baseline.outcomes);
        let par_base = s.run_baseline_parallel(3).unwrap();
        assert_eq!(par_base.outcomes, baseline.outcomes);
    }

    #[test]
    fn facade_compressed_and_oracle_paths() {
        let mut s = sim();
        s.generate_trials(400, 8).unwrap();
        let baseline = s.run_baseline().unwrap();
        let (compressed, stats) = s.run_reordered_compressed().unwrap();
        assert_eq!(compressed.outcomes, baseline.outcomes);
        assert!(stats.frames_stored > 0);
        let exact = s.exact_distribution().unwrap();
        assert!((exact.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let hist = s.histogram(&compressed);
        assert!(hist.tv_distance(&exact) < 0.15); // coarse at 400 trials
    }

    #[test]
    fn accessors_expose_components() {
        let mut s = sim();
        assert_eq!(s.layered().n_qubits(), 4);
        assert_eq!(s.model().n_qubits(), 4);
        assert!(s.trials().is_none());
        s.generate_trials(5, 0).unwrap();
        assert_eq!(s.trials().unwrap().len(), 5);
    }
}
