//! Static cost analysis of the redundancy-eliminated execution.
//!
//! The paper's metrics — normalized computation (basic operations relative
//! to the baseline) and Maintained State Vectors — are pure functions of the
//! *trial structure*, not of any amplitude. This module computes them from
//! the sorted trial list alone using a consecutive-LCP identity, in
//! `O(total injections)` time and `O(1)` extra space, which is what makes
//! the paper's 10⁶-trial, 40-qubit scalability experiments (Figs. 7–8)
//! reproducible on a laptop.
//!
//! **The identity.** With trials sorted under the reorder key, execution is
//! a depth-first traversal of the injection prefix trie, and every piece of
//! computation is performed at the trie node that owns it, exactly once.
//! Walking the sorted list, trial *i* reuses from its predecessor the `k =
//! lcp(i−1, i)` shared injections plus all gate layers up to the
//! predecessor's `(k+1)`-th injection layer (where the shared node's lazily
//! advancing frontier stopped); everything after that is new work charged to
//! trial *i*. The real executor ([`crate::exec::ReuseExecutor`]) matches
//! these numbers operation for operation — tests assert exact equality.

use qsim_circuit::LayeredCircuit;
use qsim_noise::{Trial, TrialSet};

use crate::order::{compare_trials, lcp, reorder};
use crate::SimError;

/// The static analyzer's verdict for one circuit + trial set.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CostReport {
    /// Number of trials analyzed.
    pub n_trials: usize,
    /// Gate applications per full (uncached) trial.
    pub gates_per_trial: u64,
    /// Basic operations of the baseline strategy (every trial from
    /// scratch): `Σ (gates + injections)`.
    pub baseline_ops: u64,
    /// Basic operations of the reordered, prefix-cached execution.
    pub optimized_ops: u64,
    /// Peak number of concurrently maintained state vectors (the paper's
    /// MSV metric; cached frontiers, not counting the working register)
    /// under this crate's **one-trial-lookahead eager drop** policy: a
    /// frontier is cloned only if the immediately next trial still branches
    /// from it.
    pub msv_peak: usize,
    /// MSVs under the paper's conservative storage policy, which keeps a
    /// frontier at *every* node of the current trial's path (any future
    /// trial might branch there): `max(injections per trial) + 1`. This is
    /// the accounting that reproduces the absolute values of the paper's
    /// Fig. 6 (e.g. 3 for `rb`, 6 for `qft5`); `msv_peak` is a strict
    /// improvement enabled by the lookahead. Defaults to zero when absent
    /// so reports serialized before this field load.
    #[cfg_attr(feature = "serde", serde(default))]
    pub msv_path_peak: usize,
}

impl CostReport {
    /// `optimized_ops / baseline_ops` — the paper's "normalized
    /// computation" (Figs. 5 and 7). Returns 1.0 for an empty workload.
    pub fn normalized_computation(&self) -> f64 {
        if self.baseline_ops == 0 {
            1.0
        } else {
            self.optimized_ops as f64 / self.baseline_ops as f64
        }
    }

    /// Fraction of computation eliminated, `1 − normalized`.
    pub fn savings(&self) -> f64 {
        1.0 - self.normalized_computation()
    }
}

impl std::fmt::Display for CostReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} trials: {} -> {} ops (normalized {:.3}, saving {:.1}%), {} MSVs",
            self.n_trials,
            self.baseline_ops,
            self.optimized_ops,
            self.normalized_computation(),
            100.0 * self.savings(),
            self.msv_peak
        )
    }
}

/// Analyze a trial set, reordering a copy internally.
///
/// # Errors
///
/// Returns [`SimError::TrialMismatch`] or [`SimError::LayerOutOfRange`] if
/// the trials do not belong to this circuit.
pub fn analyze(layered: &LayeredCircuit, set: &TrialSet) -> Result<CostReport, SimError> {
    check_geometry(layered, set)?;
    let mut trials = set.trials().to_vec();
    reorder(&mut trials);
    analyze_sorted(layered, &trials)
}

/// Analyze an **already reordered** trial slice.
///
/// # Errors
///
/// Returns [`SimError::LayerOutOfRange`] for injections beyond the circuit
/// depth, or [`SimError::Circuit`] if the slice is not sorted under the
/// reorder key.
pub fn analyze_sorted(layered: &LayeredCircuit, trials: &[Trial]) -> Result<CostReport, SimError> {
    let gates = layered.total_gates() as u64;
    let n_layers = layered.n_layers();
    let mut baseline: u64 = 0;
    let mut optimized: u64 = 0;
    let mut msv: usize = 0;
    let mut msv_path: usize = 0;

    for (i, cur) in trials.iter().enumerate() {
        validate_layers(cur, n_layers)?;
        let len = cur.n_injections() as u64;
        baseline += gates + len;
        msv_path = msv_path.max(cur.n_injections() + 1);
        if i == 0 {
            optimized += gates + len;
        } else {
            let prev = &trials[i - 1];
            if compare_trials(prev, cur) == std::cmp::Ordering::Greater {
                return Err(SimError::Circuit(format!(
                    "trials are not in reorder order at index {i}; call reorder first"
                )));
            }
            let k = lcp(prev, cur);
            if k == cur.n_injections() && k == prev.n_injections() {
                // Identical trials: full reuse, only a fresh measurement.
            } else {
                // Sorted order guarantees prev is never a strict prefix of
                // cur, so prev has a k-th injection: the divergence point.
                let divergence = prev.injections()[k];
                let reused_gates = layered.gates_through(divergence.layer()) as u64;
                optimized += (gates - reused_gates) + (len - k as u64);
            }
        }
        if i + 1 < trials.len() {
            msv = msv.max(lcp(cur, &trials[i + 1]) + 1);
        }
    }
    if !trials.is_empty() {
        msv = msv.max(1); // the root (error-free) frontier is always held
    }
    Ok(CostReport {
        n_trials: trials.len(),
        gates_per_trial: gates,
        baseline_ops: baseline,
        optimized_ops: optimized,
        msv_peak: msv,
        msv_path_peak: if trials.is_empty() { 0 } else { msv_path },
    })
}

/// Analyze the reordered execution under a hard cap of `budget`
/// concurrently stored state vectors (see
/// [`crate::exec::ReuseExecutor::run_with_budget`]): sharing deeper than
/// `budget − 1` injections is recomputed. This quantifies the
/// memory/computation trade-off the paper's §IV motivates; with
/// `budget = usize::MAX` it reproduces [`analyze_sorted`] exactly.
///
/// Implemented as a dry run of the executor's stack discipline over
/// `(depth, layer)` pairs — no amplitudes, `O(total injections)` time.
///
/// # Errors
///
/// Returns [`SimError::Circuit`] for `budget == 0` or unsorted input, and
/// [`SimError::LayerOutOfRange`] for out-of-range injections.
pub fn analyze_sorted_with_budget(
    layered: &LayeredCircuit,
    trials: &[Trial],
    budget: usize,
) -> Result<CostReport, SimError> {
    if budget == 0 {
        return Err(SimError::Circuit(
            "state-vector budget must be at least 1 (the working frontier)".to_owned(),
        ));
    }
    let gates = layered.total_gates() as u64;
    let n_layers = layered.n_layers();
    let last_layer = n_layers as i64 - 1;
    // Gates in layers (a, b] for -1 <= a <= b < n_layers.
    let gates_between = |after: i64, through: i64| -> u64 {
        if through <= after {
            return 0;
        }
        let hi = layered.gates_through(through as usize) as u64;
        let lo = if after < 0 { 0 } else { layered.gates_through(after as usize) as u64 };
        hi - lo
    };

    let mut baseline: u64 = 0;
    let mut optimized: u64 = 0;
    let mut msv: usize = 0;
    let mut msv_path: usize = 0;
    // Dry-run frame stack: (depth, highest layer applied).
    let mut stack: Vec<(usize, i64)> = vec![(0, -1)];

    for (i, cur) in trials.iter().enumerate() {
        validate_layers(cur, n_layers)?;
        if i > 0 && compare_trials(&trials[i - 1], cur) == std::cmp::Ordering::Greater {
            return Err(SimError::Circuit(format!(
                "trials are not in reorder order at index {i}; call reorder first"
            )));
        }
        let injections = cur.injections();
        msv_path = msv_path.max(injections.len() + 1);
        baseline += gates + injections.len() as u64;
        let keep = match trials.get(i + 1) {
            Some(next) => lcp(cur, next).min(budget - 1),
            None => 0,
        };
        let mut d = stack.last().expect("root frame").0;
        loop {
            if d == injections.len() {
                let top = stack.last_mut().expect("root frame");
                optimized += gates_between(top.1, last_layer);
                top.1 = last_layer;
                while stack.last().is_some_and(|f| f.0 > keep) {
                    stack.pop();
                }
                break;
            }
            let target = injections[d].layer() as i64;
            {
                let top = stack.last_mut().expect("root frame");
                optimized += gates_between(top.1, target);
                top.1 = top.1.max(target);
            }
            if d < keep {
                optimized += 1;
                stack.push((d + 1, target));
                msv = msv.max(stack.len());
                d += 1;
            } else {
                if d > keep {
                    stack.pop();
                    while stack.last().is_some_and(|f| f.0 > keep) {
                        stack.pop();
                    }
                }
                let mut done = target;
                optimized += 1;
                for inj in &injections[d + 1..] {
                    let layer = inj.layer() as i64;
                    optimized += gates_between(done, layer) + 1;
                    done = layer;
                }
                optimized += gates_between(done, last_layer);
                break;
            }
        }
    }
    Ok(CostReport {
        n_trials: trials.len(),
        gates_per_trial: gates,
        baseline_ops: baseline,
        optimized_ops: optimized,
        msv_peak: if trials.is_empty() { 0 } else { msv.max(1) },
        msv_path_peak: if trials.is_empty() { 0 } else { msv_path },
    })
}

/// Histogram of consecutive shared-prefix depths in a **sorted** trial
/// slice: `hist[k]` counts adjacent pairs sharing exactly `k` leading
/// injections. This is the paper's redundancy structure made visible — the
/// mass at `k ≥ 1` is what recursion levels past the first reorder buy, and
/// `max k + 1` is the eager MSV peak.
///
/// # Errors
///
/// Returns [`SimError::Circuit`] if the slice is not sorted.
pub fn lcp_histogram(trials: &[Trial]) -> Result<Vec<usize>, SimError> {
    let mut hist = Vec::new();
    for (i, pair) in trials.windows(2).enumerate() {
        if compare_trials(&pair[0], &pair[1]) == std::cmp::Ordering::Greater {
            return Err(SimError::Circuit(format!(
                "trials are not in reorder order at index {}; call reorder first",
                i + 1
            )));
        }
        let k = lcp(&pair[0], &pair[1]);
        if hist.len() <= k {
            hist.resize(k + 1, 0);
        }
        hist[k] += 1;
    }
    Ok(hist)
}

/// Ablation model: prefix caching **without** reordering (trials executed in
/// generation order, each reusing only its LCP with the immediately previous
/// trial through per-injection snapshots). Quantifies how much of the win
/// comes from the reorder itself; `msv_peak` reports the snapshot cost —
/// the previous trial's snapshots plus the current trial's, which is what a
/// consecutive-reuse scheme must hold.
///
/// # Errors
///
/// Returns [`SimError::LayerOutOfRange`] for injections beyond the depth.
pub fn analyze_generation_order(
    layered: &LayeredCircuit,
    trials: &[Trial],
) -> Result<CostReport, SimError> {
    let gates = layered.total_gates() as u64;
    let n_layers = layered.n_layers();
    let mut baseline: u64 = 0;
    let mut optimized: u64 = 0;
    let mut msv: usize = 0;
    for (i, cur) in trials.iter().enumerate() {
        validate_layers(cur, n_layers)?;
        let len = cur.n_injections() as u64;
        baseline += gates + len;
        if i == 0 {
            optimized += gates + len;
            msv = msv.max(cur.n_injections());
        } else {
            let prev = &trials[i - 1];
            let k = lcp(prev, cur);
            if k == 0 {
                optimized += gates + len;
            } else {
                // Snapshot after the k-th shared injection sits at that
                // injection's layer; everything later is recomputed.
                let resume = cur.injections()[k - 1];
                let reused_gates = layered.gates_through(resume.layer()) as u64;
                optimized += (gates - reused_gates) + (len - k as u64);
            }
            msv = msv.max(prev.n_injections() + cur.n_injections());
        }
    }
    Ok(CostReport {
        n_trials: trials.len(),
        gates_per_trial: gates,
        baseline_ops: baseline,
        optimized_ops: optimized,
        msv_peak: msv,
        msv_path_peak: trials.iter().map(|t| t.n_injections() + 1).max().unwrap_or(0),
    })
}

fn check_geometry(layered: &LayeredCircuit, set: &TrialSet) -> Result<(), SimError> {
    if set.n_qubits() != layered.n_qubits() || set.n_layers() != layered.n_layers() {
        return Err(SimError::TrialMismatch {
            trials: (set.n_qubits(), set.n_layers()),
            circuit: (layered.n_qubits(), layered.n_layers()),
        });
    }
    Ok(())
}

fn validate_layers(trial: &Trial, n_layers: usize) -> Result<(), SimError> {
    if let Some(inj) = trial.injections().last() {
        if inj.layer() >= n_layers {
            return Err(SimError::LayerOutOfRange { layer: inj.layer(), n_layers });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::Circuit;
    use qsim_noise::{Injection, Pauli};

    /// A 1-gate-per-layer linear circuit of the given depth.
    fn chain(depth: usize) -> LayeredCircuit {
        let mut qc = Circuit::new("chain", 1, 1);
        for _ in 0..depth {
            qc.h(0);
        }
        qc.measure(0, 0);
        qc.layered().unwrap()
    }

    fn single(layer: usize, p: Pauli) -> Trial {
        Trial::new(vec![Injection::single(layer, 0, p)], 0, 0)
    }

    #[test]
    fn figure_two_example() {
        // Paper Fig. 2: depth-3 circuit (think layers L0, L1, L2); trials:
        // ③ error after L0, ② after L1, ① after L2, plus the error-free
        // run (a). Optimized order is ③ ② ① (a).
        let layered = chain(3);
        let trials = vec![
            single(0, Pauli::X),
            single(1, Pauli::X),
            single(2, Pauli::X),
            Trial::error_free(0),
        ];
        let report = analyze_sorted(&layered, &trials).unwrap();
        // Baseline: 4 trials × 3 gates + 3 injections = 15.
        assert_eq!(report.baseline_ops, 15);
        // Optimized: ③ pays 3+1, ② reuses L0 → 2+1, ① reuses L0..L1 → 1+1,
        // (a) reuses L0..L2 → 0. Total 9.
        assert_eq!(report.optimized_ops, 4 + 3 + 2);
        // Only the error-free frontier is ever stored (paper: "only one
        // state vector needs to be stored").
        assert_eq!(report.msv_peak, 1);
        assert!((report.normalized_computation() - 9.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn inefficient_order_is_rejected() {
        let layered = chain(3);
        let trials = vec![single(2, Pauli::X), single(0, Pauli::X)];
        let err = analyze_sorted(&layered, &trials).unwrap_err();
        assert!(matches!(err, SimError::Circuit(_)));
    }

    #[test]
    fn identical_trials_cost_nothing_extra() {
        let layered = chain(4);
        let t = single(1, Pauli::Z);
        let trials = vec![t.clone(), t.clone(), t];
        let report = analyze_sorted(&layered, &trials).unwrap();
        assert_eq!(report.baseline_ops, 3 * 5);
        assert_eq!(report.optimized_ops, 5);
    }

    #[test]
    fn shared_two_error_prefix_increases_msv() {
        let layered = chain(5);
        let shared = vec![Injection::single(0, 0, Pauli::X), Injection::single(2, 0, Pauli::Y)];
        let mut a = shared.clone();
        a.push(Injection::single(3, 0, Pauli::Z));
        let mut b = shared.clone();
        b.push(Injection::single(4, 0, Pauli::Z));
        let trials = vec![
            Trial::new(a, 0, 0),
            Trial::new(b, 0, 1),
            Trial::new(shared, 0, 2), // the prefix trial itself, sorted last
        ];
        let report = analyze_sorted(&layered, &trials).unwrap();
        // Consecutive LCPs are 2 and 2 → depth-2 node + root ⇒ 3 MSVs.
        assert_eq!(report.msv_peak, 3);
        // Trial 2 reuses gates through L3 (divergence = prev's 3rd
        // injection at layer 3) and 2 injections: extra = (5−4) + 1 = 2.
        // Trial 3 reuses through L4: extra = (5−5) + 0 = 0.
        assert_eq!(report.optimized_ops, (5 + 3) + 2);
    }

    #[test]
    fn geometry_mismatch_detected() {
        let layered = chain(3);
        let set = TrialSet::new(2, 3, vec![Trial::error_free(0)]);
        assert!(matches!(analyze(&layered, &set), Err(SimError::TrialMismatch { .. })));
    }

    #[test]
    fn layer_out_of_range_detected() {
        let layered = chain(2);
        let trials = vec![single(5, Pauli::X)];
        assert!(matches!(
            analyze_sorted(&layered, &trials),
            Err(SimError::LayerOutOfRange { layer: 5, n_layers: 2 })
        ));
    }

    #[test]
    fn empty_and_singleton_sets() {
        let layered = chain(3);
        let report = analyze_sorted(&layered, &[]).unwrap();
        assert_eq!(report.baseline_ops, 0);
        assert_eq!(report.msv_peak, 0);
        assert_eq!(report.normalized_computation(), 1.0);
        let report = analyze_sorted(&layered, &[Trial::error_free(0)]).unwrap();
        assert_eq!(report.baseline_ops, 3);
        assert_eq!(report.optimized_ops, 3);
        assert_eq!(report.msv_peak, 1);
    }

    #[test]
    fn generation_order_never_beats_reordered() {
        let layered = qsim_circuit::catalog::qft(4).layered().unwrap();
        let model = qsim_noise::NoiseModel::uniform(4, 0.03, 0.15, 0.0);
        let set = qsim_noise::TrialGenerator::new(&layered, &model).unwrap().generate(400, 1);
        let naive = analyze_generation_order(&layered, set.trials()).unwrap();
        let reordered = analyze(&layered, &set).unwrap();
        assert_eq!(naive.baseline_ops, reordered.baseline_ops);
        assert!(reordered.optimized_ops <= naive.optimized_ops);
        assert!(naive.optimized_ops <= naive.baseline_ops);
    }

    #[test]
    fn savings_grow_with_trial_count() {
        let layered = qsim_circuit::catalog::bv(4, 0b111).layered().unwrap();
        let model = qsim_noise::NoiseModel::uniform(4, 1e-3, 1e-2, 1e-2);
        let generator = qsim_noise::TrialGenerator::new(&layered, &model).unwrap();
        let mut last_norm = f64::INFINITY;
        for n in [64usize, 512, 4096] {
            let set = generator.generate(n, 5);
            let report = analyze(&layered, &set).unwrap();
            let norm = report.normalized_computation();
            assert!(norm < last_norm + 0.05, "n={n}: {norm} vs {last_norm}");
            last_norm = norm;
        }
        // At 4096 trials on a low-error device, most computation is shared.
        assert!(last_norm < 0.35, "normalized computation {last_norm}");
    }

    #[test]
    fn lcp_histogram_counts_adjacent_sharing() {
        let layered = chain(5);
        let shared = vec![Injection::single(0, 0, Pauli::X)];
        let mut deep = shared.clone();
        deep.push(Injection::single(2, 0, Pauli::Y));
        let trials = vec![
            Trial::new(deep, 0, 0),
            Trial::new(shared, 0, 1),
            single(3, Pauli::Z),
            Trial::error_free(2),
        ];
        // Pairs: (deep, shared) share 1; (shared, single@3) share 0;
        // (single@3, error-free) share 0.
        let hist = lcp_histogram(&trials).unwrap();
        assert_eq!(hist, vec![2, 1]);
        // Consistency with the analyzer's MSV: max k + 1.
        let report = analyze_sorted(&layered, &trials).unwrap();
        assert_eq!(report.msv_peak, hist.len());
        // Unsorted input is rejected.
        let unsorted = vec![Trial::error_free(0), single(0, Pauli::X)];
        assert!(lcp_histogram(&unsorted).is_err());
        assert!(lcp_histogram(&[]).unwrap().is_empty());
    }

    #[test]
    fn unbounded_budget_reproduces_analyze_sorted() {
        let layered = qsim_circuit::catalog::qft(4).layered().unwrap();
        let model = qsim_noise::NoiseModel::uniform(4, 0.04, 0.15, 0.0);
        for seed in 0..3u64 {
            let set =
                qsim_noise::TrialGenerator::new(&layered, &model).unwrap().generate(300, seed);
            let mut trials = set.into_trials();
            crate::order::reorder(&mut trials);
            let unbounded = analyze_sorted(&layered, &trials).unwrap();
            let budgeted = analyze_sorted_with_budget(&layered, &trials, usize::MAX).unwrap();
            assert_eq!(budgeted.optimized_ops, unbounded.optimized_ops, "seed {seed}");
            assert_eq!(budgeted.msv_peak, unbounded.msv_peak, "seed {seed}");
            assert_eq!(budgeted.baseline_ops, unbounded.baseline_ops, "seed {seed}");
            // A budget at the unbounded peak changes nothing either.
            let at_peak =
                analyze_sorted_with_budget(&layered, &trials, unbounded.msv_peak).unwrap();
            assert_eq!(at_peak.optimized_ops, unbounded.optimized_ops, "seed {seed}");
        }
    }

    #[test]
    fn tighter_budgets_cost_monotonically_more() {
        let layered = qsim_circuit::catalog::qft(4).layered().unwrap();
        let model = qsim_noise::NoiseModel::uniform(4, 0.08, 0.3, 0.0);
        let set = qsim_noise::TrialGenerator::new(&layered, &model).unwrap().generate(400, 7);
        let mut trials = set.into_trials();
        crate::order::reorder(&mut trials);
        let mut last_ops = 0u64;
        for budget in (1..=6).rev() {
            let report = analyze_sorted_with_budget(&layered, &trials, budget).unwrap();
            assert!(report.msv_peak <= budget, "budget {budget}: peak {}", report.msv_peak);
            assert!(
                report.optimized_ops >= last_ops,
                "budget {budget} cheaper than looser budget: {} < {last_ops}",
                report.optimized_ops
            );
            assert!(report.optimized_ops <= report.baseline_ops);
            last_ops = report.optimized_ops;
        }
        // Even budget 1 (root frontier only) still beats the baseline: the
        // error-free prefix sharing survives.
        let b1 = analyze_sorted_with_budget(&layered, &trials, 1).unwrap();
        assert!(b1.optimized_ops < b1.baseline_ops);
    }

    #[test]
    fn budget_zero_is_rejected() {
        let layered = chain(2);
        assert!(matches!(analyze_sorted_with_budget(&layered, &[], 0), Err(SimError::Circuit(_))));
    }

    #[test]
    fn path_msv_is_max_injections_plus_root() {
        let layered = chain(5);
        let trials = vec![
            Trial::new(
                vec![Injection::single(0, 0, Pauli::X), Injection::single(2, 0, Pauli::Y)],
                0,
                0,
            ),
            single(1, Pauli::Z),
            Trial::error_free(0),
        ];
        let mut sorted = trials.clone();
        crate::order::reorder(&mut sorted);
        let report = analyze_sorted(&layered, &sorted).unwrap();
        // Deepest trial has 2 injections → 3 stored states without lookahead.
        assert_eq!(report.msv_path_peak, 3);
        // With lookahead nothing is shared beyond the root here.
        assert_eq!(report.msv_peak, 1);
        assert!(report.msv_peak <= report.msv_path_peak);
    }

    #[test]
    fn display_formats_report() {
        let report = CostReport {
            n_trials: 10,
            gates_per_trial: 5,
            baseline_ops: 100,
            optimized_ops: 25,
            msv_peak: 3,
            msv_path_peak: 4,
        };
        let text = report.to_string();
        assert!(text.contains("saving 75.0%"));
        assert!(text.contains("3 MSVs"));
    }
}
