//! Analytic first-order prediction of the expected savings — no trials
//! generated, no sort, `O(positions log positions)` time.
//!
//! The model keeps only **first-injection sharing**, the dominant effect the
//! paper's Fig. 2 illustrates: after reordering, all trials whose first
//! injected error coincides (same layer, site, and operator — a "first
//! key") share the error-free computation up to that key's layer plus the
//! injection itself; everything after is charged in full. Deeper sharing
//! (second, third errors …) is ignored, so the estimate is a slight
//! **over**-estimate of the optimized cost — tight at realistic error rates
//! where multi-error collisions are rare (the same exponential-decay
//! argument the paper makes for the MSV count).
//!
//! With `F` first keys in canonical order, `q_f` the per-trial probability
//! of key `f` firing, `π_f = q_f·Π_{f'<f}(1 − q_{f'})` the probability that
//! `f` is the *first* key to fire, and `π¹_f = π_f·Π_{f'>f}(1 − q_{f'})`
//! the probability that `f` fires **alone** (an exactly-one-error trial —
//! all such trials are identical and deduplicate to one execution):
//!
//! ```text
//! E[optimized] ≈ G                                      (error-free frontier)
//!   + Σ_f (1 − (1−π_f)^N)                               (one edge per used key)
//!   + Σ_f (1 − (1−π¹_f)^N)·(G − gates_through(ℓ_f))     (the deduped single-error trial)
//!   + N·Σ_f (π_f − π¹_f)·(G − gates_through(ℓ_f))       (multi-error remainders)
//!   + N·(λ − P(any injection))                          (injections beyond the first)
//! E[baseline]  = N·(G + λ)                              (λ = Σ rates)
//! ```

use qsim_circuit::LayeredCircuit;
use qsim_noise::TrialGenerator;

/// The analytic prediction.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SavingsEstimate {
    /// Trials the prediction is for.
    pub n_trials: usize,
    /// Expected baseline operations `N·(G + λ)`.
    pub expected_baseline_ops: f64,
    /// Expected optimized operations under first-order sharing (an upper
    /// bound in expectation on the true optimized cost).
    pub expected_optimized_ops: f64,
}

impl SavingsEstimate {
    /// Predicted normalized computation.
    pub fn normalized_computation(&self) -> f64 {
        if self.expected_baseline_ops == 0.0 {
            1.0
        } else {
            self.expected_optimized_ops / self.expected_baseline_ops
        }
    }

    /// Predicted saving `1 − normalized`.
    pub fn savings(&self) -> f64 {
        1.0 - self.normalized_computation()
    }
}

/// Predict the expected cost of the reordered execution for `n_trials`
/// Monte-Carlo trials, from the error-position table alone.
pub fn estimate_first_order(
    layered: &LayeredCircuit,
    generator: &TrialGenerator,
    n_trials: usize,
) -> SavingsEstimate {
    let gates = layered.total_gates() as f64;
    let n = n_trials as f64;

    // Positions in canonical (layer-ascending) order; order within a layer
    // does not change the estimate because gates_through is per layer.
    let mut positions = generator.position_info();
    positions.sort_by_key(|p| p.layer);

    let lambda: f64 = positions.iter().map(|p| p.rate).sum();
    let no_injection: f64 = positions.iter().map(|p| 1.0 - p.rate).product();
    let p_any = 1.0 - no_injection;

    let mut survive = 1.0f64; // Π (1 − q_f) over keys seen so far
    let mut edge_ops = 0.0f64;
    let mut remainder_ops = 0.0f64;
    for position in &positions {
        let reuse = layered.gates_through(position.layer) as f64;
        let q = position.rate / position.n_variants as f64;
        for _ in 0..position.n_variants {
            let pi = q * survive;
            // Probability this key fires with no other key at all: the
            // exactly-one-error trial, of which all copies are identical.
            let survive_rest =
                if survive * (1.0 - q) > 0.0 { no_injection / (survive * (1.0 - q)) } else { 0.0 };
            let pi_alone = pi * survive_rest;
            edge_ops += 1.0 - (1.0 - pi).powf(n);
            remainder_ops += (1.0 - (1.0 - pi_alone).powf(n)) * (gates - reuse);
            remainder_ops += n * (pi - pi_alone) * (gates - reuse);
            survive *= 1.0 - q;
        }
    }
    let beyond_first = n * (lambda - p_any);

    SavingsEstimate {
        n_trials,
        expected_baseline_ops: n * (gates + lambda),
        expected_optimized_ops: gates + edge_ops + remainder_ops + beyond_first,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use qsim_circuit::catalog;
    use qsim_noise::NoiseModel;

    fn compare(circuit: &qsim_circuit::Circuit, model: &NoiseModel, n: usize) -> (f64, f64) {
        let layered = circuit.layered().unwrap();
        let generator = TrialGenerator::new(&layered, model).unwrap();
        let estimate = estimate_first_order(&layered, &generator, n);
        let set = generator.generate(n, 11);
        let exact = analyze(&layered, &set).unwrap();
        (estimate.normalized_computation(), exact.normalized_computation())
    }

    #[test]
    fn estimate_tracks_exact_at_low_rates() {
        let model = NoiseModel::uniform(4, 1e-3, 1e-2, 0.0);
        for circuit in [catalog::bv(4, 0b111), catalog::qft(4)] {
            let (predicted, measured) = compare(&circuit, &model, 4096);
            // First-order sharing dominates at NISQ rates: within 20%
            // relative (or 0.01 absolute for near-zero values).
            let tolerance = (0.2 * measured).max(0.01);
            assert!(
                (predicted - measured).abs() < tolerance,
                "{}: predicted {predicted} vs measured {measured}",
                circuit.name()
            );
        }
    }

    #[test]
    fn estimate_is_an_upper_bound_in_expectation() {
        // Higher rates create deeper sharing the model ignores, so the
        // prediction should sit at or above the measured cost.
        let model = NoiseModel::uniform(4, 2e-2, 8e-2, 0.0);
        for seed_trials in [1024usize, 4096] {
            let (predicted, measured) = compare(&catalog::qft(4), &model, seed_trials);
            assert!(
                predicted > measured - 0.02,
                "prediction {predicted} fell below measured {measured}"
            );
        }
    }

    #[test]
    fn zero_noise_predicts_full_sharing() {
        let layered = catalog::bv(4, 0b101).layered().unwrap();
        let model = NoiseModel::uniform(4, 0.0, 0.0, 0.0);
        let generator = TrialGenerator::new(&layered, &model).unwrap();
        let estimate = estimate_first_order(&layered, &generator, 10_000);
        // One full pass shared by everything.
        assert!((estimate.expected_optimized_ops - layered.total_gates() as f64).abs() < 1e-9);
        assert!(estimate.savings() > 0.999);
    }

    #[test]
    fn more_trials_predict_more_saving() {
        let layered = catalog::qft(4).layered().unwrap();
        let model = NoiseModel::uniform(4, 1e-3, 1e-2, 0.0);
        let generator = TrialGenerator::new(&layered, &model).unwrap();
        let mut last = f64::INFINITY;
        for n in [256usize, 1024, 4096, 16384] {
            let norm = estimate_first_order(&layered, &generator, n).normalized_computation();
            assert!(norm < last, "n={n}: {norm} !< {last}");
            last = norm;
        }
    }

    #[test]
    fn empty_workload_normalizes_to_one() {
        let qc = qsim_circuit::Circuit::new("empty", 1, 0);
        let layered = qc.layered().unwrap();
        let model = NoiseModel::uniform(1, 0.0, 0.0, 0.0);
        let generator = TrialGenerator::new(&layered, &model).unwrap();
        let estimate = estimate_first_order(&layered, &generator, 0);
        assert_eq!(estimate.normalized_computation(), 1.0);
    }

    #[test]
    fn zero_trial_estimate_is_finite_and_costless() {
        // n = 0: no baseline work, and the optimized side must not report
        // negative or NaN cost for a real circuit either.
        let layered = catalog::qft(4).layered().unwrap();
        let model = NoiseModel::uniform(4, 1e-3, 1e-2, 0.0);
        let generator = TrialGenerator::new(&layered, &model).unwrap();
        let estimate = estimate_first_order(&layered, &generator, 0);
        assert_eq!(estimate.n_trials, 0);
        assert_eq!(estimate.expected_baseline_ops, 0.0);
        assert!(estimate.expected_optimized_ops.is_finite());
        // With zero trials no key ever fires: only the error-free frontier.
        assert!(
            (estimate.expected_optimized_ops - layered.total_gates() as f64).abs() < 1e-9,
            "zero trials should cost exactly one shared pass, got {}",
            estimate.expected_optimized_ops
        );
    }

    #[test]
    fn single_trial_cannot_beat_baseline() {
        // One trial has nothing to share with, so the predicted optimized
        // cost must be within rounding of the baseline (never below zero
        // savings by more than the first-order model's slack).
        let model = NoiseModel::uniform(4, 1e-3, 1e-2, 0.0);
        for circuit in [catalog::bv(4, 0b111), catalog::qft(4)] {
            let layered = circuit.layered().unwrap();
            let generator = TrialGenerator::new(&layered, &model).unwrap();
            let estimate = estimate_first_order(&layered, &generator, 1);
            assert_eq!(estimate.n_trials, 1);
            assert!(estimate.expected_optimized_ops.is_finite());
            assert!(estimate.expected_baseline_ops > 0.0);
            let norm = estimate.normalized_computation();
            // A single trial executes the whole circuit: normalized ≈ 1.
            // The model is an over-estimate, so allow a small overshoot.
            assert!(
                norm > 0.9 && norm < 1.05,
                "{}: single-trial normalized computation {norm} not ≈ 1",
                circuit.name()
            );
        }
    }

    #[test]
    fn huge_trial_counts_stay_finite_and_saturate() {
        // The closed form uses (1 − π)^N; astronomically large N must not
        // overflow to inf/NaN, and the prediction must saturate at the
        // every-key-used limit instead of growing without bound.
        let layered = catalog::qft(4).layered().unwrap();
        let model = NoiseModel::uniform(4, 1e-3, 1e-2, 0.0);
        let generator = TrialGenerator::new(&layered, &model).unwrap();
        let huge = estimate_first_order(&layered, &generator, usize::MAX);
        assert!(huge.expected_baseline_ops.is_finite());
        assert!(huge.expected_optimized_ops.is_finite());
        assert!(huge.expected_optimized_ops > 0.0);
        let norm = huge.normalized_computation();
        assert!((0.0..=1.0).contains(&norm), "normalized computation {norm} out of range");
        // Savings only improve between a large and an astronomical N.
        let large = estimate_first_order(&layered, &generator, 1 << 20);
        assert!(norm <= large.normalized_computation() + 1e-12);
    }
}
