use std::error::Error;
use std::fmt;

use qsim_noise::NoiseError;
use qsim_statevec::StateVecError;

/// Errors from redundancy-eliminated simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The trial set was generated for a different circuit geometry.
    TrialMismatch {
        /// Qubits/layers the trials were generated for.
        trials: (usize, usize),
        /// Qubits/layers of the circuit being executed.
        circuit: (usize, usize),
    },
    /// An injection references a layer beyond the circuit depth.
    LayerOutOfRange {
        /// Offending layer.
        layer: usize,
        /// Circuit depth.
        n_layers: usize,
    },
    /// No trials were generated before asking for analysis or execution.
    NoTrials,
    /// A state-vector operation failed (invalid qubit operands).
    State(StateVecError),
    /// Noise-model validation failed.
    Noise(NoiseError),
    /// Circuit-level validation failed.
    Circuit(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TrialMismatch { trials, circuit } => write!(
                f,
                "trial set generated for {}q/{}-layer circuit, but executing on {}q/{} layers",
                trials.0, trials.1, circuit.0, circuit.1
            ),
            SimError::LayerOutOfRange { layer, n_layers } => {
                write!(f, "injection at layer {layer} but the circuit has {n_layers} layers")
            }
            SimError::NoTrials => write!(f, "no trials generated; call generate_trials first"),
            SimError::State(e) => write!(f, "state-vector failure: {e}"),
            SimError::Noise(e) => write!(f, "noise-model failure: {e}"),
            SimError::Circuit(message) => write!(f, "circuit failure: {message}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::State(e) => Some(e),
            SimError::Noise(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StateVecError> for SimError {
    fn from(e: StateVecError) -> Self {
        SimError::State(e)
    }
}

impl From<NoiseError> for SimError {
    fn from(e: NoiseError) -> Self {
        SimError::Noise(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = SimError::TrialMismatch { trials: (4, 7), circuit: (5, 9) };
        assert!(e.to_string().contains("4q/7-layer"));
        let e = SimError::from(StateVecError::QubitOutOfRange { qubit: 9, n_qubits: 2 });
        assert!(e.source().is_some());
        assert_eq!(
            SimError::NoTrials.to_string(),
            "no trials generated; call generate_trials first"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SimError>();
    }
}
