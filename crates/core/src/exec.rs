//! Real state-vector executors: the paper's baseline (every trial from
//! scratch) and the redundancy-eliminated executor (reordered trials with
//! prefix-state caching and eager dropping).
//!
//! Both executors produce **bitwise identical** per-trial measurement
//! outcomes: a trial's outcome is a function of its final state (the same
//! floating-point operation sequence in both executors) and its private
//! sampling seed. This realises the paper's claim that the optimization "is
//! mathematically equivalent to the original simulation".
//!
//! Since the fusion layer landed, both executors run the *same*
//! [`FusedProgram`], compiled once per trial set with cut-points at the
//! union of the set's injection layers (see `qsim_circuit::fuse`). Fusion
//! changes which floating-point operations produce a final state — so fused
//! results match the unfused path only up to numerical tolerance — but
//! every strategy sharing one program still replays identical float
//! sequences per trial, preserving the bitwise-identity guarantee between
//! baseline and reuse (and budgeted, parallel, compressed) runs.
//!
//! Cost accounting is two-metric:
//!
//! * [`ExecStats::ops`] — the paper's platform-independent metric: source
//!   gates + error-operator applications. Fusion does **not** change it;
//!   the static analyzer still predicts it exactly.
//! * [`ExecStats::amplitude_passes`] — full sweeps over the amplitude
//!   array actually performed: fused kernels + error operators. Each
//!   unfused op is one sweep, so `ops − amplitude_passes` is the work
//!   fusion eliminated.

use std::fmt;

use qsim_circuit::{FusedProgram, LayeredCircuit};
use qsim_noise::{injection_cut_layers, Injection, Trial};
use qsim_statevec::{MeasureOutcome, StatePool, StateVector};
use qsim_telemetry::{Heartbeat, KernelClass, MsvEvent, NullRecorder, Recorder};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::order::{compare_trials, lcp};
use crate::SimError;

/// Operation counts and memory high-water marks of one execution.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Basic operations performed (gate applications + error-operator
    /// applications), the paper's computation metric. Independent of
    /// fusion: fused segments report the source gates they stand for.
    pub ops: u64,
    /// Fused kernel applications (gate work after fusion, excluding error
    /// operators). Equals the gate share of `ops` when running unfused.
    /// Defaults to zero when absent so pre-fusion serialized stats load.
    #[cfg_attr(feature = "serde", serde(default))]
    pub fused_ops: u64,
    /// Full passes over the amplitude array: `fused_ops` plus one per
    /// error-operator application — the hardware-cost counterpart of
    /// `ops`.
    #[cfg_attr(feature = "serde", serde(default))]
    pub amplitude_passes: u64,
    /// Peak number of concurrently stored state vectors (the MSV metric).
    /// Zero for the baseline, which stores no intermediate states.
    pub peak_msv: usize,
    /// Trials executed.
    pub n_trials: usize,
    /// Batched frontier sweeps performed (one per fused op applied to a
    /// whole frontier batch by the tree executor). Zero for every
    /// per-state executor; defaults to zero so legacy serialized stats
    /// load.
    #[cfg_attr(feature = "serde", serde(default))]
    pub batch_sweeps: u64,
    /// Widest frontier batch a single sweep covered. Zero when no batched
    /// sweeps ran; defaults to zero so legacy serialized stats load.
    #[cfg_attr(feature = "serde", serde(default))]
    pub batch_width_max: u64,
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} trials: {} basic ops, {} fused kernels, {} amplitude passes, {} stored states at peak",
            self.n_trials, self.ops, self.fused_ops, self.amplitude_passes, self.peak_msv
        )?;
        // Batch counters only exist for the tree executor; keep every
        // per-state executor's rendering byte-stable.
        if self.batch_sweeps > 0 {
            write!(
                f,
                ", {} batch sweeps ({} states at widest)",
                self.batch_sweeps, self.batch_width_max
            )?;
        }
        Ok(())
    }
}

/// The outcome of executing a trial set.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Per-trial classical-register outcomes, aligned with the *input*
    /// trial order (the reuse executor un-permutes its internal order).
    pub outcomes: Vec<MeasureOutcome>,
    /// Cost accounting.
    pub stats: ExecStats,
}

/// How an executor advances a state through the circuit: fused segments
/// (the default) or the pre-fusion layer-by-layer path (kept as reference
/// and benchmark comparator).
#[derive(Clone, Copy, Debug)]
enum Engine<'p> {
    Fused(&'p FusedProgram),
    Layers,
}

impl Engine<'_> {
    /// Apply layers `done+1 ..= through`, returning `(source_gates,
    /// amplitude_passes)` performed.
    fn advance(
        &self,
        layered: &LayeredCircuit,
        state: &mut StateVector,
        done: &mut i64,
        through: i64,
    ) -> Result<(u64, u64), SimError> {
        match self {
            Engine::Fused(program) => Ok(program.apply_through(state, done, through)?),
            Engine::Layers => {
                let mut ops = 0u64;
                while *done < through {
                    *done += 1;
                    ops += layered.apply_layer(*done as usize, state)? as u64;
                }
                Ok((ops, ops))
            }
        }
    }

    /// [`Engine::advance`] with per-kernel telemetry: each fused op is
    /// individually timed and attributed to `phase`; the layer-by-layer
    /// engine — and any engine observed by a recorder that declines
    /// per-kernel timing — reports one batched `unfused` observation.
    /// Disabled recorders short-circuit to the unobserved path (no clock
    /// reads).
    fn advance_traced<R: Recorder + ?Sized>(
        &self,
        layered: &LayeredCircuit,
        state: &mut StateVector,
        done: &mut i64,
        through: i64,
        recorder: &R,
        phase: &'static str,
    ) -> Result<(u64, u64), SimError> {
        if !recorder.enabled() {
            return self.advance(layered, state, done, through);
        }
        match self {
            Engine::Fused(program) if recorder.kernel_timing() => Ok(program
                .apply_through_observed(state, done, through, &mut |op, layer, ns| {
                    let class =
                        KernelClass::from_name(op.kernel_name()).unwrap_or(KernelClass::Unfused);
                    recorder.kernel(phase, class, layer as u64, 1, ns);
                })?),
            Engine::Fused(_) | Engine::Layers => {
                let start = recorder.now_ns();
                let counts = self.advance(layered, state, done, through)?;
                let ns = recorder.now_ns().saturating_sub(start);
                if counts.1 > 0 {
                    recorder.kernel(
                        phase,
                        KernelClass::Unfused,
                        through.max(0) as u64,
                        counts.1,
                        ns,
                    );
                }
                Ok(counts)
            }
        }
    }
}

/// Apply one injected error operator, timed under the `error` kernel class
/// when the recorder is live.
pub(crate) fn inject_traced<R: Recorder + ?Sized>(
    injection: &Injection,
    state: &mut StateVector,
    recorder: &R,
    phase: &'static str,
) -> Result<(), SimError> {
    if !recorder.enabled() {
        injection.apply_to(state)?;
        return Ok(());
    }
    let start = recorder.now_ns();
    injection.apply_to(state)?;
    let ns = recorder.now_ns().saturating_sub(start);
    recorder.kernel(phase, KernelClass::Error, injection.layer() as u64, 1, ns);
    Ok(())
}

/// Bytes of one dense amplitude vector for an `n_qubits` register (each
/// amplitude is a 16-byte complex double) — the unit of the live plane's
/// resident-memory gauge.
pub(crate) fn amp_bytes(n_qubits: usize) -> u64 {
    (1u64 << n_qubits) * 16
}

/// Emit the end-of-run counters every executor shares. These mirror
/// [`ExecStats`] field-for-field, which is what lets the profiler
/// cross-check telemetry against the executors' own accounting exactly.
pub(crate) fn record_stats_counters<R: Recorder + ?Sized>(recorder: &R, stats: &ExecStats) {
    recorder.counter("trials", stats.n_trials as u64);
    recorder.counter("ops", stats.ops);
    recorder.counter("fused_ops", stats.fused_ops);
    recorder.counter("amplitude_passes", stats.amplitude_passes);
}

/// Compile the fused program an executor shares across a whole trial set:
/// cut at the union of the set's injection layers.
pub fn fuse_for_trials(layered: &LayeredCircuit, trials: &[Trial]) -> FusedProgram {
    FusedProgram::new(layered, &injection_cut_layers(trials))
}

/// [`fuse_for_trials`] with compilation telemetry: records the
/// `fusion_bypassed` counter (segments below the fusion profitability
/// threshold, compiled gate-by-gate). Recorded once per compiled program —
/// callers sharing a program across workers must not re-record.
pub fn fuse_for_trials_traced<R: Recorder + ?Sized>(
    layered: &LayeredCircuit,
    trials: &[Trial],
    recorder: &R,
) -> FusedProgram {
    let program = fuse_for_trials(layered, trials);
    if recorder.enabled() {
        recorder.counter("fusion_bypassed", program.bypassed_segments() as u64);
    }
    program
}

/// Paranoid mode: statically verify the complete execution plan — reorder,
/// fused program, and symbolic cache schedule, cross-checked against the
/// dry-run cost report — before touching a single amplitude. Runs *after*
/// the executors' own cheap validation so their typed errors are
/// unchanged; anything the verifier alone catches surfaces as
/// [`SimError::Circuit`] carrying the first diagnostic.
///
/// # Errors
///
/// Returns [`SimError::Circuit`] when the verifier reports any
/// error-severity diagnostic.
#[cfg(feature = "paranoid")]
pub(crate) fn paranoid_verify(
    layered: &LayeredCircuit,
    trials: &[Trial],
    budget: usize,
) -> Result<(), SimError> {
    let set = qsim_noise::TrialSet::new(layered.n_qubits(), layered.n_layers(), trials.to_vec());
    let mut sorted = trials.to_vec();
    crate::order::reorder(&mut sorted);
    let report = crate::analysis::analyze_sorted_with_budget(layered, &sorted, budget.max(1))?;
    let plan = qsim_analyzer::ExecutionPlan::compile(layered, &set, budget).with_expectations(
        qsim_analyzer::PlanExpectations {
            baseline_ops: report.baseline_ops,
            optimized_ops: report.optimized_ops,
            msv_peak: report.msv_peak,
        },
    );
    let diagnostics = qsim_analyzer::verify(&plan);
    match diagnostics.iter().find(|d| d.severity == qsim_analyzer::Severity::Error) {
        Some(first) => Err(SimError::Circuit(format!(
            "paranoid plan verification failed ({} diagnostic(s)); first: {first}",
            diagnostics.len()
        ))),
        None => Ok(()),
    }
}

/// Check that `program` fits `layered` and that every injection of every
/// trial lands on a segment boundary.
pub(crate) fn validate_program(
    program: &FusedProgram,
    layered: &LayeredCircuit,
    trials: &[Trial],
) -> Result<(), SimError> {
    if program.n_layers() != layered.n_layers() || program.n_qubits() != layered.n_qubits() {
        return Err(SimError::Circuit(format!(
            "fused program geometry ({} qubits, {} layers) does not match the circuit ({}, {})",
            program.n_qubits(),
            program.n_layers(),
            layered.n_qubits(),
            layered.n_layers()
        )));
    }
    for trial in trials {
        for inj in trial.injections() {
            if !program.is_cut_aligned(inj.layer()) {
                return Err(SimError::Circuit(format!(
                    "injection after layer {} does not land on a fusion cut-point",
                    inj.layer()
                )));
            }
        }
    }
    Ok(())
}

/// The paper's baseline strategy (§V "Baseline"): run every error-injection
/// trial independently from `|0…0⟩`, storing no intermediate state.
#[derive(Clone, Copy, Debug)]
pub struct BaselineExecutor<'a> {
    layered: &'a LayeredCircuit,
}

impl<'a> BaselineExecutor<'a> {
    /// Bind to a layered circuit.
    pub fn new(layered: &'a LayeredCircuit) -> Self {
        BaselineExecutor { layered }
    }

    /// Execute `trials` in the given order, through a [`FusedProgram`]
    /// compiled for this trial set.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for trials whose injections do not fit the
    /// circuit.
    pub fn run(&self, trials: &[Trial]) -> Result<RunResult, SimError> {
        let program = fuse_for_trials(self.layered, trials);
        self.run_with_program(&program, trials)
    }

    /// [`BaselineExecutor::run`] with instrumentation streamed into
    /// `recorder`: per-kernel timings (phase `"baseline"`), a
    /// `"run/baseline"` span, and end-of-run counters mirroring the
    /// returned [`ExecStats`]. With a [`NullRecorder`] this is exactly
    /// [`BaselineExecutor::run`].
    ///
    /// # Errors
    ///
    /// As [`BaselineExecutor::run`].
    pub fn run_traced<R: Recorder + ?Sized>(
        &self,
        trials: &[Trial],
        recorder: &R,
    ) -> Result<RunResult, SimError> {
        let program = fuse_for_trials_traced(self.layered, trials, recorder);
        self.run_with_program_traced(&program, trials, recorder)
    }

    /// [`BaselineExecutor::run_with_program`] with instrumentation (see
    /// [`BaselineExecutor::run_traced`]).
    ///
    /// # Errors
    ///
    /// As [`BaselineExecutor::run_with_program`].
    pub fn run_with_program_traced<R: Recorder + ?Sized>(
        &self,
        program: &FusedProgram,
        trials: &[Trial],
        recorder: &R,
    ) -> Result<RunResult, SimError> {
        self.run_engine(Engine::Fused(program), trials, recorder)
    }

    /// Execute through an externally compiled program (so several runs —
    /// or several worker threads — share one fusion, which keeps their
    /// outcomes bitwise comparable).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for out-of-range injections and for injections
    /// that do not land on one of `program`'s cut-points.
    pub fn run_with_program(
        &self,
        program: &FusedProgram,
        trials: &[Trial],
    ) -> Result<RunResult, SimError> {
        self.run_engine(Engine::Fused(program), trials, &NullRecorder)
    }

    /// Execute layer-by-layer without fusion — the pre-fusion reference
    /// path (unfused results differ from fused ones by float rounding
    /// only).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for trials whose injections do not fit the
    /// circuit.
    pub fn run_unfused(&self, trials: &[Trial]) -> Result<RunResult, SimError> {
        self.run_engine(Engine::Layers, trials, &NullRecorder)
    }

    fn run_engine<R: Recorder + ?Sized>(
        &self,
        engine: Engine<'_>,
        trials: &[Trial],
        recorder: &R,
    ) -> Result<RunResult, SimError> {
        let layered = self.layered;
        let n_layers = layered.n_layers();
        for trial in trials {
            validate(trial, n_layers)?;
        }
        if let Engine::Fused(program) = engine {
            validate_program(program, layered, trials)?;
        }
        #[cfg(feature = "paranoid")]
        paranoid_verify(layered, trials, usize::MAX)?;
        let span_start = recorder.now_ns();
        let last_layer = n_layers as i64 - 1;
        let mut stats = ExecStats { n_trials: trials.len(), ..ExecStats::default() };
        let mut outcomes = Vec::with_capacity(trials.len());
        for trial in trials {
            let mut state = StateVector::zero_state(layered.n_qubits());
            let mut done = -1i64;
            let injections = trial.injections();
            let mut next = 0usize;
            while done < last_layer || next < injections.len() {
                let target = if next < injections.len() {
                    injections[next].layer() as i64
                } else {
                    last_layer
                };
                let (src, passes) = engine
                    .advance_traced(layered, &mut state, &mut done, target, recorder, "baseline")?;
                stats.ops += src;
                stats.fused_ops += passes;
                stats.amplitude_passes += passes;
                while next < injections.len() && injections[next].layer() as i64 == done {
                    inject_traced(&injections[next], &mut state, recorder, "baseline")?;
                    stats.ops += 1;
                    stats.amplitude_passes += 1;
                    next += 1;
                }
            }
            outcomes.push(measure(layered, &state, trial));
            if recorder.enabled() {
                // Baseline holds exactly the one working state.
                recorder.heartbeat(Heartbeat {
                    completed: 1,
                    depth: n_layers as u64,
                    resident_bytes: amp_bytes(layered.n_qubits()),
                });
            }
        }
        if recorder.enabled() {
            record_stats_counters(recorder, &stats);
            recorder.span("run/baseline", span_start, recorder.now_ns());
        }
        Ok(RunResult { outcomes, stats })
    }
}

/// The redundancy-eliminated executor: trials are processed in reorder
/// order as a depth-first traversal of the injection prefix trie. Each trie
/// node owns one lazily advancing frontier state; a frontier survives only
/// while the *next* trial still branches from it (the paper's eager drop),
/// so the stored-state stack is exactly the shared prefix between
/// consecutive trials.
#[derive(Clone, Copy, Debug)]
pub struct ReuseExecutor<'a> {
    layered: &'a LayeredCircuit,
}

struct Frame {
    depth: usize,
    /// Highest layer index already applied to `state` (−1 = none).
    done: i64,
    state: StateVector,
}

/// How one streaming execution interacts with the cross-run semantic
/// prefix cache (`redsim-msvstore`).
///
/// [`PrefixCache::Off`] is the behaviour of every pre-existing entry
/// point. The other two variants exist for `Simulation::run_reordered_cached`:
/// on a store hit the root frontier is *seeded* with the restored prefix
/// state (the first trial's shared advance becomes a no-op, and the
/// skipped work is credited back into [`ExecStats`] so cached and
/// uncached runs report identical accounting); on a miss the run proceeds
/// bit-for-bit as [`PrefixCache::Off`] and merely *captures* a copy of
/// the root frontier the moment it first reaches the publishable layer.
pub enum PrefixCache<'c> {
    /// No cross-run caching.
    Off,
    /// Start the root frontier from `state`, already advanced through
    /// `layer` (inclusive), crediting `ops` source gates and `passes`
    /// amplitude passes for the skipped prefix.
    Seed {
        /// Layer the seeded state is advanced through (inclusive). Must
        /// equal the first sorted trial's first injection layer (or the
        /// last layer when every trial is error-free) — anything else is
        /// rejected, because injecting into an over-advanced state would
        /// silently corrupt outcomes.
        layer: usize,
        /// The restored prefix state.
        state: StateVector,
        /// Source-gate credit for the skipped prefix.
        ops: u64,
        /// Amplitude-pass credit for the skipped prefix.
        passes: u64,
    },
    /// Run exactly as [`PrefixCache::Off`], additionally cloning the root
    /// frontier into `out` when its `done` first equals `layer`. If the
    /// run never parks the root at `layer` (a mis-computed capture
    /// layer), `out` stays `None` and nothing is published.
    Capture {
        /// Layer (inclusive) at which to capture the root frontier.
        layer: usize,
        /// Receives the captured state.
        out: &'c mut Option<StateVector>,
    },
}

/// Clone the root frontier into the capture slot the first time it parks
/// exactly at the capture layer. The clone is a plain memcpy on the miss
/// path; nothing else about the run observes it.
fn maybe_capture(capture: &mut Option<(i64, &mut Option<StateVector>)>, frame: &Frame) {
    let parked = matches!(capture, Some((layer, _)) if frame.depth == 0 && frame.done == *layer);
    if parked {
        if let Some((_, out)) = capture.take() {
            *out = Some(frame.state.clone());
        }
    }
}

impl<'a> ReuseExecutor<'a> {
    /// Bind to a layered circuit.
    pub fn new(layered: &'a LayeredCircuit) -> Self {
        ReuseExecutor { layered }
    }

    /// Execute `trials`, reordering internally; outcomes are returned in
    /// the input order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for trials whose injections do not fit the
    /// circuit.
    pub fn run(&self, trials: &[Trial]) -> Result<RunResult, SimError> {
        self.run_with_budget(trials, usize::MAX)
    }

    /// [`ReuseExecutor::run`] with instrumentation streamed into
    /// `recorder`: per-kernel timings (phases `"reuse/shared"`,
    /// `"reuse/branch"`, `"reuse/remainder"`), MSV lifecycle events with
    /// live residency, per-trial prefix-cache lookups, pool-reuse counters,
    /// a `"run/reuse"` span, and end-of-run counters mirroring the returned
    /// [`ExecStats`]. With a [`NullRecorder`] this is exactly
    /// [`ReuseExecutor::run`].
    ///
    /// # Errors
    ///
    /// As [`ReuseExecutor::run`].
    pub fn run_traced<R: Recorder + ?Sized>(
        &self,
        trials: &[Trial],
        recorder: &R,
    ) -> Result<RunResult, SimError> {
        self.run_with_budget_traced(trials, usize::MAX, recorder)
    }

    /// [`ReuseExecutor::run_with_budget`] with instrumentation (see
    /// [`ReuseExecutor::run_traced`]).
    ///
    /// # Errors
    ///
    /// As [`ReuseExecutor::run_with_budget`].
    pub fn run_with_budget_traced<R: Recorder + ?Sized>(
        &self,
        trials: &[Trial],
        budget: usize,
        recorder: &R,
    ) -> Result<RunResult, SimError> {
        let mut outcomes: Vec<Option<MeasureOutcome>> = vec![None; trials.len()];
        let program = fuse_for_trials_traced(self.layered, trials, recorder);
        let stats = self.run_streaming_engine(
            Engine::Fused(&program),
            trials,
            budget,
            |index, outcome| {
                outcomes[index] = Some(outcome);
            },
            recorder,
        )?;
        Ok(RunResult {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every trial produced an outcome"))
                .collect(),
            stats,
        })
    }

    /// Execute with a hard cap on concurrently stored state vectors — the
    /// memory-constrained regime the paper's §IV motivates ("the maximal
    /// number of state vectors we can store is limited since one state
    /// vector has 2ⁿ amplitudes"). Sharing deeper than `budget − 1`
    /// injections is recomputed instead of cached; outcomes remain bitwise
    /// identical to the baseline for **every** budget, only the operation
    /// count changes. `budget = 1` keeps just the error-free frontier.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Circuit`] for `budget == 0` and [`SimError`] for
    /// trials whose injections do not fit the circuit.
    pub fn run_with_budget(&self, trials: &[Trial], budget: usize) -> Result<RunResult, SimError> {
        let mut outcomes: Vec<Option<MeasureOutcome>> = vec![None; trials.len()];
        let stats = self.run_streaming(trials, budget, |index, outcome| {
            outcomes[index] = Some(outcome);
        })?;
        Ok(RunResult {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every trial produced an outcome"))
                .collect(),
            stats,
        })
    }

    /// Like [`ReuseExecutor::run`], but through an externally compiled
    /// program (shared fusion across runs or worker threads).
    ///
    /// # Errors
    ///
    /// As [`BaselineExecutor::run_with_program`].
    pub fn run_with_program(
        &self,
        program: &FusedProgram,
        trials: &[Trial],
    ) -> Result<RunResult, SimError> {
        let mut outcomes: Vec<Option<MeasureOutcome>> = vec![None; trials.len()];
        let stats = self.run_streaming_with(program, trials, usize::MAX, |index, outcome| {
            outcomes[index] = Some(outcome);
        })?;
        Ok(RunResult {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every trial produced an outcome"))
                .collect(),
            stats,
        })
    }

    /// Execute layer-by-layer without fusion — the pre-fusion reference
    /// path (kept for benchmarks and numerical cross-checks).
    ///
    /// # Errors
    ///
    /// As [`ReuseExecutor::run`].
    pub fn run_unfused(&self, trials: &[Trial]) -> Result<RunResult, SimError> {
        let mut outcomes: Vec<Option<MeasureOutcome>> = vec![None; trials.len()];
        let stats = self.run_streaming_engine(
            Engine::Layers,
            trials,
            usize::MAX,
            |index, outcome| {
                outcomes[index] = Some(outcome);
            },
            &NullRecorder,
        )?;
        Ok(RunResult {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every trial produced an outcome"))
                .collect(),
            stats,
        })
    }

    /// Streaming execution: like [`ReuseExecutor::run_with_budget`], but
    /// outcomes are handed to `sink(original_trial_index, outcome)` as they
    /// are produced (in reordered processing order) instead of being
    /// collected — the right shape for 10⁶-trial runs where the outcome
    /// vector itself is the memory bottleneck, or for online aggregation
    /// into a [`crate::Histogram`].
    ///
    /// # Errors
    ///
    /// As [`ReuseExecutor::run_with_budget`].
    pub fn run_streaming<F>(
        &self,
        trials: &[Trial],
        budget: usize,
        sink: F,
    ) -> Result<ExecStats, SimError>
    where
        F: FnMut(usize, MeasureOutcome),
    {
        let program = fuse_for_trials(self.layered, trials);
        self.run_streaming_with(&program, trials, budget, sink)
    }

    /// Streaming execution through an externally compiled program.
    ///
    /// # Errors
    ///
    /// As [`ReuseExecutor::run_with_budget`], plus alignment failures (see
    /// [`BaselineExecutor::run_with_program`]).
    pub fn run_streaming_with<F>(
        &self,
        program: &FusedProgram,
        trials: &[Trial],
        budget: usize,
        sink: F,
    ) -> Result<ExecStats, SimError>
    where
        F: FnMut(usize, MeasureOutcome),
    {
        self.run_streaming_engine(Engine::Fused(program), trials, budget, sink, &NullRecorder)
    }

    /// [`ReuseExecutor::run_streaming_with`] with instrumentation (see
    /// [`ReuseExecutor::run_traced`]). This is the variant parallel workers
    /// use: one shared program, one shared recorder.
    ///
    /// # Errors
    ///
    /// As [`ReuseExecutor::run_streaming_with`].
    pub fn run_streaming_with_traced<F, R>(
        &self,
        program: &FusedProgram,
        trials: &[Trial],
        budget: usize,
        sink: F,
        recorder: &R,
    ) -> Result<ExecStats, SimError>
    where
        F: FnMut(usize, MeasureOutcome),
        R: Recorder + ?Sized,
    {
        self.run_streaming_engine(Engine::Fused(program), trials, budget, sink, recorder)
    }

    /// [`ReuseExecutor::run_streaming_with_traced`] with an explicit
    /// cross-run prefix-cache interaction — the entry point
    /// `Simulation::run_reordered_cached` drives. With
    /// [`PrefixCache::Off`] this is exactly
    /// [`ReuseExecutor::run_streaming_with_traced`].
    ///
    /// # Errors
    ///
    /// As [`ReuseExecutor::run_streaming_with`], plus
    /// [`SimError::Circuit`] when a [`PrefixCache::Seed`] does not match
    /// the trial set's actual shared-prefix layer or register width.
    pub fn run_streaming_prefix_traced<F, R>(
        &self,
        program: &FusedProgram,
        trials: &[Trial],
        budget: usize,
        prefix: PrefixCache<'_>,
        sink: F,
        recorder: &R,
    ) -> Result<ExecStats, SimError>
    where
        F: FnMut(usize, MeasureOutcome),
        R: Recorder + ?Sized,
    {
        self.run_streaming_engine_prefix(
            Engine::Fused(program),
            trials,
            budget,
            prefix,
            sink,
            recorder,
        )
    }

    fn run_streaming_engine<F, R>(
        &self,
        engine: Engine<'_>,
        trials: &[Trial],
        budget: usize,
        sink: F,
        recorder: &R,
    ) -> Result<ExecStats, SimError>
    where
        F: FnMut(usize, MeasureOutcome),
        R: Recorder + ?Sized,
    {
        self.run_streaming_engine_prefix(engine, trials, budget, PrefixCache::Off, sink, recorder)
    }

    fn run_streaming_engine_prefix<F, R>(
        &self,
        engine: Engine<'_>,
        trials: &[Trial],
        budget: usize,
        prefix: PrefixCache<'_>,
        mut sink: F,
        recorder: &R,
    ) -> Result<ExecStats, SimError>
    where
        F: FnMut(usize, MeasureOutcome),
        R: Recorder + ?Sized,
    {
        if budget == 0 {
            return Err(SimError::Circuit(
                "state-vector budget must be at least 1 (the working frontier)".to_owned(),
            ));
        }
        let layered = self.layered;
        let n_layers = layered.n_layers();
        for trial in trials {
            validate(trial, n_layers)?;
        }
        if let Engine::Fused(program) = engine {
            validate_program(program, layered, trials)?;
        }
        #[cfg(feature = "paranoid")]
        paranoid_verify(layered, trials, budget)?;
        let span_start = recorder.now_ns();
        let last_layer = n_layers as i64 - 1;
        let mut order: Vec<usize> = (0..trials.len()).collect();
        order.sort_by(|&a, &b| compare_trials(&trials[a], &trials[b]));

        let mut stats = ExecStats { n_trials: trials.len(), ..ExecStats::default() };
        let mut peak = usize::from(!trials.is_empty());
        let mut pool = StatePool::new();
        // The layer the first sorted trial's shared advance stops at — the
        // only layer a seeded root may claim, and the layer a capture
        // watches for.
        let shared_prefix_layer = order
            .first()
            .and_then(|&first| trials[first].injections().first())
            .map_or(last_layer, |inj| inj.layer() as i64);
        let mut capture: Option<(i64, &mut Option<StateVector>)> = None;
        let root = match prefix {
            PrefixCache::Off => {
                Frame { depth: 0, done: -1, state: StateVector::zero_state(layered.n_qubits()) }
            }
            PrefixCache::Seed { layer, state, ops, passes } => {
                if trials.is_empty() || layer as i64 != shared_prefix_layer {
                    return Err(SimError::Circuit(format!(
                        "seeded prefix layer {layer} does not match the trial set's shared \
                         prefix layer {shared_prefix_layer}"
                    )));
                }
                if state.amplitudes().len() != 1usize << layered.n_qubits() {
                    return Err(SimError::Circuit(format!(
                        "seeded prefix state holds {} amplitudes, circuit needs {}",
                        state.amplitudes().len(),
                        1usize << layered.n_qubits()
                    )));
                }
                stats.ops += ops;
                stats.fused_ops += passes;
                stats.amplitude_passes += passes;
                Frame { depth: 0, done: layer as i64, state }
            }
            PrefixCache::Capture { layer, out } => {
                capture = Some((layer as i64, out));
                Frame { depth: 0, done: -1, state: StateVector::zero_state(layered.n_qubits()) }
            }
        };
        let mut stack: Vec<Frame> = vec![root];
        if recorder.enabled() && !trials.is_empty() {
            recorder.msv(MsvEvent::Create, 0, 1);
        }

        for (pos, &orig) in order.iter().enumerate() {
            let cur = &trials[orig];
            let injections = cur.injections();
            let keep = match order.get(pos + 1) {
                Some(&next) => lcp(cur, &trials[next]).min(budget - 1),
                None => 0,
            };
            // Under an unbounded budget the top frame sits exactly at the
            // shared prefix; under a cap it may be shallower, in which case
            // the injections between the stored depth and the true LCP are
            // recomputed below.
            let mut d = stack.last().expect("stack holds the root").depth;
            debug_assert!(
                d <= if pos == 0 { 0 } else { lcp(&trials[order[pos - 1]], cur) },
                "frontier stack lost sync with the trial order"
            );
            if recorder.enabled() {
                // The first trial finds an empty cache; every later trial
                // resumes from the cached frontier at depth `d`.
                recorder.cache(d, pos > 0);
                if pos > 0 {
                    recorder.msv(MsvEvent::Reuse, d, stack.len());
                }
            }
            loop {
                if d == injections.len() {
                    // Terminal at this trie node: finish the circuit on the
                    // node frontier in place and measure from it.
                    let top = stack.last_mut().expect("nonempty stack");
                    let (src, passes) = engine.advance_traced(
                        layered,
                        &mut top.state,
                        &mut top.done,
                        last_layer,
                        recorder,
                        "reuse/shared",
                    )?;
                    stats.ops += src;
                    stats.fused_ops += passes;
                    stats.amplitude_passes += passes;
                    maybe_capture(&mut capture, top);
                    sink(orig, measure(layered, &top.state, cur));
                    while stack.last().is_some_and(|f| f.depth > keep) {
                        let frame = stack.pop().expect("checked nonempty");
                        if recorder.enabled() {
                            recorder.msv(MsvEvent::Drop, frame.depth, stack.len());
                        }
                        pool.recycle(frame.state);
                    }
                    debug_assert!(
                        !stack.is_empty(),
                        "eager drop must never pop the root (error-free) frame"
                    );
                    if recorder.enabled() {
                        recorder.heartbeat(Heartbeat {
                            completed: 1,
                            depth: d as u64,
                            resident_bytes: (stack.len() + pool.idle()) as u64
                                * amp_bytes(layered.n_qubits()),
                        });
                    }
                    break;
                }
                let target = injections[d].layer() as i64;
                {
                    let top = stack.last_mut().expect("nonempty stack");
                    let (src, passes) = engine.advance_traced(
                        layered,
                        &mut top.state,
                        &mut top.done,
                        target,
                        recorder,
                        "reuse/shared",
                    )?;
                    stats.ops += src;
                    stats.fused_ops += passes;
                    stats.amplitude_passes += passes;
                    maybe_capture(&mut capture, top);
                }
                if d < keep {
                    // The post-injection state is itself a shared prefix of
                    // the next trial: persist it as a new frontier.
                    debug_assert_eq!(
                        stack.last().expect("nonempty stack").depth,
                        d,
                        "cached clone must branch from the frontier at the shared depth"
                    );
                    let mut child = pool.clone_state(&stack.last().expect("nonempty stack").state);
                    inject_traced(&injections[d], &mut child, recorder, "reuse/branch")?;
                    stats.ops += 1;
                    stats.amplitude_passes += 1;
                    stack.push(Frame { depth: d + 1, done: target, state: child });
                    debug_assert!(
                        stack.len() <= budget,
                        "cache stack exceeded the state-vector budget"
                    );
                    peak = peak.max(stack.len());
                    if recorder.enabled() {
                        recorder.msv(MsvEvent::Fork, d + 1, stack.len());
                    }
                    d += 1;
                } else {
                    // Transient remainder: nothing below depth d is reused
                    // later. Clone the frontier if the node itself is still
                    // needed, otherwise consume it (the eager drop).
                    let mut working = if d <= keep {
                        pool.clone_state(&stack.last().expect("nonempty stack").state)
                    } else {
                        let frame = stack.pop().expect("nonempty stack");
                        // Consuming (not copying) is only sound because no
                        // later trial branches from this node or anything
                        // below it down to the shared depth.
                        debug_assert!(
                            frame.depth > keep,
                            "consumed a frontier the next trial still reuses"
                        );
                        if recorder.enabled() {
                            recorder.msv(MsvEvent::Drop, frame.depth, stack.len());
                        }
                        while stack.last().is_some_and(|f| f.depth > keep) {
                            let dropped = stack.pop().expect("checked nonempty");
                            if recorder.enabled() {
                                recorder.msv(MsvEvent::Drop, dropped.depth, stack.len());
                            }
                            pool.recycle(dropped.state);
                        }
                        debug_assert!(
                            stack.last().is_some_and(|f| f.depth <= keep),
                            "eager drop emptied the stack past the root frame"
                        );
                        frame.state
                    };
                    let mut done = target;
                    inject_traced(&injections[d], &mut working, recorder, "reuse/remainder")?;
                    stats.ops += 1;
                    stats.amplitude_passes += 1;
                    for inj in &injections[d + 1..] {
                        let (src, passes) = engine.advance_traced(
                            layered,
                            &mut working,
                            &mut done,
                            inj.layer() as i64,
                            recorder,
                            "reuse/remainder",
                        )?;
                        stats.ops += src;
                        stats.fused_ops += passes;
                        stats.amplitude_passes += passes;
                        inject_traced(inj, &mut working, recorder, "reuse/remainder")?;
                        stats.ops += 1;
                        stats.amplitude_passes += 1;
                    }
                    let (src, passes) = engine.advance_traced(
                        layered,
                        &mut working,
                        &mut done,
                        last_layer,
                        recorder,
                        "reuse/remainder",
                    )?;
                    stats.ops += src;
                    stats.fused_ops += passes;
                    stats.amplitude_passes += passes;
                    sink(orig, measure(layered, &working, cur));
                    pool.recycle(working);
                    if recorder.enabled() {
                        recorder.heartbeat(Heartbeat {
                            completed: 1,
                            depth: d as u64,
                            resident_bytes: (stack.len() + pool.idle()) as u64
                                * amp_bytes(layered.n_qubits()),
                        });
                    }
                    break;
                }
            }
        }

        stats.peak_msv = if trials.is_empty() { 0 } else { peak };
        if recorder.enabled() {
            record_stats_counters(recorder, &stats);
            recorder.counter("pool.reused", pool.reuse_count());
            recorder.counter("pool.allocated", pool.alloc_count());
            recorder.span("run/reuse", span_start, recorder.now_ns());
        }
        Ok(stats)
    }
}

/// Sample the trial's measurement outcome: Born-rule sampling with the
/// trial's private seed, classical readout flips, then mapping measured
/// qubits onto the classical register.
pub(crate) fn measure(
    layered: &LayeredCircuit,
    state: &StateVector,
    trial: &Trial,
) -> MeasureOutcome {
    let mut rng = StdRng::seed_from_u64(trial.seed());
    let mut qubit_outcome = state.sample(&mut rng);
    trial.apply_meas_flips(&mut qubit_outcome);
    let mut classical = MeasureOutcome::from_index(0, layered.n_cbits());
    for &(qubit, cbit) in layered.measurements() {
        if qubit_outcome.bit(qubit) {
            classical.flip(cbit);
        }
    }
    classical
}

pub(crate) fn validate(trial: &Trial, n_layers: usize) -> Result<(), SimError> {
    if let Some(inj) = trial.injections().last() {
        if inj.layer() >= n_layers {
            return Err(SimError::LayerOutOfRange { layer: inj.layer(), n_layers });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::testkit::{scaled_rates, uniform_workload};
    use qsim_circuit::catalog;
    use qsim_noise::TrialSet;

    fn generate(
        circuit: &qsim_circuit::Circuit,
        scale: f64,
        n: usize,
        seed: u64,
    ) -> (LayeredCircuit, TrialSet) {
        uniform_workload(circuit, scaled_rates(scale), n, seed)
    }

    #[test]
    fn baseline_and_reuse_agree_bitwise() {
        for (circuit, scale) in [
            (catalog::bv(4, 0b111), 1.0),
            (catalog::qft(4), 3.0),
            (catalog::rb(), 10.0),
            (catalog::wstate_3q(), 5.0),
        ] {
            let (layered, set) = generate(&circuit, scale, 300, 11);
            let baseline = BaselineExecutor::new(&layered).run(set.trials()).unwrap();
            let reuse = ReuseExecutor::new(&layered).run(set.trials()).unwrap();
            assert_eq!(baseline.outcomes, reuse.outcomes, "{}", circuit.name());
            assert!(reuse.stats.ops <= baseline.stats.ops);
            assert!(reuse.stats.amplitude_passes <= reuse.stats.ops);
        }
    }

    #[test]
    fn reuse_ops_and_msv_match_static_analyzer() {
        for seed in [0u64, 1, 2, 3] {
            let (layered, set) = generate(&catalog::qft(4), 2.0, 250, seed);
            let report = analyze(&layered, &set).unwrap();
            let reuse = ReuseExecutor::new(&layered).run(set.trials()).unwrap();
            assert_eq!(reuse.stats.ops, report.optimized_ops, "seed {seed}");
            assert_eq!(reuse.stats.peak_msv, report.msv_peak, "seed {seed}");
            let baseline = BaselineExecutor::new(&layered).run(set.trials()).unwrap();
            assert_eq!(baseline.stats.ops, report.baseline_ops, "seed {seed}");
        }
    }

    #[test]
    fn error_free_only_trials_share_everything() {
        let layered = catalog::bv(4, 0b101).layered().unwrap();
        let trials: Vec<Trial> = (0..50).map(Trial::error_free).collect();
        let reuse = ReuseExecutor::new(&layered).run(&trials).unwrap();
        // One full pass of the circuit, everything else is re-measurement.
        assert_eq!(reuse.stats.ops, layered.total_gates() as u64);
        assert_eq!(reuse.stats.peak_msv, 1);
        // With no cut-points the whole circuit fuses into one segment.
        assert!(reuse.stats.amplitude_passes < reuse.stats.ops);
        // The noiseless BV outcome is the hidden string for every trial.
        for outcome in &reuse.outcomes {
            assert_eq!(outcome.to_index(), 0b101);
        }
    }

    #[test]
    fn outcomes_align_with_input_order() {
        // Craft trials whose outcomes are distinguishable deterministically
        // via measurement flips on a noiseless circuit.
        let layered = catalog::bv(4, 0b000).layered().unwrap(); // outcome 000
        let t_plain = Trial::error_free(1);
        let t_flip0 = Trial::new(vec![], 0b001, 2);
        let t_flip2 = Trial::new(vec![], 0b100, 3);
        let trials = vec![t_flip2, t_plain, t_flip0];
        let result = ReuseExecutor::new(&layered).run(&trials).unwrap();
        assert_eq!(result.outcomes[0].to_index(), 0b100);
        assert_eq!(result.outcomes[1].to_index(), 0b000);
        assert_eq!(result.outcomes[2].to_index(), 0b001);
    }

    #[test]
    fn empty_trial_set_is_fine() {
        let layered = catalog::rb().layered().unwrap();
        let result = ReuseExecutor::new(&layered).run(&[]).unwrap();
        assert!(result.outcomes.is_empty());
        assert_eq!(result.stats.peak_msv, 0);
        assert_eq!(result.stats.ops, 0);
        let result = BaselineExecutor::new(&layered).run(&[]).unwrap();
        assert_eq!(result.stats.ops, 0);
    }

    #[test]
    fn rejects_out_of_range_layers() {
        let layered = catalog::rb().layered().unwrap();
        let bad =
            Trial::new(vec![qsim_noise::Injection::single(99, 0, qsim_noise::Pauli::X)], 0, 0);
        assert!(matches!(
            ReuseExecutor::new(&layered).run(std::slice::from_ref(&bad)),
            Err(SimError::LayerOutOfRange { .. })
        ));
        assert!(matches!(
            BaselineExecutor::new(&layered).run(&[bad]),
            Err(SimError::LayerOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_misaligned_shared_program() {
        // A program fused for an *empty* cut set cannot host a trial that
        // injects mid-circuit.
        let (layered, set) = generate(&catalog::qft(4), 2.0, 50, 5);
        let program = FusedProgram::new(&layered, &[]);
        let has_injection = set.trials().iter().any(|t| t.n_injections() > 0);
        assert!(has_injection, "workload too clean to exercise the check");
        let result = BaselineExecutor::new(&layered).run_with_program(&program, set.trials());
        assert!(matches!(result, Err(SimError::Circuit(_))));
        let result = ReuseExecutor::new(&layered).run_with_program(&program, set.trials());
        assert!(matches!(result, Err(SimError::Circuit(_))));
    }

    #[test]
    fn injected_errors_change_outcomes() {
        // X error right before measurement on a deterministic circuit flips
        // the measured bit, and both executors see it identically.
        let layered = catalog::bv(4, 0b111).layered().unwrap();
        let last = layered.n_layers() - 1;
        let flip =
            Trial::new(vec![qsim_noise::Injection::single(last, 0, qsim_noise::Pauli::X)], 0, 7);
        let clean = Trial::error_free(8);
        let result = BaselineExecutor::new(&layered).run(&[clean, flip]).unwrap();
        assert_eq!(result.outcomes[0].to_index(), 0b111);
        assert_eq!(result.outcomes[1].to_index(), 0b110);
    }

    #[test]
    fn streaming_matches_collected_execution_and_aggregates_online() {
        let (layered, set) = generate(&catalog::qft(4), 3.0, 400, 19);
        let collected = ReuseExecutor::new(&layered).run(set.trials()).unwrap();
        // Stream into a histogram without holding the outcome vector.
        let mut histogram = crate::Histogram::new(layered.n_cbits());
        let mut seen = vec![false; set.len()];
        let stats = ReuseExecutor::new(&layered)
            .run_streaming(set.trials(), usize::MAX, |index, outcome| {
                assert!(!seen[index], "outcome delivered twice for trial {index}");
                seen[index] = true;
                assert_eq!(outcome, collected.outcomes[index]);
                histogram.record(&outcome);
            })
            .unwrap();
        assert!(seen.iter().all(|&s| s), "some trial never produced an outcome");
        assert_eq!(stats, collected.stats);
        assert_eq!(histogram.total(), set.len() as u64);
    }

    #[test]
    fn budgeted_execution_stays_bitwise_exact_and_matches_dry_run() {
        let (layered, set) = generate(&catalog::qft(4), 6.0, 300, 13);
        let baseline = BaselineExecutor::new(&layered).run(set.trials()).unwrap();
        let mut sorted = set.trials().to_vec();
        crate::order::reorder(&mut sorted);
        for budget in [1usize, 2, 3, 5, usize::MAX] {
            let result =
                ReuseExecutor::new(&layered).run_with_budget(set.trials(), budget).unwrap();
            assert_eq!(result.outcomes, baseline.outcomes, "budget {budget}");
            assert!(result.stats.peak_msv <= budget, "budget {budget}");
            let dry =
                crate::analysis::analyze_sorted_with_budget(&layered, &sorted, budget).unwrap();
            assert_eq!(result.stats.ops, dry.optimized_ops, "budget {budget}");
            assert_eq!(result.stats.peak_msv, dry.msv_peak, "budget {budget}");
        }
        assert!(matches!(
            ReuseExecutor::new(&layered).run_with_budget(set.trials(), 0),
            Err(SimError::Circuit(_))
        ));
    }

    #[test]
    fn deep_shared_prefixes_stress_the_stack() {
        // High error rates force multi-error trials and deep trie sharing.
        let (layered, set) = generate(&catalog::qft(5), 8.0, 400, 21);
        let report = analyze(&layered, &set).unwrap();
        assert!(report.msv_peak >= 3, "expected deep sharing, got {}", report.msv_peak);
        let reuse = ReuseExecutor::new(&layered).run(set.trials()).unwrap();
        assert_eq!(reuse.stats.peak_msv, report.msv_peak);
        assert_eq!(reuse.stats.ops, report.optimized_ops);
        let baseline = BaselineExecutor::new(&layered).run(set.trials()).unwrap();
        assert_eq!(baseline.outcomes, reuse.outcomes);
    }

    #[test]
    fn unfused_reference_agrees_up_to_tolerance_and_counts_every_pass() {
        let (layered, set) = generate(&catalog::qft(4), 3.0, 200, 23);
        let fused = BaselineExecutor::new(&layered).run(set.trials()).unwrap();
        let unfused = BaselineExecutor::new(&layered).run_unfused(set.trials()).unwrap();
        // Identical paper metric; fused never performs *more* passes (a
        // dense cut union can leave nothing to merge, so not strictly
        // fewer here — see below for a sparse-cut workload).
        assert_eq!(fused.stats.ops, unfused.stats.ops);
        assert_eq!(unfused.stats.amplitude_passes, unfused.stats.ops);
        assert!(fused.stats.amplitude_passes <= unfused.stats.amplitude_passes);
        // Outcome agreement is statistical, not bitwise (fusion reorders
        // float ops): compare histograms coarsely.
        let fused_hist = crate::Histogram::from_outcomes(layered.n_cbits(), &fused.outcomes);
        let unfused_hist = crate::Histogram::from_outcomes(layered.n_cbits(), &unfused.outcomes);
        let mut diff = 0.0f64;
        for index in 0..(1u64 << layered.n_cbits()) {
            diff += (fused_hist.probability(index) - unfused_hist.probability(index)).abs();
        }
        assert!(diff / 2.0 < 0.15, "fused/unfused histograms diverged: tv {diff}");
        let reuse_unfused = ReuseExecutor::new(&layered).run_unfused(set.trials()).unwrap();
        assert_eq!(reuse_unfused.outcomes, unfused.outcomes, "unfused paths stay bitwise equal");
    }

    #[test]
    fn traced_run_with_null_recorder_is_bitwise_identical() {
        let (layered, set) = generate(&catalog::qft(4), 3.0, 200, 29);
        let plain = ReuseExecutor::new(&layered).run(set.trials()).unwrap();
        let traced = ReuseExecutor::new(&layered).run_traced(set.trials(), &NullRecorder).unwrap();
        assert_eq!(plain, traced);
        let plain = BaselineExecutor::new(&layered).run(set.trials()).unwrap();
        let traced =
            BaselineExecutor::new(&layered).run_traced(set.trials(), &NullRecorder).unwrap();
        assert_eq!(plain, traced);
    }

    #[test]
    fn telemetry_totals_mirror_exec_stats_exactly() {
        use qsim_telemetry::AggregatingRecorder;
        for (circuit, scale) in [(catalog::qft(4), 4.0), (catalog::bv(4, 0b110), 2.0)] {
            let (layered, set) = generate(&circuit, scale, 300, 31);
            let recorder = AggregatingRecorder::new();
            let result = ReuseExecutor::new(&layered).run_traced(set.trials(), &recorder).unwrap();
            let report = recorder.report();
            assert_eq!(report.counter("ops"), result.stats.ops);
            assert_eq!(report.counter("fused_ops"), result.stats.fused_ops);
            assert_eq!(report.counter("amplitude_passes"), result.stats.amplitude_passes);
            assert_eq!(report.counter("trials"), result.stats.n_trials as u64);
            assert_eq!(report.peak_residency(), result.stats.peak_msv);
            // Every amplitude pass shows up as exactly one timed kernel
            // application (fused kernels + error operators).
            assert_eq!(report.total_kernel_count(), result.stats.amplitude_passes);
            // One prefix-cache lookup per trial; only the first misses.
            let (hits, misses) = report.cache_totals();
            assert_eq!(hits + misses, set.len() as u64);
            assert_eq!(misses, 1);
            // Forks + the root creation account for every stored frontier;
            // every non-root frontier is eventually dropped.
            let forks = report.msv_count(qsim_telemetry::MsvEvent::Fork);
            let drops = report.msv_count(qsim_telemetry::MsvEvent::Drop);
            assert_eq!(forks, drops, "{}", circuit.name());
            assert_eq!(report.msv_count(qsim_telemetry::MsvEvent::Create), 1);
            // Traced results stay bitwise identical to untraced ones.
            let plain = ReuseExecutor::new(&layered).run(set.trials()).unwrap();
            assert_eq!(plain, result);
        }
    }

    #[test]
    fn baseline_telemetry_counts_every_pass_and_stores_nothing() {
        use qsim_telemetry::AggregatingRecorder;
        let (layered, set) = generate(&catalog::qft(4), 3.0, 150, 37);
        let recorder = AggregatingRecorder::new();
        let result = BaselineExecutor::new(&layered).run_traced(set.trials(), &recorder).unwrap();
        let report = recorder.report();
        assert_eq!(report.counter("ops"), result.stats.ops);
        assert_eq!(report.counter("amplitude_passes"), result.stats.amplitude_passes);
        assert_eq!(report.total_kernel_count(), result.stats.amplitude_passes);
        assert_eq!(report.peak_residency(), 0, "baseline stores no intermediate states");
        assert_eq!(report.cache_totals(), (0, 0));
    }

    #[test]
    fn budgeted_traced_runs_keep_residency_under_the_cap() {
        use qsim_telemetry::AggregatingRecorder;
        let (layered, set) = generate(&catalog::qft(4), 6.0, 300, 41);
        for budget in [1usize, 2, 4] {
            let recorder = AggregatingRecorder::new();
            let result = ReuseExecutor::new(&layered)
                .run_with_budget_traced(set.trials(), budget, &recorder)
                .unwrap();
            let report = recorder.report();
            assert_eq!(report.peak_residency(), result.stats.peak_msv, "budget {budget}");
            assert!(report.peak_residency() <= budget, "budget {budget}");
            assert_eq!(report.counter("ops"), result.stats.ops, "budget {budget}");
        }
    }

    #[test]
    fn sparse_cut_unions_leave_room_for_fusion() {
        // All trials inject at one layer: two long segments, plenty to
        // merge — fused passes must be strictly below the op count.
        let layered = catalog::qft(4).layered().unwrap();
        let cut = layered.n_layers() / 2;
        let mut trials = vec![Trial::error_free(1)];
        for s in 0..40u64 {
            trials.push(Trial::new(
                vec![qsim_noise::Injection::single(
                    cut,
                    (s % 4) as usize,
                    [qsim_noise::Pauli::X, qsim_noise::Pauli::Z][(s % 2) as usize],
                )],
                0,
                100 + s,
            ));
        }
        let fused = BaselineExecutor::new(&layered).run(&trials).unwrap();
        let reuse = ReuseExecutor::new(&layered).run(&trials).unwrap();
        assert_eq!(fused.outcomes, reuse.outcomes);
        assert!(fused.stats.amplitude_passes < fused.stats.ops);
        assert!(reuse.stats.amplitude_passes < reuse.stats.ops);
    }
}
