//! The batched tree executor: the reuse executor's prefix trie made
//! explicit, with the frontier of sibling trial states swept as a batch.
//!
//! The reuse executor (`exec.rs`) walks sorted trials one at a time: each
//! gate pass touches exactly one state vector, and sibling trials that
//! diverged at the same injection point replay their identical suffix
//! segments in separate passes spread far apart in time. This module turns
//! the same prefix trie into an *execution tree* walked layer-segment by
//! layer-segment: every live trie node holds one state ([`qsim_statevec::AmpBuf`]
//! inside a [`StateVector`]), and each [`qsim_statevec::FusedOp`] of a
//! segment is applied to the **whole frontier in one sweep**
//! ([`qsim_statevec::FusedOp::apply_batch`]): the operator is matched and
//! its operand indices enumerated once, amortized over the batch, before
//! the walk descends past the segment's cut-point.
//!
//! Branching at a cut-point clones-and-perturbs from the shared parent
//! state — with one exception that mirrors the reuse executor's remainder
//! path: the **final** fork out of a node that has no terminal trials of
//! its own hands the parent's buffer to the child and injects in place
//! (the parent was never going to be consulted again). Chains of
//! single-child nodes therefore advance with zero clones, exactly like
//! the reuse executor advancing one cached state through a trial's
//! suffix; a clone happens only where a state genuinely splits two ways.
//!
//! ## Exactness
//!
//! Outcomes are **bitwise identical** to every other strategy sharing the
//! same [`FusedProgram`]: a trial's outcome is a pure function of its
//! final state and private sampling seed, the final state is a pure
//! function of the op sequence applied to it, and batching changes only
//! *which state the process touches next* — never the per-state op
//! sequence (the batched kernels repeat the scalar kernels' arithmetic
//! verbatim). See THEORY.md §13 for the full argument.
//!
//! ## Accounting
//!
//! `ops` / `fused_ops` / `amplitude_passes` equal the unbounded reuse
//! executor's **exactly**: the trie edges are the same injections, and a
//! state is swept precisely from its creation cut-point through its last
//! scheduled event — the same span the reuse executor advances the
//! corresponding cache frame. Two counters measure what batching changed:
//! [`ExecStats::batch_sweeps`] (one per fused op per frontier sweep) and
//! [`ExecStats::batch_width_max`] (widest batch a single sweep covered),
//! bounded by `batch_sweeps ≤ fused_ops ≤ batch_sweeps · batch_width_max`.
//! `peak_msv` reports the peak *frontier width*. Because the buffer
//! handoff keeps exactly one resident state per eventual divergence, the
//! frontier only ever grows until the final boundary, and the peak equals
//! the number of **distinct injection lists** among the trials — the
//! closed form the strategy advisor predicts.

use qsim_circuit::{FusedProgram, LayeredCircuit};
use qsim_noise::{Injection, Trial};
use qsim_statevec::{MeasureOutcome, StatePool, StateVector};
use qsim_telemetry::{Heartbeat, KernelClass, MsvEvent, NullRecorder, Recorder};

use crate::exec::{
    amp_bytes, fuse_for_trials, fuse_for_trials_traced, inject_traced, measure,
    record_stats_counters, validate, validate_program, ExecStats, RunResult,
};
use crate::order::{compare_trials, lcp};
use crate::SimError;

/// Arena-index sentinel for "no node".
const NONE: u32 = u32::MAX;

/// One node of the explicit injection-prefix trie, arena-allocated with
/// intrusive sibling links — building the trie performs no allocation
/// beyond the arena itself and the path stack.
struct TreeNode {
    /// Injection-prefix length (root = 0).
    depth: u32,
    /// Incoming injection edge; `None` only for the root.
    edge: Option<Injection>,
    /// First child in sorted trial order, or [`NONE`]. A child's edge
    /// layer is ≥ the parent's, so the per-entry child cursor advances
    /// monotonically with the boundary walk.
    first_child: u32,
    /// Last child (build-time append cursor), or [`NONE`].
    last_child: u32,
    /// Next sibling under the shared parent, or [`NONE`].
    next_sibling: u32,
    /// Terminals — trials whose injection list ends here (several when
    /// trials share a path but differ in seed or readout flips) — as a
    /// contiguous run of the sorted order array: identical injection
    /// lists sort adjacent, so the run never fragments.
    term_start: u32,
    /// Length of the terminal run.
    term_len: u32,
    /// Cut-point (inclusive layer) of this node's **last** scheduled
    /// event — final child fork, or terminal measurement at the last
    /// layer. The node leaves the frontier right after this boundary.
    death: i64,
}

/// Build the trie from trials in sorted order via the shared-prefix path
/// stack — the static twin of the reuse executor's cache stack.
fn build_trie(trials: &[Trial], order: &[usize], last_layer: i64) -> Vec<TreeNode> {
    let mut arena =
        Vec::with_capacity(1 + trials.iter().map(|t| t.injections().len()).sum::<usize>());
    arena.push(TreeNode {
        depth: 0,
        edge: None,
        first_child: NONE,
        last_child: NONE,
        next_sibling: NONE,
        term_start: 0,
        term_len: 0,
        death: i64::MIN,
    });
    let mut path: Vec<u32> = vec![0];
    let mut prev: Option<&Trial> = None;
    for (pos, &orig) in order.iter().enumerate() {
        let cur = &trials[orig];
        let keep = prev.map_or(0, |p| lcp(p, cur));
        path.truncate(keep + 1);
        for inj in &cur.injections()[keep..] {
            let parent = *path.last().expect("path holds the root") as usize;
            let idx = arena.len() as u32;
            arena.push(TreeNode {
                depth: arena[parent].depth + 1,
                edge: Some(*inj),
                first_child: NONE,
                last_child: NONE,
                next_sibling: NONE,
                term_start: 0,
                term_len: 0,
                death: i64::MIN,
            });
            let prev_last = arena[parent].last_child;
            if prev_last == NONE {
                arena[parent].first_child = idx;
            } else {
                arena[prev_last as usize].next_sibling = idx;
            }
            arena[parent].last_child = idx;
            arena[parent].death = arena[parent].death.max(inj.layer() as i64);
            path.push(idx);
        }
        let leaf = *path.last().expect("path holds the root") as usize;
        if arena[leaf].term_len == 0 {
            arena[leaf].term_start = pos as u32;
        }
        arena[leaf].term_len += 1;
        arena[leaf].death = arena[leaf].death.max(last_layer);
        prev = Some(cur);
    }
    arena
}

/// Bookkeeping for one live frontier entry; the entry's state lives at
/// the same index of the parallel state vector, so sweeps run over a
/// contiguous `&mut [StateVector]` with no per-segment gather.
struct LiveMeta {
    /// Arena index of the trie node this state is advanced through.
    node: u32,
    /// Arena index of the first child not yet forked, or [`NONE`].
    next_child: u32,
}

/// The batched tree executor. See the module docs.
#[derive(Clone, Copy, Debug)]
pub struct TreeExecutor<'a> {
    layered: &'a LayeredCircuit,
}

impl<'a> TreeExecutor<'a> {
    /// Bind to a layered circuit.
    pub fn new(layered: &'a LayeredCircuit) -> Self {
        TreeExecutor { layered }
    }

    /// Execute `trials`, reordering internally; outcomes are returned in
    /// the input order and are bitwise identical to
    /// [`crate::exec::ReuseExecutor::run`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for trials whose injections do not fit the
    /// circuit.
    pub fn run(&self, trials: &[Trial]) -> Result<RunResult, SimError> {
        let program = fuse_for_trials(self.layered, trials);
        self.run_with_program_traced(&program, trials, &NullRecorder)
    }

    /// [`TreeExecutor::run`] with instrumentation streamed into
    /// `recorder`: per-sweep kernel timings (phase `"tree/sweep"`, one
    /// observation per fused op carrying the batch width), branch
    /// injections (phase `"tree/branch"`), MSV fork/drop lifecycle with
    /// live frontier width, one heartbeat per measured trial, a
    /// `"run/tree"` span, and end-of-run counters mirroring the returned
    /// [`ExecStats`] (including `batch_sweeps` / `batch_width_max`). With
    /// a [`NullRecorder`] this is exactly [`TreeExecutor::run`].
    ///
    /// # Errors
    ///
    /// As [`TreeExecutor::run`].
    pub fn run_traced<R: Recorder + ?Sized>(
        &self,
        trials: &[Trial],
        recorder: &R,
    ) -> Result<RunResult, SimError> {
        let program = fuse_for_trials_traced(self.layered, trials, recorder);
        self.run_with_program_traced(&program, trials, recorder)
    }

    /// Like [`TreeExecutor::run`], but through an externally compiled
    /// program (shared fusion across runs).
    ///
    /// # Errors
    ///
    /// As [`TreeExecutor::run`], plus cut-alignment failures when
    /// `program` was not compiled for these trials.
    pub fn run_with_program(
        &self,
        program: &FusedProgram,
        trials: &[Trial],
    ) -> Result<RunResult, SimError> {
        self.run_with_program_traced(program, trials, &NullRecorder)
    }

    /// [`TreeExecutor::run_with_program`] with instrumentation (see
    /// [`TreeExecutor::run_traced`]).
    ///
    /// # Errors
    ///
    /// As [`TreeExecutor::run_with_program`].
    pub fn run_with_program_traced<R: Recorder + ?Sized>(
        &self,
        program: &FusedProgram,
        trials: &[Trial],
        recorder: &R,
    ) -> Result<RunResult, SimError> {
        let mut outcomes: Vec<Option<MeasureOutcome>> = vec![None; trials.len()];
        let stats = self.run_streaming_with_traced(
            program,
            trials,
            |index, outcome| {
                outcomes[index] = Some(outcome);
            },
            recorder,
        )?;
        Ok(RunResult {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every trial produced an outcome"))
                .collect(),
            stats,
        })
    }

    /// Streaming execution: outcomes are handed to
    /// `sink(original_trial_index, outcome)` as the frontier walk measures
    /// them (terminal order, not input order).
    ///
    /// # Errors
    ///
    /// As [`TreeExecutor::run_with_program`].
    pub fn run_streaming_with_traced<F, R>(
        &self,
        program: &FusedProgram,
        trials: &[Trial],
        mut sink: F,
        recorder: &R,
    ) -> Result<ExecStats, SimError>
    where
        F: FnMut(usize, MeasureOutcome),
        R: Recorder + ?Sized,
    {
        let layered = self.layered;
        let n_layers = layered.n_layers();
        for trial in trials {
            validate(trial, n_layers)?;
        }
        validate_program(program, layered, trials)?;
        #[cfg(feature = "paranoid")]
        crate::exec::paranoid_verify(layered, trials, usize::MAX)?;
        let span_start = recorder.now_ns();
        let last_layer = n_layers as i64 - 1;
        let mut order: Vec<usize> = (0..trials.len()).collect();
        order.sort_by(|&a, &b| compare_trials(&trials[a], &trials[b]));

        let mut stats = ExecStats { n_trials: trials.len(), ..ExecStats::default() };
        let nodes = build_trie(trials, &order, last_layer);
        let mut pool = StatePool::new();
        // The frontier peaks at one state per distinct injection list, so
        // the trial count bounds both vectors.
        let mut meta: Vec<LiveMeta> = Vec::with_capacity(trials.len());
        let mut states: Vec<StateVector> = Vec::with_capacity(trials.len());
        let mut peak = 0usize;
        if !trials.is_empty() {
            meta.push(LiveMeta { node: 0, next_child: nodes[0].first_child });
            states.push(StateVector::zero_state(layered.n_qubits()));
            peak = 1;
            if recorder.enabled() {
                recorder.msv(MsvEvent::Create, 0, 1);
            }
        }

        if n_layers == 0 {
            // Degenerate empty circuit: one boundary (−1) measures the
            // error-free terminals straight off |0…0⟩.
            self.process_boundary(
                &nodes,
                trials,
                &order,
                -1,
                &mut meta,
                &mut states,
                &mut pool,
                &mut stats,
                &mut peak,
                &mut sink,
                recorder,
            )?;
        } else {
            for seg in program.segments() {
                let width = states.len();
                if width > 0 && !seg.ops().is_empty() {
                    let boundary = seg.end_layer() as u64;
                    if recorder.enabled() && recorder.kernel_timing() {
                        for op in seg.ops() {
                            let start = recorder.now_ns();
                            op.apply_batch(&mut states)?;
                            let ns = recorder.now_ns().saturating_sub(start);
                            let class = KernelClass::from_name(op.kernel_name())
                                .unwrap_or(KernelClass::Unfused);
                            recorder.kernel("tree/sweep", class, boundary, width as u64, ns);
                        }
                    } else if recorder.enabled() {
                        let start = recorder.now_ns();
                        for op in seg.ops() {
                            op.apply_batch(&mut states)?;
                        }
                        let ns = recorder.now_ns().saturating_sub(start);
                        recorder.kernel(
                            "tree/sweep",
                            KernelClass::Unfused,
                            boundary,
                            (width * seg.ops().len()) as u64,
                            ns,
                        );
                    } else {
                        for op in seg.ops() {
                            op.apply_batch(&mut states)?;
                        }
                    }
                    stats.batch_sweeps += seg.ops().len() as u64;
                    stats.batch_width_max = stats.batch_width_max.max(width as u64);
                    stats.ops += (seg.source_gates() * width) as u64;
                    stats.fused_ops += (seg.ops().len() * width) as u64;
                    stats.amplitude_passes += (seg.ops().len() * width) as u64;
                }
                self.process_boundary(
                    &nodes,
                    trials,
                    &order,
                    seg.end_layer() as i64,
                    &mut meta,
                    &mut states,
                    &mut pool,
                    &mut stats,
                    &mut peak,
                    &mut sink,
                    recorder,
                )?;
            }
        }
        debug_assert!(states.is_empty(), "every tree node retires by the final boundary");

        stats.peak_msv = peak;
        if recorder.enabled() {
            record_stats_counters(recorder, &stats);
            recorder.counter("batch_sweeps", stats.batch_sweeps);
            recorder.counter("batch_width_max", stats.batch_width_max);
            recorder.counter("pool.reused", pool.reuse_count());
            recorder.counter("pool.allocated", pool.alloc_count());
            recorder.span("run/tree", span_start, recorder.now_ns());
        }
        Ok(stats)
    }

    /// Process one cut-point after the frontier crossed `boundary`:
    /// fork every child whose edge sits at this boundary (including
    /// children of just-forked children — same-layer injection chains),
    /// measure terminals when the boundary is the final layer, then
    /// retire every node whose last event this was. The final fork out of
    /// a terminal-free node *steals* the parent's buffer (inject in
    /// place, no clone) — the handoff that makes single-child chains as
    /// cheap as the reuse executor's remainder walk.
    #[allow(clippy::too_many_arguments)]
    fn process_boundary<F, R>(
        &self,
        nodes: &[TreeNode],
        trials: &[Trial],
        order: &[usize],
        boundary: i64,
        meta: &mut Vec<LiveMeta>,
        states: &mut Vec<StateVector>,
        pool: &mut StatePool,
        stats: &mut ExecStats,
        peak: &mut usize,
        sink: &mut F,
        recorder: &R,
    ) -> Result<(), SimError>
    where
        F: FnMut(usize, MeasureOutcome),
        R: Recorder + ?Sized,
    {
        let layered = self.layered;
        let last_layer = layered.n_layers() as i64 - 1;

        // Phase 1 — forks. The scan index also covers entries appended
        // during the scan, so a child injected at this boundary gets its
        // own same-boundary children forked before the boundary closes.
        let mut i = 0;
        while i < meta.len() {
            loop {
                let child = meta[i].next_child;
                if child == NONE {
                    break;
                }
                let cnode = &nodes[child as usize];
                let edge = cnode.edge.expect("non-root node has an edge");
                debug_assert!(
                    edge.layer() as i64 >= boundary,
                    "child fork boundary already passed — frontier lost sync"
                );
                if edge.layer() as i64 != boundary {
                    break;
                }
                let parent = meta[i].node;
                let pnode = &nodes[parent as usize];
                stats.ops += 1;
                stats.amplitude_passes += 1;
                if cnode.next_sibling == NONE && pnode.term_len == 0 {
                    // Steal: the parent's last event is this fork and no
                    // terminal will read it again — hand its buffer to
                    // the child and perturb in place.
                    inject_traced(&edge, &mut states[i], recorder, "tree/branch")?;
                    meta[i] = LiveMeta { node: child, next_child: cnode.first_child };
                    if recorder.enabled() {
                        recorder.msv(MsvEvent::Fork, cnode.depth as usize, meta.len());
                        if parent != 0 {
                            recorder.msv(MsvEvent::Drop, pnode.depth as usize, meta.len());
                        }
                    }
                } else {
                    meta[i].next_child = cnode.next_sibling;
                    let mut state = pool.clone_state(&states[i]);
                    inject_traced(&edge, &mut state, recorder, "tree/branch")?;
                    meta.push(LiveMeta { node: child, next_child: cnode.first_child });
                    states.push(state);
                    *peak = (*peak).max(meta.len());
                    if recorder.enabled() {
                        recorder.msv(MsvEvent::Fork, cnode.depth as usize, meta.len());
                    }
                }
            }
            i += 1;
        }

        // Phase 2 — terminals: every trial measures at the final layer,
        // from its node's frontier state, with its private seed.
        if boundary == last_layer {
            for (entry, m) in meta.iter().enumerate() {
                let node = &nodes[m.node as usize];
                for pos in node.term_start..node.term_start + node.term_len {
                    let orig = order[pos as usize];
                    sink(orig, measure(layered, &states[entry], &trials[orig]));
                    if recorder.enabled() {
                        recorder.heartbeat(Heartbeat {
                            completed: 1,
                            depth: u64::from(node.depth),
                            resident_bytes: (meta.len() + pool.idle()) as u64
                                * amp_bytes(layered.n_qubits()),
                        });
                    }
                }
            }
        }

        // Phase 3 — retirement: a node whose last event this boundary was
        // frees its state immediately. With the buffer steal, only nodes
        // holding terminals ever reach this point — everything else handed
        // its state off during phase 1. `swap_remove` is safe because
        // outcomes key on the original trial index, never frontier order.
        // The root is silently recycled, never dropped — mirroring the
        // reuse executor, whose root frame also never emits a drop.
        let mut idx = 0;
        while idx < meta.len() {
            let node = &nodes[meta[idx].node as usize];
            if node.death <= boundary {
                debug_assert_eq!(
                    meta[idx].next_child, NONE,
                    "retiring a node with unforked children"
                );
                let m = meta.swap_remove(idx);
                let state = states.swap_remove(idx);
                if recorder.enabled() && m.node != 0 {
                    recorder.msv(MsvEvent::Drop, nodes[m.node as usize].depth as usize, meta.len());
                }
                pool.recycle(state);
            } else {
                idx += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ReuseExecutor;
    use crate::testkit::{scaled_rates, uniform_workload};
    use qsim_circuit::catalog;
    use qsim_noise::{Pauli, Trial};

    fn strip_batch(stats: &ExecStats) -> ExecStats {
        ExecStats { batch_sweeps: 0, batch_width_max: 0, peak_msv: 0, ..*stats }
    }

    #[test]
    fn tree_matches_reuse_bitwise_with_identical_pass_accounting() {
        for (circuit, scale) in [
            (catalog::bv(4, 0b111), 1.0),
            (catalog::qft(4), 3.0),
            (catalog::rb(), 10.0),
            (catalog::wstate_3q(), 5.0),
        ] {
            let (layered, set) = uniform_workload(&circuit, scaled_rates(scale), 48, 11);
            let tree = TreeExecutor::new(&layered).run(set.trials()).unwrap();
            let reuse = ReuseExecutor::new(&layered).run(set.trials()).unwrap();
            assert_eq!(tree.outcomes, reuse.outcomes);
            assert_eq!(strip_batch(&tree.stats), strip_batch(&reuse.stats));
            assert!(tree.stats.batch_sweeps <= tree.stats.fused_ops);
            assert!(
                tree.stats.fused_ops
                    <= tree.stats.batch_sweeps.saturating_mul(tree.stats.batch_width_max)
            );
        }
    }

    #[test]
    fn peak_frontier_is_the_number_of_distinct_injection_lists() {
        // The buffer steal keeps exactly one resident state per eventual
        // divergence, so the frontier grows monotonically to one state
        // per distinct injection list and the peak equals that count —
        // the closed form the advisor predicts.
        let circuit = catalog::rb();
        let (layered, set) = uniform_workload(&circuit, scaled_rates(10.0), 64, 23);
        let mut lists: Vec<&[qsim_noise::Injection]> =
            set.trials().iter().map(|t| t.injections()).collect();
        lists.sort();
        lists.dedup();
        let tree = TreeExecutor::new(&layered).run(set.trials()).unwrap();
        assert_eq!(tree.stats.peak_msv, lists.len());
    }

    #[test]
    fn degenerate_shapes_run_clean() {
        let circuit = catalog::ghz(3);
        let layered = LayeredCircuit::from_circuit(&circuit).unwrap();
        // Empty trial set.
        let empty = TreeExecutor::new(&layered).run(&[]).unwrap();
        assert_eq!(empty.stats, ExecStats::default());
        // Single error-free trial.
        let single = TreeExecutor::new(&layered).run(&[Trial::new(vec![], 0, 7)]).unwrap();
        let reuse = ReuseExecutor::new(&layered).run(&[Trial::new(vec![], 0, 7)]).unwrap();
        assert_eq!(single.outcomes, reuse.outcomes);
        assert_eq!(single.stats.peak_msv, 1);
        // All trials diverge at layer 0.
        let diverge: Vec<Trial> = (0..6)
            .map(|i| Trial::new(vec![Injection::single(0, i % 3, Pauli::X)], 0, 100 + i as u64))
            .collect();
        let tree = TreeExecutor::new(&layered).run(&diverge).unwrap();
        let reuse = ReuseExecutor::new(&layered).run(&diverge).unwrap();
        assert_eq!(tree.outcomes, reuse.outcomes);
        assert_eq!(strip_batch(&tree.stats), strip_batch(&reuse.stats));
        // 3 distinct injection lists: two clones plus the root's buffer
        // stolen by its final child.
        assert_eq!(tree.stats.peak_msv, 3);
    }

    #[test]
    #[ignore = "manual profiling probe: cargo test --release -p redsim profile_probe -- --ignored --nocapture"]
    fn profile_probe() {
        use std::time::Instant;
        for (name, layered) in crate::testkit::yorktown_suite() {
            if name != "qv_n5d5" && name != "rb" && name != "grover" {
                continue;
            }
            let model = qsim_noise::NoiseModel::ibm_yorktown();
            let set = qsim_noise::TrialGenerator::new(&layered, &model)
                .expect("model fits")
                .generate(64, 2020);
            let trials = set.trials();
            let reps = 400;
            let time = |f: &mut dyn FnMut()| {
                let start = Instant::now();
                for _ in 0..reps {
                    f();
                }
                start.elapsed().as_secs_f64() * 1e6 / reps as f64
            };
            let reuse_us = time(&mut || {
                ReuseExecutor::new(&layered).run(trials).unwrap();
            });
            let tree_us = time(&mut || {
                TreeExecutor::new(&layered).run(trials).unwrap();
            });
            let fuse_us = time(&mut || {
                std::hint::black_box(crate::exec::fuse_for_trials(&layered, trials));
            });
            let sort_trie_us = time(&mut || {
                let mut order: Vec<usize> = (0..trials.len()).collect();
                order.sort_by(|&a, &b| compare_trials(&trials[a], &trials[b]));
                std::hint::black_box(build_trie(trials, &order, layered.n_layers() as i64 - 1));
            });
            let state = StateVector::zero_state(layered.n_qubits());
            let measure_us = time(&mut || {
                for trial in trials {
                    std::hint::black_box(measure(&layered, &state, trial));
                }
            });
            println!(
                "{name}: reuse {reuse_us:.1}us tree {tree_us:.1}us | fuse {fuse_us:.1}us \
                 sort+trie {sort_trie_us:.1}us measure {measure_us:.1}us"
            );
        }
    }

    #[test]
    fn same_layer_injection_chains_fork_within_one_boundary() {
        let circuit = catalog::ghz(3);
        let layered = LayeredCircuit::from_circuit(&circuit).unwrap();
        let chain = vec![
            Trial::new(
                vec![Injection::single(0, 0, Pauli::X), Injection::single(0, 1, Pauli::Z)],
                0,
                1,
            ),
            Trial::new(vec![Injection::single(0, 0, Pauli::X)], 0, 2),
            Trial::new(vec![], 0, 3),
        ];
        let tree = TreeExecutor::new(&layered).run(&chain).unwrap();
        let reuse = ReuseExecutor::new(&layered).run(&chain).unwrap();
        assert_eq!(tree.outcomes, reuse.outcomes);
        assert_eq!(strip_batch(&tree.stats), strip_batch(&reuse.stats));
    }
}
