//! Trial reordering — the paper's Algorithm 1 and its lexicographic-sort
//! equivalent.
//!
//! The paper orders trials by the position of the 1st injected error, groups
//! trials sharing it, reorders each group by the 2nd error, and so on
//! recursively. A trial that has run out of injections sorts **after** any
//! trial with one at the same depth (paper §IV.B: trials with earlier first
//! errors run first and the error-free prefix execution is interleaved), so
//! the whole procedure equals one lexicographic sort under a
//! missing-injection = +∞ key — which is how production use sorts millions
//! of trials in `O(n log n)` comparisons. [`reorder_recursive`] implements
//! the literal algorithm; a test in this module proves the two agree.

use std::cmp::Ordering;

use qsim_noise::Trial;
// The comparison primitives live beside `Trial` in `qsim-noise` so the
// static plan verifier (`qsim-analyzer`) shares the executors' definition
// of the reorder key; re-exported here unchanged for compatibility.
pub use qsim_noise::{compare_injections, compare_trials, lcp};

/// Reorder trials in place to maximise overlapped computation between
/// consecutive trials (one stable lexicographic sort — the scalable
/// equivalent of the paper's Algorithm 1).
pub fn reorder(trials: &mut [Trial]) {
    trials.sort_by(compare_trials);
}

/// The literal Algorithm 1 of the paper: order by the `n`-th injected
/// error, group equal `n`-th errors, recurse with `n + 1`. Provided for
/// fidelity to the paper and as a differential-testing oracle for
/// [`reorder`]; prefer [`reorder`] in production.
pub fn reorder_recursive(trials: Vec<Trial>) -> Vec<Trial> {
    reorder_level(trials, 0)
}

fn reorder_level(mut trials: Vec<Trial>, n: usize) -> Vec<Trial> {
    // "if S has only one trial then return S"
    if trials.len() <= 1 {
        return trials;
    }
    // "Order the trials in S based on the location of the nth injected
    // error" — a stable sort on the single nth key.
    trials.sort_by(|a, b| nth_key_cmp(a, b, n));
    // "Divide the trials into Groups based on the nth error" and recurse
    // into each group with n + 1. Trials with no nth error are fully ordered
    // already (they are identical from depth n on — equal prefixes).
    let mut out = Vec::with_capacity(trials.len());
    let mut group: Vec<Trial> = Vec::new();
    for trial in trials {
        let split = match group.last() {
            Some(prev) => nth_key_cmp(prev, &trial, n) != Ordering::Equal,
            None => false,
        };
        if split {
            out.extend(flush_group(std::mem::take(&mut group), n));
        }
        group.push(trial);
    }
    out.extend(flush_group(group, n));
    out
}

fn flush_group(group: Vec<Trial>, n: usize) -> Vec<Trial> {
    // A group whose members lack an nth injection needs no further
    // ordering; recursing would not terminate on identical trials.
    if group.len() > 1 && group[0].injections().len() > n {
        reorder_level(group, n + 1)
    } else {
        group
    }
}

fn nth_key_cmp(a: &Trial, b: &Trial, n: usize) -> Ordering {
    match (a.injections().get(n), b.injections().get(n)) {
        (Some(x), Some(y)) => x.cmp(y),
        (Some(_), None) => Ordering::Less,
        (None, Some(_)) => Ordering::Greater,
        (None, None) => Ordering::Equal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_noise::{Injection, NoiseModel, Pauli, TrialGenerator};

    fn single(layer: usize, qubit: usize, p: Pauli) -> Injection {
        Injection::single(layer, qubit, p)
    }

    fn trial(injections: Vec<Injection>) -> Trial {
        Trial::new(injections, 0, 0)
    }

    #[test]
    fn orders_by_first_error_location() {
        // The paper's Fig. 2 example: three single-error trials; the
        // optimized order is earliest-first-error first.
        let t1 = trial(vec![single(2, 0, Pauli::X)]); // error late (circuit ③..① reversed)
        let t2 = trial(vec![single(1, 0, Pauli::X)]);
        let t3 = trial(vec![single(0, 0, Pauli::X)]);
        let mut trials = vec![t1.clone(), t2.clone(), t3.clone()];
        reorder(&mut trials);
        assert_eq!(trials, vec![t3, t2, t1]);
    }

    #[test]
    fn error_free_trial_runs_last() {
        let mut trials = vec![
            Trial::error_free(9),
            trial(vec![single(5, 0, Pauli::Z)]),
            trial(vec![single(0, 1, Pauli::Y)]),
        ];
        reorder(&mut trials);
        assert_eq!(trials[2], Trial::error_free(9));
    }

    #[test]
    fn extension_precedes_prefix() {
        let prefix = trial(vec![single(1, 0, Pauli::X)]);
        let extension = trial(vec![single(1, 0, Pauli::X), single(4, 1, Pauli::Z)]);
        let mut trials = vec![prefix.clone(), extension.clone()];
        reorder(&mut trials);
        assert_eq!(trials, vec![extension, prefix]);
    }

    #[test]
    fn groups_share_consecutive_prefixes() {
        let a = trial(vec![single(0, 0, Pauli::X), single(3, 1, Pauli::Z)]);
        let b = trial(vec![single(0, 0, Pauli::X), single(1, 1, Pauli::Y)]);
        let c = trial(vec![single(0, 0, Pauli::Y), single(1, 1, Pauli::Y)]);
        let mut trials = vec![a.clone(), c.clone(), b.clone()];
        reorder(&mut trials);
        // X-group first (b before a: earlier 2nd error), then the Y trial.
        assert_eq!(trials, vec![b.clone(), a.clone(), c]);
        assert_eq!(lcp(&trials[0], &trials[1]), 1);
        assert_eq!(lcp(&trials[1], &trials[2]), 0);
    }

    #[test]
    fn lcp_counts_shared_leading_injections() {
        let a = trial(vec![single(0, 0, Pauli::X), single(2, 1, Pauli::Y), single(5, 0, Pauli::Z)]);
        let b = trial(vec![single(0, 0, Pauli::X), single(2, 1, Pauli::Y), single(6, 0, Pauli::Z)]);
        assert_eq!(lcp(&a, &b), 2);
        assert_eq!(lcp(&a, &a), 3);
        assert_eq!(lcp(&a, &Trial::error_free(0)), 0);
    }

    #[test]
    fn identical_trials_stay_adjacent() {
        let t = trial(vec![single(1, 0, Pauli::X)]);
        let other = trial(vec![single(0, 0, Pauli::X)]);
        let mut trials = vec![t.clone(), other.clone(), t.clone()];
        reorder(&mut trials);
        assert_eq!(trials, vec![other, t.clone(), t]);
    }

    #[test]
    fn recursive_algorithm_matches_lexicographic_sort() {
        // Differential test on realistic generated trials.
        let layered = qsim_circuit::catalog::qft(4).layered().unwrap();
        // Inflate rates so trials carry several errors each.
        let model = NoiseModel::uniform(4, 0.05, 0.2, 0.0);
        let generator = TrialGenerator::new(&layered, &model).unwrap();
        for seed in 0..5u64 {
            let set = generator.generate(200, seed);
            let mut sorted = set.trials().to_vec();
            reorder(&mut sorted);
            let recursive = reorder_recursive(set.trials().to_vec());
            // Both orders must agree on the injection sequences (seeds may
            // tie-break differently for identical sequences, so compare
            // keys, not whole trials).
            let keys = |ts: &[Trial]| -> Vec<Vec<Injection>> {
                ts.iter().map(|t| t.injections().to_vec()).collect()
            };
            assert_eq!(keys(&sorted), keys(&recursive), "seed {seed}");
        }
    }

    #[test]
    fn reorder_output_is_sorted_under_comparator() {
        let layered = qsim_circuit::catalog::bv(5, 0b1011).layered().unwrap();
        let model = NoiseModel::uniform(5, 0.1, 0.3, 0.1);
        let set = TrialGenerator::new(&layered, &model).unwrap().generate(500, 3);
        let mut trials = set.into_trials();
        reorder(&mut trials);
        for pair in trials.windows(2) {
            assert_ne!(compare_trials(&pair[0], &pair[1]), Ordering::Greater);
        }
    }

    #[test]
    fn comparator_is_a_total_order() {
        let ts = [
            Trial::error_free(0),
            trial(vec![single(0, 0, Pauli::X)]),
            trial(vec![single(0, 0, Pauli::X), single(1, 0, Pauli::Y)]),
            trial(vec![single(0, 1, Pauli::X)]),
            trial(vec![single(2, 0, Pauli::Z)]),
        ];
        for a in &ts {
            assert_eq!(compare_trials(a, a), Ordering::Equal);
            for b in &ts {
                assert_eq!(compare_trials(a, b), compare_trials(b, a).reverse());
                for c in &ts {
                    // Transitivity spot-check.
                    if compare_trials(a, b) == Ordering::Less
                        && compare_trials(b, c) == Ordering::Less
                    {
                        assert_eq!(compare_trials(a, c), Ordering::Less);
                    }
                }
            }
        }
    }
}
