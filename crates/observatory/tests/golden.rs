//! Golden-file tests for the report renderers: the TTY and JSON views of a
//! checked-in trace fixture are pinned byte-for-byte. Renderers are pure
//! functions of the trace, so any diff here is a deliberate format change —
//! regenerate with `UPDATE_GOLDENS=1 cargo test -p qsim-observatory`.

use qsim_observatory::{render_html, render_json, render_tty, Trace, TraceAnalysis};
use std::path::Path;

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name).display().to_string()
}

fn check_golden(name: &str, rendered: &str) {
    let path = fixture(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{path}: {e} (run with UPDATE_GOLDENS=1 to create)"));
    assert_eq!(rendered, want, "{name} drifted; rerun with UPDATE_GOLDENS=1 if intentional");
}

fn load_fixture() -> (Trace, TraceAnalysis) {
    let trace = Trace::load(&fixture("grover.trace.jsonl")).expect("fixture parses");
    let analysis = TraceAnalysis::from_trace(&trace);
    assert!(analysis.cross_check().is_empty(), "fixture must satisfy the exactness contract");
    (trace, analysis)
}

#[test]
fn tty_report_matches_golden() {
    let (trace, analysis) = load_fixture();
    check_golden("grover.report.txt", &render_tty(&trace, &analysis));
}

#[test]
fn json_report_matches_golden() {
    let (trace, analysis) = load_fixture();
    let json = render_json(&trace, &analysis);
    check_golden("grover.report.json", &json);
    // The pinned JSON is itself well-formed for our own reader.
    qsim_observatory::Json::parse(&json).expect("golden JSON parses");
}

#[test]
fn html_report_is_self_contained_for_the_fixture() {
    let (trace, analysis) = load_fixture();
    let html = render_html(&trace, &analysis);
    assert!(html.starts_with("<!DOCTYPE html>"));
    for banned in ["http://", "https://", "src=", "href="] {
        assert!(!html.contains(banned), "external reference {banned:?} in HTML report");
    }
}
