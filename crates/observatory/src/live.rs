//! Reading and reconciling published live snapshots (`live.json`).
//!
//! The telemetry crate's `LivePublisher` writes a flat, versioned JSON
//! snapshot of a run in flight; this module is the consumer side. It
//! parses the snapshot with strict schema checks ([`LiveView::parse`]),
//! validates the universal invariants any coherent snapshot must satisfy
//! ([`LiveView::cross_check`]), and — for a *final* snapshot taken after
//! the run returned — reconciles the counters bitwise against the
//! executor's own `ExecStats` ([`LiveView::reconcile`]). The CLI runs the
//! reconciliation automatically at the end of every `--live` run, and the
//! live matrix test pins it across the shipped benchmark catalog.

use crate::jsonv::Json;

/// The snapshot schema version this reader understands (must match the
/// telemetry crate's `LIVE_VERSION`).
pub const LIVE_VIEW_VERSION: u64 = 1;

/// The exact key set of a version-1 `live.json` snapshot, in publish
/// order.
const KEYS: [&str; 22] = [
    "version",
    "strategy",
    "qubits",
    "seed",
    "elapsed_ns",
    "heartbeats",
    "trials_done",
    "trials_total",
    "depth",
    "passes",
    "ops",
    "fused_ops",
    "amplitude_passes",
    "credited_passes",
    "store_hits",
    "store_misses",
    "cache_hits",
    "cache_misses",
    "msv_resident",
    "msv_peak",
    "resident_bytes",
    "peak_resident_bytes",
];

/// A parsed, schema-checked live snapshot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LiveView {
    /// Snapshot schema version.
    pub version: u64,
    /// Execution strategy name.
    pub strategy: String,
    /// Qubit count of the simulated circuit.
    pub qubits: u64,
    /// RNG seed of the run.
    pub seed: u64,
    /// Nanoseconds since the recorder was created.
    pub elapsed_ns: u64,
    /// Heartbeats received.
    pub heartbeats: u64,
    /// Trials completed.
    pub trials_done: u64,
    /// Total trials of the run.
    pub trials_total: u64,
    /// Most recent heartbeat depth gauge.
    pub depth: u64,
    /// Kernel applications observed.
    pub passes: u64,
    /// Basic operations counter.
    pub ops: u64,
    /// Fused kernel counter.
    pub fused_ops: u64,
    /// Amplitude-pass counter.
    pub amplitude_passes: u64,
    /// Passes credited (not executed) by the semantic store.
    pub credited_passes: u64,
    /// Semantic-store hits.
    pub store_hits: u64,
    /// Semantic-store misses.
    pub store_misses: u64,
    /// Per-trial prefix-cache hits.
    pub cache_hits: u64,
    /// Per-trial prefix-cache misses.
    pub cache_misses: u64,
    /// Live MSVs after the most recent lifecycle event.
    pub msv_resident: u64,
    /// Peak MSV residency.
    pub msv_peak: u64,
    /// Most recent resident amplitude bytes.
    pub resident_bytes: u64,
    /// Peak resident amplitude bytes.
    pub peak_resident_bytes: u64,
}

/// The executor-side counters a final snapshot must match bitwise.
///
/// Plain integers rather than the core crate's `ExecStats` so the
/// observatory stays dependency-free; the CLI translates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExpectedStats {
    /// Trials executed (`ExecStats::n_trials`).
    pub trials: u64,
    /// Basic operations (`ExecStats::ops`).
    pub ops: u64,
    /// Fused kernels (`ExecStats::fused_ops`).
    pub fused_ops: u64,
    /// Amplitude passes (`ExecStats::amplitude_passes`).
    pub amplitude_passes: u64,
    /// Passes credited by the semantic store; `None` when the caller has
    /// no independent figure (the conservation law in
    /// [`LiveView::cross_check`] still binds it to the other counters).
    pub credited_passes: Option<u64>,
    /// Per-trial prefix-cache hits; `None` when the caller has no
    /// independent figure.
    pub cache_hits: Option<u64>,
}

fn uint(value: &Json, key: &str) -> Result<u64, String> {
    let n = value
        .get(key)
        .ok_or_else(|| format!("missing field {key:?}"))?
        .as_num()
        .ok_or_else(|| format!("field {key:?} is not a number"))?;
    if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
        return Err(format!("field {key:?} is not an unsigned integer: {n}"));
    }
    Ok(n as u64)
}

impl LiveView {
    /// Parse a `live.json` payload, rejecting unknown versions, missing or
    /// extra keys, and wrong field types.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic naming the offending field or key set.
    pub fn parse(text: &str) -> Result<LiveView, String> {
        let v = Json::parse(text.trim())?;
        let pairs = v.as_obj().ok_or("live snapshot is not a JSON object")?;
        let mut got: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        got.sort_unstable();
        let mut want = KEYS;
        want.sort_unstable();
        if got != want {
            return Err(format!("live snapshot keys {got:?} != expected {want:?}"));
        }
        let version = uint(&v, "version")?;
        if version != LIVE_VIEW_VERSION {
            return Err(format!(
                "unsupported live snapshot version {version} (reader supports {LIVE_VIEW_VERSION})"
            ));
        }
        Ok(LiveView {
            version,
            strategy: v
                .get("strategy")
                .and_then(Json::as_str)
                .ok_or("field \"strategy\" is not a string")?
                .to_owned(),
            qubits: uint(&v, "qubits")?,
            seed: uint(&v, "seed")?,
            elapsed_ns: uint(&v, "elapsed_ns")?,
            heartbeats: uint(&v, "heartbeats")?,
            trials_done: uint(&v, "trials_done")?,
            trials_total: uint(&v, "trials_total")?,
            depth: uint(&v, "depth")?,
            passes: uint(&v, "passes")?,
            ops: uint(&v, "ops")?,
            fused_ops: uint(&v, "fused_ops")?,
            amplitude_passes: uint(&v, "amplitude_passes")?,
            credited_passes: uint(&v, "credited_passes")?,
            store_hits: uint(&v, "store_hits")?,
            store_misses: uint(&v, "store_misses")?,
            cache_hits: uint(&v, "cache_hits")?,
            cache_misses: uint(&v, "cache_misses")?,
            msv_resident: uint(&v, "msv_resident")?,
            msv_peak: uint(&v, "msv_peak")?,
            resident_bytes: uint(&v, "resident_bytes")?,
            peak_resident_bytes: uint(&v, "peak_resident_bytes")?,
        })
    }

    /// Read and parse a snapshot file.
    ///
    /// # Errors
    ///
    /// Returns the I/O error text or the parse diagnostic.
    pub fn load(path: &std::path::Path) -> Result<LiveView, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        LiveView::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Whether the snapshot describes a finished run.
    pub fn finished(&self) -> bool {
        self.trials_total > 0 && self.trials_done == self.trials_total
    }

    /// Fraction of trials completed, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        self.trials_done as f64 / self.trials_total.max(1) as f64
    }

    /// Validate the invariants every coherent snapshot — mid-flight or
    /// final — must satisfy. Returns one message per violation.
    pub fn cross_check(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.trials_done > self.trials_total {
            problems.push(format!(
                "trials_done ({}) exceeds trials_total ({})",
                self.trials_done, self.trials_total
            ));
        }
        if self.msv_resident > self.msv_peak {
            problems.push(format!(
                "msv_resident ({}) exceeds msv_peak ({})",
                self.msv_resident, self.msv_peak
            ));
        }
        if self.resident_bytes > self.peak_resident_bytes {
            problems.push(format!(
                "resident_bytes ({}) exceeds peak_resident_bytes ({})",
                self.resident_bytes, self.peak_resident_bytes
            ));
        }
        if self.trials_done > self.heartbeats {
            problems.push(format!(
                "trials_done ({}) exceeds heartbeats ({}): beats carry at most one trial",
                self.trials_done, self.heartbeats
            ));
        }
        if self.finished() {
            // Conservation: every amplitude pass was either executed as a
            // kernel or credited from the store — exactly.
            if self.passes + self.credited_passes != self.amplitude_passes {
                problems.push(format!(
                    "passes ({}) + credited_passes ({}) != amplitude_passes ({})",
                    self.passes, self.credited_passes, self.amplitude_passes
                ));
            }
            if self.ops < self.amplitude_passes {
                problems.push(format!(
                    "ops ({}) below amplitude_passes ({}): fusion cannot add passes",
                    self.ops, self.amplitude_passes
                ));
            }
        }
        problems
    }

    /// Reconcile a *final* snapshot bitwise against the executor's own
    /// end-of-run counters. Returns one message per mismatch.
    pub fn reconcile(&self, expected: &ExpectedStats) -> Vec<String> {
        fn check(problems: &mut Vec<String>, name: &str, got: u64, want: u64) {
            if got != want {
                problems.push(format!("{name}: live {got} != executor {want}"));
            }
        }
        let mut problems = self.cross_check();
        if !self.finished() {
            problems.push(format!(
                "snapshot is not final: trials_done {} / trials_total {}",
                self.trials_done, self.trials_total
            ));
        }
        check(&mut problems, "trials", self.trials_done, expected.trials);
        check(&mut problems, "ops", self.ops, expected.ops);
        check(&mut problems, "fused_ops", self.fused_ops, expected.fused_ops);
        check(&mut problems, "amplitude_passes", self.amplitude_passes, expected.amplitude_passes);
        if let Some(credited) = expected.credited_passes {
            check(&mut problems, "credited_passes", self.credited_passes, credited);
            check(
                &mut problems,
                "kernel applications (passes + credit vs amplitude_passes)",
                self.passes + credited,
                expected.amplitude_passes,
            );
        }
        if let Some(hits) = expected.cache_hits {
            check(&mut problems, "cache_hits", self.cache_hits, hits);
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        concat!(
            "{\"version\":1,\"strategy\":\"reuse\",\"qubits\":4,\"seed\":7,",
            "\"elapsed_ns\":1000,\"heartbeats\":3,\"trials_done\":3,\"trials_total\":3,",
            "\"depth\":2,\"passes\":10,\"ops\":14,\"fused_ops\":10,\"amplitude_passes\":12,",
            "\"credited_passes\":2,\"store_hits\":1,\"store_misses\":0,\"cache_hits\":2,",
            "\"cache_misses\":1,\"msv_resident\":1,\"msv_peak\":2,\"resident_bytes\":512,",
            "\"peak_resident_bytes\":1024}"
        )
        .to_owned()
    }

    #[test]
    fn parses_and_cross_checks_a_final_snapshot() {
        let view = LiveView::parse(&sample()).unwrap();
        assert_eq!(view.strategy, "reuse");
        assert_eq!((view.trials_done, view.trials_total), (3, 3));
        assert!(view.finished());
        assert!((view.progress() - 1.0).abs() < 1e-12);
        assert_eq!(view.cross_check(), Vec::<String>::new());
    }

    #[test]
    fn rejects_schema_violations() {
        // Wrong version.
        let err = LiveView::parse(&sample().replace("\"version\":1", "\"version\":9")).unwrap_err();
        assert!(err.contains("unsupported"), "{err}");
        // Missing key.
        let err = LiveView::parse(&sample().replace("\"depth\":2,", "")).unwrap_err();
        assert!(err.contains("keys"), "{err}");
        // Extra key.
        let err = LiveView::parse(&sample().replace("\"depth\":2,", "\"depth\":2,\"extra\":0,"))
            .unwrap_err();
        assert!(err.contains("keys"), "{err}");
        // Wrong type.
        let err = LiveView::parse(&sample().replace("\"depth\":2", "\"depth\":\"x\"")).unwrap_err();
        assert!(err.contains("not a number"), "{err}");
        // Non-integer.
        let err = LiveView::parse(&sample().replace("\"depth\":2", "\"depth\":2.5")).unwrap_err();
        assert!(err.contains("unsigned integer"), "{err}");
    }

    #[test]
    fn cross_check_flags_incoherent_gauges() {
        let mut view = LiveView::parse(&sample()).unwrap();
        view.msv_resident = 5;
        view.trials_done = 4;
        view.resident_bytes = 4096;
        let problems = view.cross_check();
        assert!(problems.iter().any(|p| p.contains("msv_resident")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("trials_done")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("resident_bytes")), "{problems:?}");
    }

    #[test]
    fn reconcile_is_bitwise() {
        let view = LiveView::parse(&sample()).unwrap();
        let expected = ExpectedStats {
            trials: 3,
            ops: 14,
            fused_ops: 10,
            amplitude_passes: 12,
            credited_passes: Some(2),
            cache_hits: Some(2),
        };
        assert_eq!(view.reconcile(&expected), Vec::<String>::new());
        // A single off-by-one anywhere must surface.
        let mut off = expected;
        off.ops += 1;
        let problems = view.reconcile(&off);
        assert!(problems.iter().any(|p| p.contains("ops")), "{problems:?}");
        let mut off = expected;
        off.amplitude_passes -= 1;
        assert!(!view.reconcile(&off).is_empty());
        let mut off = expected;
        off.cache_hits = Some(5);
        assert!(view.reconcile(&off).iter().any(|p| p.contains("cache_hits")));
        // Without independent cache figures, only the universal checks run.
        let lax = ExpectedStats { credited_passes: None, cache_hits: None, ..expected };
        assert_eq!(view.reconcile(&lax), Vec::<String>::new());
    }

    #[test]
    fn unfinished_snapshots_fail_reconciliation() {
        let text = sample().replace("\"trials_done\":3", "\"trials_done\":2");
        let view = LiveView::parse(&text).unwrap();
        assert!(!view.finished());
        let problems = view.reconcile(&ExpectedStats::default());
        assert!(problems.iter().any(|p| p.contains("not final")), "{problems:?}");
    }
}
