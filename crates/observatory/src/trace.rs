//! Loading validated JSONL traces into typed events.
//!
//! Parsing runs the telemetry schema validator first, so every trace the
//! observatory analyzes is known well-formed; the typed extraction below
//! can then be straightforward.

use qsim_telemetry::{schema, KernelClass, MsvEvent};

use crate::jsonv::Json;

/// The run metadata from the trace's meta header line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceMetaInfo {
    /// Trace format version.
    pub version: u64,
    /// Git revision of the producing build.
    pub git_rev: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Qubit count of the simulated circuit.
    pub qubits: u64,
    /// Execution strategy name.
    pub strategy: String,
}

/// One trace event, in file order.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A named execution span.
    Span {
        /// Span path (`"run/reuse"`).
        path: String,
        /// Start timestamp on the recorder clock (ns).
        start_ns: u64,
        /// End timestamp (ns).
        end_ns: u64,
    },
    /// One or more kernel applications.
    Kernel {
        /// Phase path (`"reuse/shared"`).
        phase: String,
        /// Kernel class.
        class: KernelClass,
        /// Circuit layer the work ended on.
        layer: u64,
        /// Applications batched in this record.
        count: u64,
        /// Total nanoseconds of the record.
        ns: u64,
    },
    /// A counter increment.
    Counter {
        /// Counter name.
        name: String,
        /// Increment.
        delta: u64,
    },
    /// An MSV lifecycle event.
    Msv {
        /// Event kind.
        kind: MsvEvent,
        /// Prefix-trie depth.
        depth: u64,
        /// Live MSVs after the event.
        residency: u64,
    },
    /// A per-trial prefix-cache lookup.
    Cache {
        /// Depth the lookup resolved at.
        depth: u64,
        /// Whether a cached frontier was reused.
        hit: bool,
    },
    /// A progress heartbeat from an executor loop.
    Heartbeat {
        /// Trials completed since the previous heartbeat (usually 1).
        completed: u64,
        /// Current depth gauge (trie depth / layer count).
        depth: u64,
        /// Resident state bytes at the time of the beat.
        resident: u64,
    },
}

/// A fully parsed, schema-validated trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// The meta header.
    pub meta: TraceMetaInfo,
    /// Events in file order (meta excluded).
    pub events: Vec<TraceEvent>,
}

fn num(value: &Json, key: &str) -> u64 {
    value.get(key).and_then(Json::as_num).map(|n| n as u64).expect("validated field")
}

fn text(value: &Json, key: &str) -> String {
    value.get(key).and_then(Json::as_str).expect("validated field").to_owned()
}

impl Trace {
    /// Parse a JSONL trace, validating it against the telemetry schema
    /// first.
    ///
    /// # Errors
    ///
    /// Returns the validator's or parser's diagnostic (with line numbers)
    /// on malformed input.
    pub fn parse(textual: &str) -> Result<Trace, String> {
        schema::validate_jsonl(textual)?;
        let mut lines = textual.lines().filter(|l| !l.trim().is_empty());
        let header = Json::parse(lines.next().expect("validator requires a header"))?;
        let meta = TraceMetaInfo {
            version: num(&header, "version"),
            git_rev: text(&header, "git_rev"),
            seed: num(&header, "seed"),
            qubits: num(&header, "qubits"),
            strategy: text(&header, "strategy"),
        };
        let mut events = Vec::new();
        for line in lines {
            let v = Json::parse(line)?;
            let ev = v.get("ev").and_then(Json::as_str).expect("validated field");
            events.push(match ev {
                "span" => TraceEvent::Span {
                    path: text(&v, "path"),
                    start_ns: num(&v, "start_ns"),
                    end_ns: num(&v, "end_ns"),
                },
                "kernel" => TraceEvent::Kernel {
                    phase: text(&v, "phase"),
                    class: KernelClass::from_name(
                        v.get("class").and_then(Json::as_str).expect("validated"),
                    )
                    .expect("validator checked the class"),
                    layer: num(&v, "layer"),
                    count: num(&v, "count"),
                    ns: num(&v, "ns"),
                },
                "counter" => {
                    TraceEvent::Counter { name: text(&v, "name"), delta: num(&v, "delta") }
                }
                "msv" => TraceEvent::Msv {
                    kind: MsvEvent::ALL
                        .into_iter()
                        .find(|e| Some(e.name()) == v.get("kind").and_then(Json::as_str))
                        .expect("validator checked the kind"),
                    depth: num(&v, "depth"),
                    residency: num(&v, "residency"),
                },
                "cache" => TraceEvent::Cache {
                    depth: num(&v, "depth"),
                    hit: matches!(v.get("hit"), Some(Json::Bool(true))),
                },
                "heartbeat" => TraceEvent::Heartbeat {
                    completed: num(&v, "completed"),
                    depth: num(&v, "depth"),
                    resident: num(&v, "resident"),
                },
                other => unreachable!("validator admitted unknown event {other:?}"),
            });
        }
        Ok(Trace { meta, events })
    }

    /// Read and parse a trace file.
    ///
    /// # Errors
    ///
    /// Returns the I/O error text or the parse diagnostic.
    pub fn load(path: &str) -> Result<Trace, String> {
        let textual = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Trace::parse(&textual).map_err(|e| format!("{path}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"ev\":\"meta\",\"version\":2,\"git_rev\":\"abc1234\",\"seed\":7,\"qubits\":4,\"strategy\":\"reuse\"}\n",
        "{\"ev\":\"cache\",\"depth\":0,\"hit\":false}\n",
        "{\"ev\":\"kernel\",\"phase\":\"reuse/shared\",\"class\":\"dense2\",\"layer\":3,\"count\":1,\"ns\":120}\n",
        "{\"ev\":\"msv\",\"kind\":\"create\",\"depth\":0,\"residency\":1}\n",
        "{\"ev\":\"counter\",\"name\":\"ops\",\"delta\":9}\n",
        "{\"ev\":\"heartbeat\",\"completed\":1,\"depth\":3,\"resident\":512}\n",
        "{\"ev\":\"span\",\"path\":\"run/reuse\",\"start_ns\":1,\"end_ns\":500}\n",
    );

    #[test]
    fn parses_a_valid_trace() {
        let trace = Trace::parse(SAMPLE).unwrap();
        assert_eq!(trace.meta.version, 2);
        assert_eq!(trace.meta.strategy, "reuse");
        assert_eq!(trace.meta.qubits, 4);
        assert_eq!(trace.events.len(), 6);
        assert!(matches!(
            &trace.events[1],
            TraceEvent::Kernel { class: KernelClass::Dense2, layer: 3, count: 1, ns: 120, .. }
        ));
        assert!(matches!(
            &trace.events[4],
            TraceEvent::Heartbeat { completed: 1, depth: 3, resident: 512 }
        ));
        assert!(matches!(&trace.events[5], TraceEvent::Span { end_ns: 500, .. }));
    }

    #[test]
    fn rejects_headerless_or_malformed_traces() {
        let err = Trace::parse("{\"ev\":\"counter\",\"name\":\"x\",\"delta\":1}\n").unwrap_err();
        assert!(err.contains("meta header"), "{err}");
        let err = Trace::parse("not json\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }
}
