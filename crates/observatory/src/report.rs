//! Report rendering: TTY tables, machine-readable JSON, and a
//! self-contained single-file HTML report with inline SVG charts.

use crate::analysis::TraceAnalysis;
use crate::compare::MetricDelta;
use crate::trace::Trace;

fn pad(s: &str, width: usize) -> String {
    format!("{s:<width$}")
}

fn pad_r(s: &str, width: usize) -> String {
    format!("{s:>width$}")
}

/// Render a two-column-plus table with a title row and a separator.
fn table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = format!("{title}\n");
    let header: Vec<String> = headers.iter().enumerate().map(|(i, h)| pad(h, widths[i])).collect();
    out.push_str(&format!("  {}\n", header.join("  ")));
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&format!("  {}\n", rule.join("  ")));
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, cell)| if i == 0 { pad(cell, widths[i]) } else { pad_r(cell, widths[i]) })
            .collect();
        out.push_str(&format!("  {}\n", cells.join("  ")));
    }
    out
}

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

fn meta_lines(trace: &Trace) -> String {
    let m = &trace.meta;
    format!(
        "trace v{}  git={}  seed={}  qubits={}  strategy={}\n",
        m.version, m.git_rev, m.seed, m.qubits, m.strategy
    )
}

/// Render the human-readable terminal report.
pub fn render_tty(trace: &Trace, analysis: &TraceAnalysis) -> String {
    let mut out = String::from("== trace report ==\n");
    out.push_str(&meta_lines(trace));
    out.push('\n');

    let counter_rows: Vec<Vec<String>> = analysis
        .counters
        .iter()
        .map(|(name, value)| vec![name.clone(), value.to_string()])
        .collect();
    out.push_str(&table("counters", &["name", "value"], &counter_rows));
    out.push('\n');

    let class_rows: Vec<Vec<String>> = analysis
        .by_class
        .iter()
        .map(|(class, cell)| vec![class.name().to_owned(), cell.count.to_string(), ms(cell.ns)])
        .collect();
    out.push_str(&table("kernels by class", &["class", "applications", "ms"], &class_rows));
    out.push('\n');

    let layer_rows: Vec<Vec<String>> = analysis
        .by_layer
        .iter()
        .map(|(layer, cell)| vec![layer.to_string(), cell.count.to_string(), ms(cell.ns)])
        .collect();
    out.push_str(&table(
        "amplitude passes by circuit layer",
        &["layer", "applications", "ms"],
        &layer_rows,
    ));
    out.push('\n');

    if !analysis.cache_waterfall.is_empty() {
        let cache_rows: Vec<Vec<String>> = analysis
            .cache_waterfall
            .iter()
            .map(|(depth, (hits, misses))| {
                vec![depth.to_string(), hits.to_string(), misses.to_string()]
            })
            .collect();
        out.push_str(&table(
            "cache waterfall by prefix depth",
            &["depth", "hits", "misses"],
            &cache_rows,
        ));
        let (hits, misses) = analysis.cache_totals();
        let total = hits + misses;
        if total > 0 {
            out.push_str(&format!(
                "  hit rate: {:.1}% ({hits}/{total})\n",
                hits as f64 / total as f64 * 100.0
            ));
        }
        out.push('\n');
    }

    if let Some(sc) = analysis.semantic_cache() {
        out.push_str(&table(
            "semantic prefix store",
            &["metric", "value"],
            &[
                vec!["hits".to_owned(), sc.hits.to_string()],
                vec!["misses".to_owned(), sc.misses.to_string()],
                vec!["snapshots written".to_owned(), sc.stored.to_string()],
                vec!["evictions".to_owned(), sc.evicted.to_string()],
                vec!["bytes read".to_owned(), sc.bytes_read.to_string()],
                vec!["bytes written".to_owned(), sc.bytes_written.to_string()],
                vec!["prefix layer".to_owned(), sc.prefix_layer.to_string()],
                vec!["credited passes".to_owned(), sc.credited_passes.to_string()],
            ],
        ));
        let passes = analysis.counter("amplitude_passes");
        if sc.lookups() > 0 {
            out.push_str(&format!(
                "  hit rate: {:.1}% ({}/{}); {:.1}% of {passes} amplitude passes served from disk\n",
                sc.hits as f64 / sc.lookups() as f64 * 100.0,
                sc.hits,
                sc.lookups(),
                sc.pass_savings(passes) * 100.0,
            ));
        }
        out.push('\n');
    }

    if !analysis.residency_curve.is_empty() {
        out.push_str(&format!(
            "msv residency: peak {} live (depth ≤ {}), {} lifecycle events\n",
            analysis.peak_residency,
            analysis.peak_depth,
            analysis.residency_curve.len()
        ));
        let msv_rows: Vec<Vec<String>> = analysis
            .msv_counts
            .iter()
            .map(|(kind, count)| vec![kind.name().to_owned(), count.to_string()])
            .collect();
        out.push_str(&table("msv lifecycle", &["event", "count"], &msv_rows));
        out.push('\n');
    }

    if !analysis.spans.is_empty() {
        let span_rows: Vec<Vec<String>> = analysis
            .spans
            .iter()
            .map(|(path, (count, total_ns))| vec![path.clone(), count.to_string(), ms(*total_ns)])
            .collect();
        out.push_str(&table("spans", &["path", "count", "total ms"], &span_rows));
        out.push('\n');
    }

    let problems = analysis.cross_check();
    if problems.is_empty() {
        out.push_str("cross-check: ok — derived views agree with recorded counters\n");
    } else {
        out.push_str("cross-check: FAILED\n");
        for p in &problems {
            out.push_str(&format!("  {p}\n"));
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

/// Render the machine-readable JSON report.
pub fn render_json(trace: &Trace, analysis: &TraceAnalysis) -> String {
    let mut out = String::from("{\n");
    let m = &trace.meta;
    out.push_str(&format!(
        "  \"meta\": {{\"version\": {}, \"git_rev\": \"{}\", \"seed\": {}, \"qubits\": {}, \"strategy\": \"{}\"}},\n",
        m.version,
        json_escape(&m.git_rev),
        m.seed,
        m.qubits,
        json_escape(&m.strategy)
    ));

    let counters: Vec<String> = analysis
        .counters
        .iter()
        .map(|(name, value)| format!("\"{}\": {}", json_escape(name), value))
        .collect();
    out.push_str(&format!("  \"counters\": {{{}}},\n", counters.join(", ")));

    let classes: Vec<String> = analysis
        .by_class
        .iter()
        .map(|(class, cell)| {
            format!(
                "{{\"class\": \"{}\", \"count\": {}, \"ns\": {}}}",
                class.name(),
                cell.count,
                cell.ns
            )
        })
        .collect();
    out.push_str(&format!("  \"by_class\": [{}],\n", classes.join(", ")));

    let layers: Vec<String> = analysis
        .by_layer
        .iter()
        .map(|(layer, cell)| {
            format!("{{\"layer\": {layer}, \"count\": {}, \"ns\": {}}}", cell.count, cell.ns)
        })
        .collect();
    out.push_str(&format!("  \"by_layer\": [{}],\n", layers.join(", ")));

    let waterfall: Vec<String> = analysis
        .cache_waterfall
        .iter()
        .map(|(depth, (hits, misses))| {
            format!("{{\"depth\": {depth}, \"hits\": {hits}, \"misses\": {misses}}}")
        })
        .collect();
    out.push_str(&format!("  \"cache_waterfall\": [{}],\n", waterfall.join(", ")));

    if let Some(sc) = analysis.semantic_cache() {
        out.push_str(&format!(
            "  \"semantic_cache\": {{\"hits\": {}, \"misses\": {}, \"stored\": {}, \
             \"evicted\": {}, \"bytes_read\": {}, \"bytes_written\": {}, \
             \"credited_ops\": {}, \"credited_passes\": {}, \"prefix_layer\": {}}},\n",
            sc.hits,
            sc.misses,
            sc.stored,
            sc.evicted,
            sc.bytes_read,
            sc.bytes_written,
            sc.credited_ops,
            sc.credited_passes,
            sc.prefix_layer
        ));
    }

    out.push_str(&format!(
        "  \"msv\": {{\"peak_residency\": {}, \"peak_depth\": {}, \"events\": {}}},\n",
        analysis.peak_residency,
        analysis.peak_depth,
        analysis.residency_curve.len()
    ));

    let trials: Vec<String> = analysis
        .trials
        .iter()
        .map(|t| {
            format!(
                "{{\"depth\": {}, \"hit\": {}, \"passes\": {}, \"ns\": {}}}",
                t.cache_depth, t.hit, t.passes, t.ns
            )
        })
        .collect();
    out.push_str(&format!("  \"trials\": [{}],\n", trials.join(", ")));

    let problems = analysis.cross_check();
    let rendered: Vec<String> =
        problems.iter().map(|p| format!("\"{}\"", json_escape(p))).collect();
    out.push_str(&format!(
        "  \"cross_check\": {{\"ok\": {}, \"problems\": [{}]}}\n",
        problems.is_empty(),
        rendered.join(", ")
    ));
    out.push('}');
    out
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Inline SVG of the residency curve (live MSVs over event time).
fn residency_svg(analysis: &TraceAnalysis) -> String {
    let points = &analysis.residency_curve;
    if points.is_empty() {
        return String::from("<p>no MSV lifecycle events in this trace</p>");
    }
    let (w, h, margin) = (640.0, 160.0, 8.0);
    let max_y = analysis.peak_residency.max(1) as f64;
    let max_x = (points.len().saturating_sub(1)).max(1) as f64;
    let mut path = String::new();
    for (i, p) in points.iter().enumerate() {
        let x = margin + (i as f64 / max_x) * (w - 2.0 * margin);
        let y = h - margin - (p.residency as f64 / max_y) * (h - 2.0 * margin);
        path.push_str(&format!("{}{x:.1},{y:.1} ", if i == 0 { "M" } else { "L" }));
    }
    format!(
        "<svg viewBox=\"0 0 {w} {h}\" role=\"img\" aria-label=\"MSV residency\">\
         <path d=\"{}\" fill=\"none\" stroke=\"#2a7ae2\" stroke-width=\"1.5\"/>\
         <text x=\"{margin}\" y=\"14\" class=\"lbl\">peak {} live MSVs</text></svg>",
        path.trim_end(),
        analysis.peak_residency
    )
}

/// Inline SVG of the cache waterfall (hits/misses stacked per depth).
fn waterfall_svg(analysis: &TraceAnalysis) -> String {
    if analysis.cache_waterfall.is_empty() {
        return String::from("<p>no cache lookups in this trace</p>");
    }
    let (w, h, margin) = (640.0, 160.0, 8.0);
    let bars = analysis.cache_waterfall.len() as f64;
    let max_total =
        analysis.cache_waterfall.values().map(|(h, m)| h + m).max().unwrap_or(1).max(1) as f64;
    let band = (w - 2.0 * margin) / bars;
    let bar_w = (band * 0.7).max(1.0);
    let mut rects = String::new();
    for (i, (depth, (hits, misses))) in analysis.cache_waterfall.iter().enumerate() {
        let x = margin + i as f64 * band + (band - bar_w) / 2.0;
        let hit_h = (*hits as f64 / max_total) * (h - 30.0);
        let miss_h = (*misses as f64 / max_total) * (h - 30.0);
        let hit_y = h - margin - hit_h;
        let miss_y = hit_y - miss_h;
        rects.push_str(&format!(
            "<rect x=\"{x:.1}\" y=\"{hit_y:.1}\" width=\"{bar_w:.1}\" height=\"{hit_h:.1}\" fill=\"#2aa15e\"><title>depth {depth}: {hits} hits</title></rect>\
             <rect x=\"{x:.1}\" y=\"{miss_y:.1}\" width=\"{bar_w:.1}\" height=\"{miss_h:.1}\" fill=\"#d05050\"><title>depth {depth}: {misses} misses</title></rect>"
        ));
    }
    format!(
        "<svg viewBox=\"0 0 {w} {h}\" role=\"img\" aria-label=\"cache waterfall\">{rects}\
         <text x=\"{margin}\" y=\"14\" class=\"lbl\">hits (green) / misses (red) by prefix depth</text></svg>"
    )
}

fn html_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let head: Vec<String> =
        headers.iter().map(|header| format!("<th>{}</th>", html_escape(header))).collect();
    let body: Vec<String> = rows
        .iter()
        .map(|row| {
            let cells: Vec<String> =
                row.iter().map(|cell| format!("<td>{}</td>", html_escape(cell))).collect();
            format!("<tr>{}</tr>", cells.join(""))
        })
        .collect();
    format!(
        "<h2>{}</h2><table><thead><tr>{}</tr></thead><tbody>{}</tbody></table>",
        html_escape(title),
        head.join(""),
        body.join("")
    )
}

/// Render the self-contained single-file HTML report.
pub fn render_html(trace: &Trace, analysis: &TraceAnalysis) -> String {
    let m = &trace.meta;
    let counter_rows: Vec<Vec<String>> =
        analysis.counters.iter().map(|(k, v)| vec![k.clone(), v.to_string()]).collect();
    let class_rows: Vec<Vec<String>> = analysis
        .by_class
        .iter()
        .map(|(c, cell)| vec![c.name().to_owned(), cell.count.to_string(), ms(cell.ns)])
        .collect();
    let layer_rows: Vec<Vec<String>> = analysis
        .by_layer
        .iter()
        .map(|(l, cell)| vec![l.to_string(), cell.count.to_string(), ms(cell.ns)])
        .collect();
    let cache_html = analysis.semantic_cache().map_or(String::new(), |sc| {
        html_table(
            "semantic prefix store",
            &["metric", "value"],
            &[
                vec!["hits".to_owned(), sc.hits.to_string()],
                vec!["misses".to_owned(), sc.misses.to_string()],
                vec!["snapshots written".to_owned(), sc.stored.to_string()],
                vec!["evictions".to_owned(), sc.evicted.to_string()],
                vec!["bytes read".to_owned(), sc.bytes_read.to_string()],
                vec!["bytes written".to_owned(), sc.bytes_written.to_string()],
                vec!["prefix layer".to_owned(), sc.prefix_layer.to_string()],
                vec!["credited passes".to_owned(), sc.credited_passes.to_string()],
            ],
        )
    });
    let problems = analysis.cross_check();
    let check_html = if problems.is_empty() {
        "<p class=\"ok\">cross-check: ok — derived views agree with recorded counters</p>"
            .to_owned()
    } else {
        let items: Vec<String> =
            problems.iter().map(|p| format!("<li>{}</li>", html_escape(p))).collect();
        format!("<p class=\"bad\">cross-check: FAILED</p><ul>{}</ul>", items.join(""))
    };
    format!(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
<title>trace report — {strategy}</title>\
<style>\
body{{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:46rem;color:#222}}\
table{{border-collapse:collapse;margin:.5rem 0}}\
th,td{{border:1px solid #ccc;padding:.2rem .6rem;text-align:right}}\
th:first-child,td:first-child{{text-align:left}}\
h1{{font-size:1.3rem}}h2{{font-size:1.05rem;margin-top:1.4rem}}\
.meta{{color:#555}}.ok{{color:#2aa15e}}.bad{{color:#d05050;font-weight:bold}}\
svg{{width:100%;height:auto;background:#fafafa;border:1px solid #eee}}\
.lbl{{font-size:11px;fill:#555}}\
</style></head><body>\
<h1>trace report</h1>\
<p class=\"meta\">trace v{version} · git {git} · seed {seed} · {qubits} qubits · strategy {strategy}</p>\
{check}\
{counters}\
{classes}\
{layers}\
{cache}\
<h2>MSV residency over time</h2>{residency}\
<h2>cache waterfall</h2>{waterfall}\
</body></html>\n",
        version = m.version,
        git = html_escape(&m.git_rev),
        seed = m.seed,
        qubits = m.qubits,
        strategy = html_escape(&m.strategy),
        check = check_html,
        cache = cache_html,
        counters = html_table("counters", &["name", "value"], &counter_rows),
        classes = html_table("kernels by class", &["class", "applications", "ms"], &class_rows),
        layers =
            html_table("amplitude passes by layer", &["layer", "applications", "ms"], &layer_rows),
        residency = residency_svg(analysis),
        waterfall = waterfall_svg(analysis),
    )
}

/// Render a comparison (`--against`) as a terminal table.
pub fn render_deltas_tty(deltas: &[MetricDelta]) -> String {
    let rows: Vec<Vec<String>> = deltas
        .iter()
        .map(|d| {
            vec![
                d.name.clone(),
                format!("{:.4}", d.before),
                format!("{:.4}", d.after),
                format!("{:+.1}%", d.change_pct),
                d.verdict.name().to_owned(),
            ]
        })
        .collect();
    table("comparison", &["metric", "before", "after", "change", "verdict"], &rows)
}

/// Render a comparison as JSON.
pub fn render_deltas_json(deltas: &[MetricDelta]) -> String {
    let rows: Vec<String> = deltas
        .iter()
        .map(|d| {
            format!(
                "{{\"name\": \"{}\", \"before\": {}, \"after\": {}, \"change_pct\": {:.4}, \"verdict\": \"{}\"}}",
                json_escape(&d.name),
                d.before,
                d.after,
                d.change_pct,
                d.verdict.name()
            )
        })
        .collect();
    format!("{{\"comparison\": [\n  {}\n]}}", rows.join(",\n  "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn sample() -> (Trace, TraceAnalysis) {
        let text = concat!(
            "{\"ev\":\"meta\",\"version\":2,\"git_rev\":\"abc\",\"seed\":1,\"qubits\":4,\"strategy\":\"reuse\"}\n",
            "{\"ev\":\"msv\",\"kind\":\"create\",\"depth\":0,\"residency\":1}\n",
            "{\"ev\":\"cache\",\"depth\":0,\"hit\":false}\n",
            "{\"ev\":\"kernel\",\"phase\":\"reuse/shared\",\"class\":\"dense2\",\"layer\":2,\"count\":1,\"ns\":100}\n",
            "{\"ev\":\"counter\",\"name\":\"trials\",\"delta\":1}\n",
            "{\"ev\":\"counter\",\"name\":\"ops\",\"delta\":3}\n",
            "{\"ev\":\"counter\",\"name\":\"fused_ops\",\"delta\":1}\n",
            "{\"ev\":\"counter\",\"name\":\"amplitude_passes\",\"delta\":1}\n",
        );
        let trace = Trace::parse(text).unwrap();
        let analysis = TraceAnalysis::from_trace(&trace);
        (trace, analysis)
    }

    fn cached_sample() -> (Trace, TraceAnalysis) {
        let text = concat!(
            "{\"ev\":\"meta\",\"version\":2,\"git_rev\":\"abc\",\"seed\":1,\"qubits\":4,\"strategy\":\"reuse-cached\"}\n",
            "{\"ev\":\"counter\",\"name\":\"msvstore.hit\",\"delta\":1}\n",
            "{\"ev\":\"counter\",\"name\":\"msvstore.bytes_read\",\"delta\":284}\n",
            "{\"ev\":\"counter\",\"name\":\"msvstore.credited_ops\",\"delta\":2}\n",
            "{\"ev\":\"counter\",\"name\":\"msvstore.credited_passes\",\"delta\":1}\n",
            "{\"ev\":\"counter\",\"name\":\"msvstore.prefix_layer\",\"delta\":2}\n",
            "{\"ev\":\"msv\",\"kind\":\"create\",\"depth\":0,\"residency\":1}\n",
            "{\"ev\":\"cache\",\"depth\":0,\"hit\":false}\n",
            "{\"ev\":\"kernel\",\"phase\":\"reuse/shared\",\"class\":\"dense2\",\"layer\":2,\"count\":1,\"ns\":100}\n",
            "{\"ev\":\"counter\",\"name\":\"trials\",\"delta\":1}\n",
            "{\"ev\":\"counter\",\"name\":\"ops\",\"delta\":3}\n",
            "{\"ev\":\"counter\",\"name\":\"fused_ops\",\"delta\":2}\n",
            "{\"ev\":\"counter\",\"name\":\"amplitude_passes\",\"delta\":2}\n",
        );
        let trace = Trace::parse(text).unwrap();
        let analysis = TraceAnalysis::from_trace(&trace);
        (trace, analysis)
    }

    #[test]
    fn reports_show_the_semantic_store_only_when_present() {
        let (trace, analysis) = cached_sample();
        let tty = render_tty(&trace, &analysis);
        assert!(tty.contains("semantic prefix store"), "{tty}");
        assert!(tty.contains("50.0% of 2 amplitude passes served from disk"), "{tty}");
        assert!(tty.contains("cross-check: ok"), "{tty}");
        let json = render_json(&trace, &analysis);
        assert!(json.contains("\"semantic_cache\": {\"hits\": 1"), "{json}");
        assert!(json.contains("\"credited_passes\": 1"), "{json}");
        let html = render_html(&trace, &analysis);
        assert!(html.contains("semantic prefix store"), "{html}");

        let (trace, analysis) = sample();
        assert!(!render_tty(&trace, &analysis).contains("semantic prefix store"));
        assert!(!render_json(&trace, &analysis).contains("semantic_cache"));
        assert!(!render_html(&trace, &analysis).contains("semantic prefix store"));
    }

    #[test]
    fn tty_report_shows_all_sections() {
        let (trace, analysis) = sample();
        let out = render_tty(&trace, &analysis);
        for fragment in [
            "== trace report ==",
            "strategy=reuse",
            "counters",
            "amplitude_passes",
            "kernels by class",
            "dense2",
            "cache waterfall",
            "cross-check: ok",
        ] {
            assert!(out.contains(fragment), "missing {fragment:?} in:\n{out}");
        }
    }

    #[test]
    fn json_report_is_parseable_and_consistent() {
        let (trace, analysis) = sample();
        let out = render_json(&trace, &analysis);
        let v = crate::jsonv::Json::parse(&out).unwrap();
        assert_eq!(v.get("counters").unwrap().get("amplitude_passes").unwrap().as_num(), Some(1.0));
        assert_eq!(v.get("cross_check").unwrap().get("ok"), Some(&crate::jsonv::Json::Bool(true)));
        assert_eq!(v.get("meta").unwrap().get("strategy").unwrap().as_str(), Some("reuse"));
    }

    #[test]
    fn html_report_is_self_contained() {
        let (trace, analysis) = sample();
        let out = render_html(&trace, &analysis);
        assert!(out.starts_with("<!DOCTYPE html>"));
        assert!(out.contains("<svg"));
        assert!(out.contains("cross-check: ok"));
        // Self-contained: no external fetches of any kind.
        for banned in ["http://", "https://", "src=", "href="] {
            assert!(!out.contains(banned), "external reference {banned:?} in html");
        }
    }

    #[test]
    fn delta_tables_render_verdicts() {
        use crate::compare::{MetricDelta, Verdict};
        let deltas = vec![MetricDelta {
            name: "reuse_ms".into(),
            before: 100.0,
            after: 203.0,
            change_pct: 103.0,
            verdict: Verdict::Regressed,
        }];
        let tty = render_deltas_tty(&deltas);
        assert!(tty.contains("regressed"), "{tty}");
        let json = render_deltas_json(&deltas);
        let v = crate::jsonv::Json::parse(&json).unwrap();
        assert_eq!(
            v.get("comparison").unwrap().as_arr().unwrap()[0].get("verdict").unwrap().as_str(),
            Some("regressed")
        );
    }
}
