//! Append-only benchmark history and the trailing-window regression gate.
//!
//! History lives in a JSONL file (`results/history.jsonl` by default): one
//! schema-versioned record per `--record` bench run, carrying the git
//! revision, seed, an environment fingerprint and the full per-benchmark
//! metric set. The gate compares the newest record of each source against
//! the trailing window of its predecessors and flags timing metrics that
//! moved past a threshold.

use std::collections::BTreeMap;
use std::io::Write;

use crate::compare::higher_is_better;
use crate::env::EnvFingerprint;
use crate::jsonv::Json;

/// Current history record schema version.
pub const HISTORY_VERSION: u64 = 1;

/// Default trailing-window size for the regression check.
pub const DEFAULT_WINDOW: usize = 5;

/// One recorded benchmark run.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryRecord {
    /// Record schema version ([`HISTORY_VERSION`]).
    pub schema_version: u64,
    /// Wall-clock timestamp, seconds since the Unix epoch.
    pub timestamp: u64,
    /// Short git revision of the recorded build.
    pub git_rev: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Which benchmark produced the record (`"fusion"`, `"telemetry"`, …).
    pub source: String,
    /// Machine fingerprint; timing comparisons require matching ones.
    pub env: EnvFingerprint,
    /// Flattened metric name → value.
    pub metrics: BTreeMap<String, f64>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

fn render_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl HistoryRecord {
    /// Render the record as one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let mut metrics = String::new();
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                metrics.push_str(", ");
            }
            metrics.push_str(&format!("\"{}\": {}", escape(name), render_f64(*value)));
        }
        format!(
            "{{\"schema_version\": {}, \"timestamp\": {}, \"git_rev\": \"{}\", \"seed\": {}, \
             \"source\": \"{}\", \"env\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {}}}, \
             \"metrics\": {{{}}}}}",
            self.schema_version,
            self.timestamp,
            escape(&self.git_rev),
            self.seed,
            escape(&self.source),
            escape(&self.env.os),
            escape(&self.env.arch),
            self.env.cpus,
            metrics,
        )
    }

    /// Parse one JSON history line.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic on malformed lines or unknown schema versions.
    pub fn parse(line: &str) -> Result<HistoryRecord, String> {
        let v = Json::parse(line)?;
        let num = |key: &str| -> Result<f64, String> {
            v.get(key).and_then(Json::as_num).ok_or_else(|| format!("missing number {key:?}"))
        };
        let text = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string {key:?}"))
        };
        let schema_version = num("schema_version")? as u64;
        if schema_version != HISTORY_VERSION {
            return Err(format!(
                "unsupported history schema version {schema_version} (expected {HISTORY_VERSION})"
            ));
        }
        let env = v.get("env").ok_or("missing object \"env\"")?;
        let env = EnvFingerprint {
            os: env.get("os").and_then(Json::as_str).unwrap_or("unknown").to_owned(),
            arch: env.get("arch").and_then(Json::as_str).unwrap_or("unknown").to_owned(),
            cpus: env.get("cpus").and_then(Json::as_num).unwrap_or(0.0) as u64,
        };
        let mut metrics = BTreeMap::new();
        for (name, value) in
            v.get("metrics").and_then(Json::as_obj).ok_or("missing object \"metrics\"")?
        {
            metrics.insert(
                name.clone(),
                value.as_num().ok_or_else(|| format!("non-numeric metric {name:?}"))?,
            );
        }
        Ok(HistoryRecord {
            schema_version,
            timestamp: num("timestamp")? as u64,
            git_rev: text("git_rev")?,
            seed: num("seed")? as u64,
            source: text("source")?,
            env,
            metrics,
        })
    }
}

/// Build a history record from a bench JSON document: the numeric leaves
/// become the metric set; the `benchmark` and `seed` fields (when present)
/// name the source and seed. The git revision and environment fingerprint
/// are taken from the machine doing the recording.
pub fn record_from_bench(doc: &Json, fallback_source: &str, timestamp: u64) -> HistoryRecord {
    let source = doc
        .get("benchmark")
        .and_then(Json::as_str)
        .or_else(|| doc.get("figure").and_then(Json::as_str))
        .unwrap_or(fallback_source)
        .to_owned();
    let seed = doc.get("seed").and_then(Json::as_num).unwrap_or(0.0) as u64;
    let metrics = crate::compare::flatten_metrics(doc)
        .into_iter()
        .filter(|(name, _)| name != "seed" && name != "reps")
        .collect();
    HistoryRecord {
        schema_version: HISTORY_VERSION,
        timestamp,
        git_rev: crate::env::git_rev(),
        seed,
        source,
        env: EnvFingerprint::detect(),
        metrics,
    }
}

/// Append a record to a history file, creating it if needed.
///
/// # Errors
///
/// Returns the I/O error text.
pub fn append(path: &str, record: &HistoryRecord) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("{path}: {e}"))?;
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("{path}: {e}"))?;
    writeln!(file, "{}", record.render()).map_err(|e| format!("{path}: {e}"))
}

/// Load every record from a history file, oldest first.
///
/// # Errors
///
/// Returns the I/O error text or a per-line parse diagnostic.
pub fn load(path: &str) -> Result<Vec<HistoryRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut records = Vec::new();
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        records.push(
            HistoryRecord::parse(line).map_err(|e| format!("{path} line {}: {e}", index + 1))?,
        );
    }
    Ok(records)
}

/// One flagged metric from a regression check.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Benchmark source the metric belongs to.
    pub source: String,
    /// Metric name.
    pub metric: String,
    /// Mean over the trailing baseline window.
    pub baseline: f64,
    /// Newest recorded value.
    pub latest: f64,
    /// Relative movement in percent, signed so positive = worse.
    pub worse_pct: f64,
}

/// Whether a metric is a wall-clock timing (environment-sensitive) one.
fn is_timing(name: &str) -> bool {
    let last = name.rsplit('.').next().unwrap_or(name);
    last.ends_with("_ms") || last.ends_with("_ns") || last.ends_with("_s")
}

/// Compare each source's newest record against the mean of its trailing
/// `window` predecessors; return metrics that got more than
/// `threshold_pct` percent worse.
///
/// Exact (non-timing) metrics are compared across any environment; timing
/// metrics only against predecessors with a matching [`EnvFingerprint`].
/// Sources with no usable baseline are skipped — a fresh history never
/// fails the gate.
pub fn check(records: &[HistoryRecord], window: usize, threshold_pct: f64) -> Vec<Regression> {
    let mut sources: Vec<&str> = records.iter().map(|r| r.source.as_str()).collect();
    sources.sort_unstable();
    sources.dedup();
    let mut regressions = Vec::new();
    for source in sources {
        let runs: Vec<&HistoryRecord> = records.iter().filter(|r| r.source == source).collect();
        let (latest, earlier) = match runs.split_last() {
            Some((latest, earlier)) if !earlier.is_empty() => (*latest, earlier),
            _ => continue,
        };
        for (metric, &value) in &latest.metrics {
            let timing = is_timing(metric);
            let baseline: Vec<f64> = earlier
                .iter()
                .rev()
                .filter(|r| !timing || r.env == latest.env)
                .filter_map(|r| r.metrics.get(metric).copied())
                .take(window)
                .collect();
            if baseline.is_empty() {
                continue;
            }
            let base = baseline.iter().sum::<f64>() / baseline.len() as f64;
            if base == 0.0 {
                continue;
            }
            let change_pct = (value - base) / base * 100.0;
            let worse_pct = if higher_is_better(metric) { -change_pct } else { change_pct };
            if worse_pct > threshold_pct {
                regressions.push(Regression {
                    source: source.to_owned(),
                    metric: metric.clone(),
                    baseline: base,
                    latest: value,
                    worse_pct,
                });
            }
        }
    }
    regressions.sort_by(|a, b| b.worse_pct.partial_cmp(&a.worse_pct).expect("finite pcts"));
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(source: &str, ts: u64, metrics: &[(&str, f64)]) -> HistoryRecord {
        HistoryRecord {
            schema_version: HISTORY_VERSION,
            timestamp: ts,
            git_rev: "abc1234".to_owned(),
            seed: 7,
            source: source.to_owned(),
            env: EnvFingerprint { os: "linux".into(), arch: "x86_64".into(), cpus: 8 },
            metrics: metrics.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
        }
    }

    #[test]
    fn records_round_trip_through_render_and_parse() {
        let rec = record("fusion", 1700000000, &[("rb.reuse_speedup", 1.31), ("rb.ops", 420.0)]);
        let parsed = HistoryRecord::parse(&rec.render()).unwrap();
        assert_eq!(parsed, rec);
    }

    #[test]
    fn unknown_schema_versions_are_rejected() {
        let mut rec = record("fusion", 1, &[]);
        rec.schema_version = 99;
        let err = HistoryRecord::parse(&rec.render()).unwrap_err();
        assert!(err.contains("schema version 99"), "{err}");
    }

    #[test]
    fn clean_repeated_runs_pass_the_gate() {
        let records: Vec<HistoryRecord> = (0..6)
            .map(|i| {
                // ±2% jitter around 100ms: comfortably inside a 5% gate.
                let jitter = [0.0, 1.4, -1.8, 0.9, -0.6, 1.1][i as usize];
                record("telemetry", i, &[("reuse_ms", 100.0 + jitter), ("ops", 420.0)])
            })
            .collect();
        assert_eq!(check(&records, DEFAULT_WINDOW, 5.0), Vec::new());
    }

    #[test]
    fn a_two_x_slowdown_is_flagged() {
        let mut records: Vec<HistoryRecord> =
            (0..5).map(|i| record("telemetry", i, &[("reuse_ms", 100.0)])).collect();
        records.push(record("telemetry", 5, &[("reuse_ms", 200.0)]));
        let flagged = check(&records, DEFAULT_WINDOW, 5.0);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].metric, "reuse_ms");
        assert!((flagged[0].worse_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn higher_is_better_metrics_flag_drops_not_rises() {
        let mut records: Vec<HistoryRecord> =
            (0..4).map(|i| record("fusion", i, &[("rb.reuse_speedup", 1.3)])).collect();
        records.push(record("fusion", 4, &[("rb.reuse_speedup", 0.8)]));
        let flagged = check(&records, DEFAULT_WINDOW, 5.0);
        assert_eq!(flagged.len(), 1);
        assert!(flagged[0].worse_pct > 30.0);
        // A rise in a speedup is an improvement, never flagged.
        let mut records: Vec<HistoryRecord> =
            (0..4).map(|i| record("fusion", i, &[("rb.reuse_speedup", 1.3)])).collect();
        records.push(record("fusion", 4, &[("rb.reuse_speedup", 2.6)]));
        assert_eq!(check(&records, DEFAULT_WINDOW, 5.0), Vec::new());
    }

    #[test]
    fn timing_metrics_ignore_foreign_environments() {
        let mut slow_env = record("telemetry", 0, &[("reuse_ms", 300.0), ("ops", 999.0)]);
        slow_env.env.cpus = 2;
        let records =
            vec![slow_env, record("telemetry", 1, &[("reuse_ms", 100.0), ("ops", 420.0)])];
        // reuse_ms has no same-env baseline → skipped; ops is exact and
        // compares across envs, dropping from 999 to 420 is an improvement.
        assert_eq!(check(&records, DEFAULT_WINDOW, 5.0), Vec::new());
        // But an exact-metric increase across envs IS flagged.
        let mut foreign = record("telemetry", 0, &[("ops", 420.0)]);
        foreign.env.cpus = 2;
        let records = vec![foreign, record("telemetry", 1, &[("ops", 999.0)])];
        let flagged = check(&records, DEFAULT_WINDOW, 5.0);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].metric, "ops");
    }

    #[test]
    fn window_limits_the_baseline() {
        // Old slow records fall outside the window: only the recent fast
        // ones form the baseline, so the new slow run is flagged.
        let mut records: Vec<HistoryRecord> =
            (0..4).map(|i| record("t", i, &[("run_ms", 500.0)])).collect();
        records.extend((4..7).map(|i| record("t", i, &[("run_ms", 100.0)])));
        records.push(record("t", 7, &[("run_ms", 140.0)]));
        let flagged = check(&records, 3, 5.0);
        assert_eq!(flagged.len(), 1);
        assert!((flagged[0].baseline - 100.0).abs() < 1e-9);
        // With a huge window the old records drag the baseline up and the
        // same run passes.
        assert_eq!(check(&records, 50, 5.0), Vec::new());
    }

    #[test]
    fn bench_documents_become_records() {
        let doc = Json::parse(
            r#"{"benchmark": "fusion", "seed": 7, "reps": 5, "rows": [{"name": "rb", "reuse_speedup": 1.3, "ops": 23}]}"#,
        )
        .unwrap();
        let rec = record_from_bench(&doc, "fallback", 1234);
        assert_eq!(rec.source, "fusion");
        assert_eq!(rec.seed, 7);
        assert_eq!(rec.timestamp, 1234);
        assert_eq!(rec.metrics.get("rows.rb.reuse_speedup"), Some(&1.3));
        assert_eq!(rec.metrics.get("rows.rb.ops"), Some(&23.0));
        // Config fields are metadata, not metrics.
        assert!(!rec.metrics.contains_key("seed"));
        assert!(!rec.metrics.contains_key("reps"));
        // Documents without a benchmark name fall back to the file stem.
        let doc = Json::parse(r#"{"x": 1}"#).unwrap();
        assert_eq!(record_from_bench(&doc, "fallback", 0).source, "fallback");
    }

    #[test]
    fn single_record_sources_never_fail() {
        let records = vec![record("fresh", 0, &[("run_ms", 100.0)])];
        assert_eq!(check(&records, DEFAULT_WINDOW, 5.0), Vec::new());
    }
}
