//! Run comparison: diff two traces or two bench documents, with bootstrap
//! confidence intervals deciding whether a metric moved.
//!
//! Counters are exact, so equality decides them directly; timing metrics
//! are noisy, so a metric is only *improved*/*regressed* when the bootstrap
//! confidence interval of the mean difference excludes zero.

use crate::analysis::TraceAnalysis;
use crate::jsonv::Json;
use crate::trace::Trace;

/// Bootstrap resamples per confidence interval.
const BOOTSTRAP_ITERS: usize = 600;

/// Deterministic xorshift64* generator — enough randomness for
/// resampling, zero dependencies, reproducible comparisons.
pub struct Xorshift(u64);

impl Xorshift {
    /// Seeded generator (seed 0 is remapped; xorshift has no zero state).
    pub fn new(seed: u64) -> Self {
        Xorshift(if seed == 0 { 0x9e3779b97f4a7c15 } else { seed })
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform index in `0..n` (`n > 0`).
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// 95% bootstrap confidence interval of `mean(after) - mean(before)`.
/// Returns `(lo, hi)`; degenerate inputs (singleton samples) collapse to a
/// point interval.
pub fn bootstrap_diff_ci(before: &[f64], after: &[f64], seed: u64) -> (f64, f64) {
    if before.is_empty() || after.is_empty() {
        return (0.0, 0.0);
    }
    let mut rng = Xorshift::new(seed);
    let mut diffs = Vec::with_capacity(BOOTSTRAP_ITERS);
    let resample = |rng: &mut Xorshift, from: &[f64]| -> f64 {
        let mut total = 0.0;
        for _ in 0..from.len() {
            total += from[rng.index(from.len())];
        }
        total / from.len() as f64
    };
    for _ in 0..BOOTSTRAP_ITERS {
        diffs.push(resample(&mut rng, after) - resample(&mut rng, before));
    }
    diffs.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let lo = diffs[(BOOTSTRAP_ITERS as f64 * 0.025) as usize];
    let hi = diffs[((BOOTSTRAP_ITERS as f64 * 0.975) as usize).min(BOOTSTRAP_ITERS - 1)];
    (lo, hi)
}

/// Comparison verdict for one metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Moved in the good direction (CI excludes zero).
    Improved,
    /// Moved in the bad direction (CI excludes zero).
    Regressed,
    /// No statistically resolvable movement.
    Unchanged,
}

impl Verdict {
    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::Regressed => "regressed",
            Verdict::Unchanged => "unchanged",
        }
    }
}

/// One compared metric.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDelta {
    /// Metric name (dotted path for bench documents).
    pub name: String,
    /// Mean of the "before" samples.
    pub before: f64,
    /// Mean of the "after" samples.
    pub after: f64,
    /// Relative change in percent (`0` when before is zero).
    pub change_pct: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// Whether larger values of this metric are better. Heuristic over the
/// repo's metric vocabulary: speedups, reductions, ratios-of-win and hit
/// counts rise when things improve; times, ops, passes and misses fall.
pub fn higher_is_better(name: &str) -> bool {
    let last = name.rsplit('.').next().unwrap_or(name);
    ["speedup", "reduction", "ratio", "hit", "hits", "reused"]
        .iter()
        .any(|frag| last.contains(frag))
}

/// Compare one metric from its sample sets.
pub fn compare_samples(name: &str, before: &[f64], after: &[f64], seed: u64) -> MetricDelta {
    let b = mean(before);
    let a = mean(after);
    let change_pct = if b == 0.0 { 0.0 } else { (a - b) / b * 100.0 };
    let verdict = if (b - a).abs() < f64::EPSILON * b.abs().max(1.0) {
        Verdict::Unchanged
    } else {
        let (lo, hi) = bootstrap_diff_ci(before, after, seed);
        if lo <= 0.0 && hi >= 0.0 {
            Verdict::Unchanged
        } else {
            let went_up = a > b;
            if went_up == higher_is_better(name) {
                Verdict::Improved
            } else {
                Verdict::Regressed
            }
        }
    };
    MetricDelta { name: name.to_owned(), before: b, after: a, change_pct, verdict }
}

/// Diff two traces metric-by-metric: every counter, peak residency, cache
/// totals, and total kernel time.
pub fn compare_traces(before: &Trace, after: &Trace) -> Vec<MetricDelta> {
    let a = TraceAnalysis::from_trace(before);
    let b = TraceAnalysis::from_trace(after);
    let mut names: Vec<&String> = a.counters.keys().chain(b.counters.keys()).collect();
    names.sort();
    names.dedup();
    let mut out = Vec::new();
    for (index, name) in names.into_iter().enumerate() {
        out.push(compare_samples(
            name,
            &[a.counter(name) as f64],
            &[b.counter(name) as f64],
            7 + index as u64,
        ));
    }
    out.push(compare_samples(
        "peak_residency",
        &[a.peak_residency as f64],
        &[b.peak_residency as f64],
        101,
    ));
    let (ha, ma) = a.cache_totals();
    let (hb, mb) = b.cache_totals();
    out.push(compare_samples("cache.hits", &[ha as f64], &[hb as f64], 102));
    out.push(compare_samples("cache.misses", &[ma as f64], &[mb as f64], 103));
    out.push(compare_samples(
        "kernel_ns",
        &[a.total_kernel_ns() as f64],
        &[b.total_kernel_ns() as f64],
        104,
    ));
    out
}

/// Flatten the numeric leaves of a bench document into `(path, value)`
/// pairs. Array elements named by a `name`/`circuit`/`benchmark` field use
/// that name as their path component, so rows align across documents even
/// if reordered.
pub fn flatten_metrics(doc: &Json) -> Vec<(String, f64)> {
    fn label(value: &Json) -> Option<String> {
        for key in ["name", "circuit", "benchmark"] {
            if let Some(s) = value.get(key).and_then(Json::as_str) {
                return Some(s.to_owned());
            }
        }
        None
    }
    fn walk(prefix: &str, value: &Json, out: &mut Vec<(String, f64)>) {
        match value {
            Json::Num(n) => out.push((prefix.to_owned(), *n)),
            Json::Obj(pairs) => {
                for (key, v) in pairs {
                    let path =
                        if prefix.is_empty() { key.clone() } else { format!("{prefix}.{key}") };
                    walk(&path, v, out);
                }
            }
            Json::Arr(items) => {
                for (index, item) in items.iter().enumerate() {
                    let component = label(item).unwrap_or_else(|| index.to_string());
                    let path =
                        if prefix.is_empty() { component } else { format!("{prefix}.{component}") };
                    walk(&path, item, out);
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk("", doc, &mut out);
    out
}

/// Diff two bench JSON documents over their shared numeric leaves.
pub fn compare_bench_json(before: &Json, after: &Json) -> Vec<MetricDelta> {
    let b: Vec<(String, f64)> = flatten_metrics(before);
    let a: Vec<(String, f64)> = flatten_metrics(after);
    let mut out = Vec::new();
    for (index, (name, b_val)) in b.iter().enumerate() {
        if let Some((_, a_val)) = a.iter().find(|(n, _)| n == name) {
            out.push(compare_samples(name, &[*b_val], &[*a_val], 7 + index as u64));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jittered(base: f64, n: usize, spread: f64, seed: u64) -> Vec<f64> {
        let mut rng = Xorshift::new(seed);
        (0..n).map(|_| base + spread * ((rng.next_u64() % 1000) as f64 / 1000.0 - 0.5)).collect()
    }

    #[test]
    fn identical_samples_are_unchanged() {
        let s = jittered(100.0, 30, 4.0, 3);
        let delta = compare_samples("elapsed_ms", &s, &s, 9);
        assert_eq!(delta.verdict, Verdict::Unchanged);
        assert_eq!(delta.change_pct, 0.0);
    }

    #[test]
    fn overlapping_noise_is_unchanged() {
        let before = jittered(100.0, 25, 10.0, 3);
        let after = jittered(100.4, 25, 10.0, 17);
        assert_eq!(compare_samples("elapsed_ms", &before, &after, 5).verdict, Verdict::Unchanged);
    }

    #[test]
    fn a_two_x_shift_is_flagged_with_direction() {
        let before = jittered(100.0, 25, 6.0, 3);
        let after = jittered(200.0, 25, 6.0, 17);
        // Time doubled: regression.
        let delta = compare_samples("elapsed_ms", &before, &after, 5);
        assert_eq!(delta.verdict, Verdict::Regressed);
        assert!((delta.change_pct - 100.0).abs() < 15.0, "{}", delta.change_pct);
        // Speedup doubled: improvement.
        let delta = compare_samples("reuse_speedup", &before, &after, 5);
        assert_eq!(delta.verdict, Verdict::Improved);
        // And the reverse direction flips the verdicts.
        assert_eq!(compare_samples("elapsed_ms", &after, &before, 5).verdict, Verdict::Improved);
        assert_eq!(
            compare_samples("reuse_speedup", &after, &before, 5).verdict,
            Verdict::Regressed
        );
    }

    #[test]
    fn direction_heuristic_reads_the_last_component() {
        assert!(higher_is_better("rows.rb.reuse_speedup"));
        assert!(higher_is_better("pass_reduction"));
        assert!(higher_is_better("cache.hits"));
        assert!(!higher_is_better("reuse_fused_ms"));
        assert!(!higher_is_better("ops"));
        assert!(!higher_is_better("cache.misses"));
    }

    #[test]
    fn bench_documents_diff_over_shared_leaves() {
        let before = Json::parse(
            r#"{"benchmark": "fusion", "rows": [{"name": "rb", "reuse_speedup": 0.77, "ops": 100}]}"#,
        )
        .unwrap();
        let after = Json::parse(
            r#"{"benchmark": "fusion", "rows": [{"name": "rb", "reuse_speedup": 1.31, "ops": 100}]}"#,
        )
        .unwrap();
        let deltas = compare_bench_json(&before, &after);
        let speedup = deltas.iter().find(|d| d.name == "rows.rb.reuse_speedup").unwrap();
        assert_eq!(speedup.verdict, Verdict::Improved);
        let ops = deltas.iter().find(|d| d.name == "rows.rb.ops").unwrap();
        assert_eq!(ops.verdict, Verdict::Unchanged);
    }

    #[test]
    fn bootstrap_ci_brackets_a_known_shift() {
        let before = jittered(50.0, 40, 2.0, 11);
        let after = jittered(60.0, 40, 2.0, 23);
        let (lo, hi) = bootstrap_diff_ci(&before, &after, 31);
        assert!(lo > 5.0 && hi < 15.0, "({lo}, {hi})");
    }
}
