//! Derived views over a parsed trace: the analysis engine.
//!
//! Everything here is computed from the event stream alone, then
//! cross-checked against the executor's own end-of-run counters — the same
//! exactness contract `tests/telemetry_matrix.rs` pins for the aggregating
//! recorder, applied to the trace file.

use std::collections::BTreeMap;

use qsim_telemetry::{KernelClass, MsvEvent};

use crate::trace::{Trace, TraceEvent};

/// Aggregated kernel work in one cell of an attribution table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCell {
    /// Kernel applications.
    pub count: u64,
    /// Total nanoseconds.
    pub ns: u64,
}

/// One trial's slice of the run, split at its prefix-cache lookup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrialSlice {
    /// Depth the trial's cache lookup resolved at.
    pub cache_depth: u64,
    /// Whether the lookup reused a cached frontier.
    pub hit: bool,
    /// Amplitude passes performed for this trial (kernel applications
    /// between its lookup and the next).
    pub passes: u64,
    /// Nanoseconds of kernel work in the slice.
    pub ns: u64,
}

/// A point on the MSV residency curve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResidencyPoint {
    /// Ordinal of the MSV event (event-stream time).
    pub seq: u64,
    /// Lifecycle event kind.
    pub kind: MsvEvent,
    /// Live MSVs after the event.
    pub residency: u64,
}

/// The semantic prefix store's footprint in one trace, derived from its
/// `msvstore.*` counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SemanticCacheView {
    /// Runs served from a stored prefix snapshot.
    pub hits: u64,
    /// Runs that computed the prefix and (attempted to) publish it.
    pub misses: u64,
    /// Snapshots actually written.
    pub stored: u64,
    /// Entries evicted by the size budget.
    pub evicted: u64,
    /// Snapshot bytes read on hits.
    pub bytes_read: u64,
    /// Snapshot bytes written on misses.
    pub bytes_written: u64,
    /// Basic operations credited without execution (the `ops` metric).
    pub credited_ops: u64,
    /// Amplitude passes credited without execution.
    pub credited_passes: u64,
    /// Cacheable prefix layer of the (last) keyed run.
    pub prefix_layer: u64,
}

impl SemanticCacheView {
    /// Total store consultations.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of the run's amplitude passes served from disk instead of
    /// recomputed, given the end-of-run `amplitude_passes` counter.
    pub fn pass_savings(&self, amplitude_passes: u64) -> f64 {
        self.credited_passes as f64 / amplitude_passes.max(1) as f64
    }
}

/// The analysis engine's digest of one trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceAnalysis {
    /// Final value of every counter.
    pub counters: BTreeMap<String, u64>,
    /// Kernel work per `(phase, class)`.
    pub kernels: BTreeMap<(String, KernelClass), KernelCell>,
    /// Kernel work per class (summed over phases).
    pub by_class: BTreeMap<KernelClass, KernelCell>,
    /// Kernel work per circuit layer — the per-layer amplitude-pass
    /// attribution (fused segments land on their end layer).
    pub by_layer: BTreeMap<u64, KernelCell>,
    /// Span totals per path: `(count, total_ns)`.
    pub spans: BTreeMap<String, (u64, u64)>,
    /// MSV residency over event-stream time.
    pub residency_curve: Vec<ResidencyPoint>,
    /// Peak live MSVs.
    pub peak_residency: u64,
    /// Deepest trie depth any MSV reached.
    pub peak_depth: u64,
    /// Count of each MSV lifecycle event kind.
    pub msv_counts: BTreeMap<MsvEvent, u64>,
    /// Cache hit/miss waterfall keyed by prefix depth: `(hits, misses)`.
    pub cache_waterfall: BTreeMap<u64, (u64, u64)>,
    /// Per-trial timeline, in processing (reordered) order.
    pub trials: Vec<TrialSlice>,
    /// Number of heartbeat events in the trace.
    pub heartbeats: u64,
    /// Sum of heartbeat `completed` deltas — the trials the heartbeats
    /// claim finished.
    pub heartbeat_completed: u64,
    /// Largest `resident` gauge any heartbeat reported.
    pub peak_heartbeat_resident: u64,
}

impl TraceAnalysis {
    /// Analyze a parsed trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut a = TraceAnalysis::default();
        let mut msv_seq = 0u64;
        for event in &trace.events {
            match event {
                TraceEvent::Counter { name, delta } => {
                    let slot = a.counters.entry(name.clone()).or_insert(0);
                    *slot = slot.saturating_add(*delta);
                }
                TraceEvent::Kernel { phase, class, layer, count, ns } => {
                    for cell in [
                        a.kernels.entry((phase.clone(), *class)).or_default(),
                        a.by_class.entry(*class).or_default(),
                        a.by_layer.entry(*layer).or_default(),
                    ] {
                        cell.count = cell.count.saturating_add(*count);
                        cell.ns = cell.ns.saturating_add(*ns);
                    }
                    if let Some(t) = a.trials.last_mut() {
                        t.passes += count;
                        t.ns += ns;
                    }
                }
                TraceEvent::Span { path, start_ns, end_ns } => {
                    let slot = a.spans.entry(path.clone()).or_insert((0, 0));
                    slot.0 += 1;
                    slot.1 = slot.1.saturating_add(end_ns.saturating_sub(*start_ns));
                }
                TraceEvent::Msv { kind, depth, residency } => {
                    a.residency_curve.push(ResidencyPoint {
                        seq: msv_seq,
                        kind: *kind,
                        residency: *residency,
                    });
                    msv_seq += 1;
                    a.peak_residency = a.peak_residency.max(*residency);
                    a.peak_depth = a.peak_depth.max(*depth);
                    *a.msv_counts.entry(*kind).or_insert(0) += 1;
                }
                TraceEvent::Cache { depth, hit } => {
                    let slot = a.cache_waterfall.entry(*depth).or_insert((0, 0));
                    if *hit {
                        slot.0 += 1;
                    } else {
                        slot.1 += 1;
                    }
                    a.trials.push(TrialSlice { cache_depth: *depth, hit: *hit, passes: 0, ns: 0 });
                }
                TraceEvent::Heartbeat { completed, resident, .. } => {
                    a.heartbeats += 1;
                    a.heartbeat_completed = a.heartbeat_completed.saturating_add(*completed);
                    a.peak_heartbeat_resident = a.peak_heartbeat_resident.max(*resident);
                }
            }
        }
        a
    }

    /// A counter's final value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total kernel applications across all phases and classes — one per
    /// amplitude pass on a fused run.
    pub fn total_kernel_count(&self) -> u64 {
        self.by_class.values().map(|c| c.count).sum()
    }

    /// Total kernel nanoseconds across all cells.
    pub fn total_kernel_ns(&self) -> u64 {
        self.by_class.values().map(|c| c.ns).sum()
    }

    /// Total cache lookups `(hits, misses)`.
    pub fn cache_totals(&self) -> (u64, u64) {
        self.cache_waterfall.values().fold((0, 0), |(h, m), &(hh, mm)| (h + hh, m + mm))
    }

    /// The semantic prefix store's footprint in this trace; `None` when
    /// the run never consulted a persistent store.
    pub fn semantic_cache(&self) -> Option<SemanticCacheView> {
        if !self.counters.keys().any(|k| k.starts_with("msvstore.")) {
            return None;
        }
        Some(SemanticCacheView {
            hits: self.counter("msvstore.hit"),
            misses: self.counter("msvstore.miss"),
            stored: self.counter("msvstore.store"),
            evicted: self.counter("msvstore.evict"),
            bytes_read: self.counter("msvstore.bytes_read"),
            bytes_written: self.counter("msvstore.bytes_written"),
            credited_ops: self.counter("msvstore.credited_ops"),
            credited_passes: self.counter("msvstore.credited_passes"),
            prefix_layer: self.counter("msvstore.prefix_layer"),
        })
    }

    /// Cross-check the derived views against the executor's end-of-run
    /// counters: the exactness contract. Returns one message per
    /// discrepancy (empty = consistent). Checks that need reuse-style
    /// events (cache lookups, MSV lifecycle) apply only when such events
    /// are present, so baseline traces validate too.
    pub fn cross_check(&self) -> Vec<String> {
        fn check(problems: &mut Vec<String>, name: &str, got: u64, want: u64) {
            if got != want {
                problems.push(format!("{name}: derived {got} != recorded {want}"));
            }
        }
        let mut problems = Vec::new();
        // A semantic-store hit pre-credits the skipped prefix work into
        // the end-of-run counters without emitting kernel events; the
        // credit counter closes that gap exactly.
        let credited = self.counter("msvstore.credited_passes");
        check(
            &mut problems,
            "total kernel applications plus store credit vs amplitude_passes",
            self.total_kernel_count() + credited,
            self.counter("amplitude_passes"),
        );
        let error_passes = self.by_class.get(&KernelClass::Error).map_or(0, |c| c.count);
        check(
            &mut problems,
            "gate kernel applications plus store credit vs fused_ops",
            self.total_kernel_count() - error_passes + credited,
            self.counter("fused_ops"),
        );
        if self.counter("ops") < self.counter("amplitude_passes") {
            problems.push(format!(
                "ops ({}) below amplitude_passes ({}): fusion cannot add passes",
                self.counter("ops"),
                self.counter("amplitude_passes")
            ));
        }
        let (hits, misses) = self.cache_totals();
        if hits + misses > 0 {
            check(&mut problems, "cache lookups vs trials", hits + misses, self.counter("trials"));
            check(
                &mut problems,
                "trial slices vs trials",
                self.trials.len() as u64,
                self.counter("trials"),
            );
            let per_trial: u64 = self.trials.iter().map(|t| t.passes).sum();
            check(
                &mut problems,
                "per-trial passes plus store credit vs amplitude_passes",
                per_trial + credited,
                self.counter("amplitude_passes"),
            );
        }
        // Batched sweeps bound the passes they account for: each sweep
        // covers at least one state and at most the widest frontier, so
        // fused_ops (one per state per sweep) must land inside
        // [batch_sweeps, batch_sweeps * batch_width_max].
        let sweeps = self.counter("batch_sweeps");
        if sweeps > 0 {
            let width_max = self.counter("batch_width_max");
            let fused = self.counter("fused_ops");
            if fused < sweeps || fused > sweeps.saturating_mul(width_max) {
                problems.push(format!(
                    "fused_ops ({fused}) outside batched bounds [{sweeps}, {}]",
                    sweeps.saturating_mul(width_max)
                ));
            }
        }
        // Heartbeats claim one completed trial per beat; when present they
        // must account for exactly the recorded trial count.
        if self.heartbeats > 0 {
            check(
                &mut problems,
                "heartbeat completed deltas vs trials",
                self.heartbeat_completed,
                self.counter("trials"),
            );
        }
        if let Some(sc) = self.semantic_cache() {
            if sc.hits == 0 && sc.credited_passes != 0 {
                problems
                    .push(format!("store credited {} passes without a hit", sc.credited_passes));
            }
            if sc.stored > sc.misses {
                problems.push(format!(
                    "store published {} snapshots on only {} misses",
                    sc.stored, sc.misses
                ));
            }
            if sc.hits == 0 && sc.bytes_read != 0 {
                problems.push(format!("store read {} bytes without a hit", sc.bytes_read));
            }
        }
        if !self.residency_curve.is_empty() {
            let creates = self.msv_counts.get(&MsvEvent::Create).copied().unwrap_or(0);
            let forks = self.msv_counts.get(&MsvEvent::Fork).copied().unwrap_or(0);
            let drops = self.msv_counts.get(&MsvEvent::Drop).copied().unwrap_or(0);
            // One root creation per cold lookup: exactly 1 sequentially,
            // one per worker on parallel runs.
            if hits + misses > 0 {
                check(&mut problems, "root creations vs cold lookups", creates, misses);
            }
            check(&mut problems, "forks vs drops", forks, drops);
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn sample_trace() -> Trace {
        let text = concat!(
            "{\"ev\":\"meta\",\"version\":2,\"git_rev\":\"abc\",\"seed\":1,\"qubits\":4,\"strategy\":\"reuse\"}\n",
            "{\"ev\":\"msv\",\"kind\":\"create\",\"depth\":0,\"residency\":1}\n",
            "{\"ev\":\"cache\",\"depth\":0,\"hit\":false}\n",
            "{\"ev\":\"kernel\",\"phase\":\"reuse/shared\",\"class\":\"dense2\",\"layer\":2,\"count\":1,\"ns\":100}\n",
            "{\"ev\":\"kernel\",\"phase\":\"reuse/shared\",\"class\":\"error\",\"layer\":2,\"count\":1,\"ns\":10}\n",
            "{\"ev\":\"cache\",\"depth\":1,\"hit\":true}\n",
            "{\"ev\":\"msv\",\"kind\":\"reuse\",\"depth\":1,\"residency\":1}\n",
            "{\"ev\":\"heartbeat\",\"completed\":1,\"depth\":2,\"resident\":256}\n",
            "{\"ev\":\"kernel\",\"phase\":\"reuse/remainder\",\"class\":\"cx\",\"layer\":5,\"count\":1,\"ns\":30}\n",
            "{\"ev\":\"heartbeat\",\"completed\":1,\"depth\":5,\"resident\":512}\n",
            "{\"ev\":\"counter\",\"name\":\"trials\",\"delta\":2}\n",
            "{\"ev\":\"counter\",\"name\":\"ops\",\"delta\":5}\n",
            "{\"ev\":\"counter\",\"name\":\"fused_ops\",\"delta\":2}\n",
            "{\"ev\":\"counter\",\"name\":\"amplitude_passes\",\"delta\":3}\n",
            "{\"ev\":\"span\",\"path\":\"run/reuse\",\"start_ns\":0,\"end_ns\":400}\n",
        );
        Trace::parse(text).unwrap()
    }

    #[test]
    fn derived_views_attribute_work() {
        let a = TraceAnalysis::from_trace(&sample_trace());
        assert_eq!(a.total_kernel_count(), 3);
        assert_eq!(a.total_kernel_ns(), 140);
        assert_eq!(a.by_layer[&2].count, 2);
        assert_eq!(a.by_layer[&5].count, 1);
        assert_eq!(a.by_class[&KernelClass::Error].count, 1);
        assert_eq!(a.cache_waterfall[&0], (0, 1));
        assert_eq!(a.cache_waterfall[&1], (1, 0));
        assert_eq!(a.trials.len(), 2);
        assert_eq!(a.trials[0].passes, 2);
        assert_eq!(a.trials[1].passes, 1);
        assert!(a.trials[1].hit);
        assert_eq!(a.spans["run/reuse"], (1, 400));
        assert_eq!(a.peak_residency, 1);
        assert_eq!(a.residency_curve.len(), 2);
        assert_eq!(a.heartbeats, 2);
        assert_eq!(a.heartbeat_completed, 2);
        assert_eq!(a.peak_heartbeat_resident, 512);
    }

    #[test]
    fn cross_check_pins_heartbeat_shortfall() {
        // Drop one heartbeat: the completed sum (1) no longer covers the
        // recorded two trials.
        let mut broken = sample_trace();
        let at = broken
            .events
            .iter()
            .position(|e| matches!(e, TraceEvent::Heartbeat { .. }))
            .expect("sample has heartbeats");
        broken.events.remove(at);
        let problems = TraceAnalysis::from_trace(&broken).cross_check();
        assert!(
            problems.iter().any(|p| p.contains("heartbeat completed")),
            "expected a heartbeat discrepancy, got {problems:?}"
        );
    }

    fn store_hit_trace() -> &'static str {
        concat!(
            "{\"ev\":\"meta\",\"version\":2,\"git_rev\":\"abc\",\"seed\":1,\"qubits\":4,\"strategy\":\"reuse-cached\"}\n",
            "{\"ev\":\"counter\",\"name\":\"msvstore.hit\",\"delta\":1}\n",
            "{\"ev\":\"counter\",\"name\":\"msvstore.bytes_read\",\"delta\":284}\n",
            "{\"ev\":\"counter\",\"name\":\"msvstore.credited_ops\",\"delta\":4}\n",
            "{\"ev\":\"counter\",\"name\":\"msvstore.credited_passes\",\"delta\":2}\n",
            "{\"ev\":\"counter\",\"name\":\"msvstore.prefix_layer\",\"delta\":3}\n",
            "{\"ev\":\"msv\",\"kind\":\"create\",\"depth\":0,\"residency\":1}\n",
            "{\"ev\":\"cache\",\"depth\":0,\"hit\":false}\n",
            "{\"ev\":\"kernel\",\"phase\":\"reuse/shared\",\"class\":\"dense2\",\"layer\":4,\"count\":1,\"ns\":100}\n",
            "{\"ev\":\"kernel\",\"phase\":\"reuse/shared\",\"class\":\"error\",\"layer\":4,\"count\":1,\"ns\":10}\n",
            "{\"ev\":\"cache\",\"depth\":1,\"hit\":true}\n",
            "{\"ev\":\"kernel\",\"phase\":\"reuse/remainder\",\"class\":\"cx\",\"layer\":5,\"count\":1,\"ns\":30}\n",
            "{\"ev\":\"counter\",\"name\":\"trials\",\"delta\":2}\n",
            "{\"ev\":\"counter\",\"name\":\"ops\",\"delta\":10}\n",
            "{\"ev\":\"counter\",\"name\":\"fused_ops\",\"delta\":4}\n",
            "{\"ev\":\"counter\",\"name\":\"amplitude_passes\",\"delta\":5}\n",
        )
    }

    #[test]
    fn cross_check_credits_semantic_store_hits_exactly() {
        let a = TraceAnalysis::from_trace(&Trace::parse(store_hit_trace()).unwrap());
        assert_eq!(a.cross_check(), Vec::<String>::new(), "credited run must reconcile");
        let sc = a.semantic_cache().expect("msvstore counters present");
        assert_eq!((sc.hits, sc.misses, sc.stored), (1, 0, 0));
        assert_eq!((sc.credited_ops, sc.credited_passes, sc.prefix_layer), (4, 2, 3));
        assert_eq!(sc.lookups(), 1);
        assert!((sc.pass_savings(5) - 0.4).abs() < 1e-12);
        // A credit without a hit must be flagged.
        let broken = store_hit_trace().replace("msvstore.hit", "msvstore.evict");
        let a = TraceAnalysis::from_trace(&Trace::parse(&broken).unwrap());
        assert!(
            a.cross_check().iter().any(|p| p.contains("without a hit")),
            "{:?}",
            a.cross_check()
        );
    }

    #[test]
    fn cross_check_bounds_fused_ops_by_batched_sweeps() {
        // 3 sweeps at frontier width <= 4 performing 9 fused ops: inside
        // the [3, 12] envelope, so the trace reconciles.
        let base = concat!(
            "{\"ev\":\"meta\",\"version\":2,\"git_rev\":\"abc\",\"seed\":1,\"qubits\":4,\"strategy\":\"tree\"}\n",
            "{\"ev\":\"kernel\",\"phase\":\"tree/sweep\",\"class\":\"dense2\",\"layer\":2,\"count\":9,\"ns\":90}\n",
            "{\"ev\":\"counter\",\"name\":\"trials\",\"delta\":4}\n",
            "{\"ev\":\"counter\",\"name\":\"ops\",\"delta\":9}\n",
            "{\"ev\":\"counter\",\"name\":\"fused_ops\",\"delta\":9}\n",
            "{\"ev\":\"counter\",\"name\":\"amplitude_passes\",\"delta\":9}\n",
            "{\"ev\":\"counter\",\"name\":\"batch_sweeps\",\"delta\":3}\n",
            "{\"ev\":\"counter\",\"name\":\"batch_width_max\",\"delta\":4}\n",
        );
        let a = TraceAnalysis::from_trace(&Trace::parse(base).unwrap());
        assert_eq!(a.cross_check(), Vec::<String>::new(), "batched run must reconcile");
        // Claiming a narrower widest frontier (2) caps the envelope at
        // 3 * 2 = 6 < 9 fused ops: the law must flag it.
        let broken =
            base.replace("\"batch_width_max\",\"delta\":4", "\"batch_width_max\",\"delta\":2");
        let problems = TraceAnalysis::from_trace(&Trace::parse(&broken).unwrap()).cross_check();
        assert!(
            problems.iter().any(|p| p.contains("batched bounds")),
            "expected a batched-bounds discrepancy, got {problems:?}"
        );
    }

    #[test]
    fn traces_without_store_counters_have_no_semantic_view() {
        let a = TraceAnalysis::from_trace(&sample_trace());
        assert_eq!(a.semantic_cache(), None);
    }

    #[test]
    fn cross_check_passes_on_consistent_trace_and_pins_breakage() {
        let trace = sample_trace();
        let a = TraceAnalysis::from_trace(&trace);
        assert_eq!(a.cross_check(), Vec::<String>::new());
        // Corrupt the recorded pass counter: the check must notice.
        let mut broken = trace.clone();
        for ev in &mut broken.events {
            if let TraceEvent::Counter { name, delta } = ev {
                if name == "amplitude_passes" {
                    *delta += 1;
                }
            }
        }
        let problems = TraceAnalysis::from_trace(&broken).cross_check();
        assert!(
            problems.iter().any(|p| p.contains("amplitude_passes")),
            "expected a discrepancy, got {problems:?}"
        );
    }
}
