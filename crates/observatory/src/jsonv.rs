//! A small recursive JSON reader.
//!
//! The telemetry crate's schema validator deliberately parses only the flat
//! objects its own recorder emits; the observatory also reads *bench* JSON
//! documents (nested objects, arrays, floats, nulls), so it carries its own
//! complete reader. Object fields keep insertion order — bench documents
//! are rendered with a deliberate field order and reports should preserve
//! it.

/// A parsed JSON value. Objects are ordered `(key, value)` pairs.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; bench metrics are all representable).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a byte-offset diagnostic on malformed input or trailing
    /// content.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), at: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("offset {}: trailing content", p.at));
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's pairs, if it is one.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.at).is_some_and(|b| b.is_ascii_whitespace()) {
            self.at += 1;
        }
    }

    fn err(&self, what: &str) -> String {
        format!("offset {}: {what}", self.at)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.bytes.get(self.at) {
            Some(&b) if b == want => {
                self.at += 1;
                Ok(())
            }
            Some(&b) => {
                Err(self.err(&format!("expected '{}', found '{}'", want as char, b as char)))
            }
            None => Err(self.err(&format!("expected '{}', found end of input", want as char))),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.at) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b.is_ascii_digit() || *b == b'-' => self.number(),
            Some(&b) => Err(self.err(&format!("unexpected value start '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("bad literal (expected {word})")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.bytes.get(self.at) == Some(&b'-') {
            self.at += 1;
        }
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("offset {start}: bad number {text:?}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.at) {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.bytes.get(self.at) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b'}') {
            self.at += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            pairs.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "e": true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_num(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v.as_obj().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Json::parse(r#""éA""#).unwrap();
        assert_eq!(v.as_str(), Some("éA"));
    }

    #[test]
    fn rejects_malformed_input() {
        for (doc, fragment) in [
            ("", "end of input"),
            ("{", "end of input"),
            ("[1,]", "unexpected value start"),
            ("{\"a\":1,\"a\":2}", "duplicate key"),
            ("nul", "bad literal"),
            ("1 2", "trailing content"),
            ("\"abc", "unterminated string"),
        ] {
            let err = Json::parse(doc).expect_err(doc);
            assert!(err.contains(fragment), "{doc}: got {err:?}, wanted {fragment:?}");
        }
    }

    #[test]
    fn round_trips_a_real_bench_shape() {
        let doc = r#"{"benchmark": "fusion", "seed": 7, "rows": [{"name": "rb", "reuse_speedup": 0.77}]}"#;
        let v = Json::parse(doc).unwrap();
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("reuse_speedup").unwrap().as_num(), Some(0.77));
    }
}
