//! Trace observatory: offline analysis over the telemetry plane.
//!
//! The runtime telemetry crate records what happened; this crate explains
//! it. It loads schema-validated JSONL traces and computes derived views —
//! per-trial timelines, MSV residency curves, cache waterfalls, per-layer
//! amplitude-pass attribution — cross-checked for exact agreement with the
//! executors' own counters. On top of that sit run comparison with
//! bootstrap confidence intervals, an append-only benchmark history with a
//! trailing-window regression gate, and report rendering (TTY, JSON, and
//! self-contained HTML). The [`live`] module reads the snapshots the
//! runtime's live plane publishes (`live.json`) and reconciles final
//! snapshots bitwise against executor counters.
//!
//! Everything is dependency-free by design: the crate carries its own
//! small JSON reader ([`jsonv`]) and RNG ([`compare::Xorshift`]).

#![warn(missing_docs)]

pub mod analysis;
pub mod compare;
pub mod env;
pub mod history;
pub mod jsonv;
pub mod live;
pub mod report;
pub mod trace;

pub use analysis::{KernelCell, ResidencyPoint, SemanticCacheView, TraceAnalysis, TrialSlice};
pub use compare::{
    bootstrap_diff_ci, compare_bench_json, compare_samples, compare_traces, flatten_metrics,
    MetricDelta, Verdict,
};
pub use env::{git_rev, EnvFingerprint};
pub use history::{
    check, record_from_bench, HistoryRecord, Regression, DEFAULT_WINDOW, HISTORY_VERSION,
};
pub use jsonv::Json;
pub use live::{ExpectedStats, LiveView, LIVE_VIEW_VERSION};
pub use report::{render_deltas_json, render_deltas_tty, render_html, render_json, render_tty};
pub use trace::{Trace, TraceEvent, TraceMetaInfo};
