//! Build/run environment identification: git revision and a coarse machine
//! fingerprint. History regression checks only trust timing comparisons
//! between records whose fingerprints match.

/// The short git revision of the working tree, or `"unknown"` outside a
/// repository (or without a `git` binary).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// A coarse machine fingerprint. Deliberately minimal: enough to refuse
/// cross-machine timing comparisons, not enough to deanonymize a record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnvFingerprint {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available parallelism (0 when undetectable).
    pub cpus: u64,
}

impl EnvFingerprint {
    /// Fingerprint the current machine.
    pub fn detect() -> Self {
        EnvFingerprint {
            os: std::env::consts::OS.to_owned(),
            arch: std::env::consts::ARCH.to_owned(),
            cpus: std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_detects_something() {
        let fp = EnvFingerprint::detect();
        assert!(!fp.os.is_empty());
        assert!(!fp.arch.is_empty());
        assert!(fp.cpus > 0);
    }

    #[test]
    fn git_rev_is_nonempty() {
        // In this repo it is a short hash; outside one it is "unknown".
        assert!(!git_rev().is_empty());
    }
}
